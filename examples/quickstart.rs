//! Quickstart: the whole Mocktails flow in one file.
//!
//! 1. Take a "proprietary" trace (here: the synthetic HEVC video decoder).
//! 2. Fit the paper's 2L-TS statistical profile.
//! 3. Serialize the profile — that's the artifact industry would share.
//! 4. Synthesize a stand-in trace from the profile.
//! 5. Replay both through the DRAM model and compare the metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use mocktails::trace::codec;
use mocktails::workloads::catalog;
use mocktails::{DecodeOptions, DramConfig, HierarchyConfig, MemorySystem, Profile};

fn main() {
    // 1. The "proprietary" trace.
    let spec = catalog::by_name("HEVC1").expect("HEVC1 is in Table II");
    let trace = spec.generate();
    println!(
        "trace {}: {} requests ({} reads / {} writes), {} bytes encoded",
        spec.name(),
        trace.len(),
        trace.reads(),
        trace.writes(),
        codec::trace_encoded_size(&trace),
    );

    // 2. Fit the 2L-TS profile (500k-cycle phases, dynamic spatial).
    let config = HierarchyConfig::two_level_ts(500_000);
    let profile = Profile::fit(&trace, &config);
    println!(
        "profile: {} leaves, {} bytes — {}x smaller than the trace",
        profile.leaves().len(),
        profile.metadata_size(),
        codec::trace_encoded_size(&trace) / profile.metadata_size().max(1),
    );

    // 3. The profile round-trips through its binary format.
    let mut bytes = Vec::new();
    profile.write(&mut bytes).expect("in-memory write");
    let shared = Profile::read(&mut bytes.as_slice(), &DecodeOptions::default()).expect("decode");

    // 4. Academia synthesizes a stand-in stream.
    let synthetic = shared.synthesize(42);
    assert_eq!(synthetic.len(), trace.len());
    assert_eq!(synthetic.reads(), trace.reads());

    // 5. Both streams drive the same memory system.
    let base = MemorySystem::new(DramConfig::default()).run_trace(&trace);
    let synth = MemorySystem::new(DramConfig::default()).run_trace(&synthetic);
    println!("\nmetric                 baseline   synthetic");
    println!(
        "read row hits        {:>10} {:>11}",
        base.total_read_row_hits(),
        synth.total_read_row_hits()
    );
    println!(
        "write row hits       {:>10} {:>11}",
        base.total_write_row_hits(),
        synth.total_write_row_hits()
    );
    println!(
        "avg read queue       {:>10.2} {:>11.2}",
        base.avg_read_queue_len(),
        synth.avg_read_queue_len()
    );
    println!(
        "avg access latency   {:>10.1} {:>11.1}",
        base.avg_access_latency(),
        synth.avg_access_latency()
    );
}
