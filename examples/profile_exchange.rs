//! The industry → academia exchange of Fig. 1, over actual files.
//!
//! Industry side: collect a trace, fit a Mocktails profile, write
//! `crypto.mprofile` to disk. Academia side: read the profile (the trace
//! never crosses the boundary), synthesize a stream, and use Option B —
//! the coupled synthesizer with simulator backpressure feedback.
//!
//! Run with: `cargo run --release --example profile_exchange`

use std::fs::File;
use std::io::{BufReader, BufWriter};

use mocktails::trace::codec;
use mocktails::workloads::catalog;
use mocktails::{DecodeOptions, DramConfig, HierarchyConfig, MemorySystem, Profile};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("mocktails-profile-exchange");
    std::fs::create_dir_all(&dir)?;
    let profile_path = dir.join("crypto.mprofile");

    // ---- Industry side -------------------------------------------------
    let trace = catalog::by_name("Crypto1").expect("catalog").generate();
    let profile = Profile::fit(&trace, &HierarchyConfig::two_level_ts(500_000));
    profile.write(&mut BufWriter::new(File::create(&profile_path)?))?;
    println!(
        "industry: shared {} ({} bytes; the {}-byte trace stays private)",
        profile_path.display(),
        profile.metadata_size(),
        codec::trace_encoded_size(&trace),
    );

    // ---- Academia side -------------------------------------------------
    let received = Profile::read(
        &mut BufReader::new(File::open(&profile_path)?),
        &DecodeOptions::default(),
    )?;
    assert_eq!(received, profile);

    // Option B: couple the synthesizer to the simulator so backpressure
    // shifts pending requests (§III-C, "Simulator Feedback").
    let mut synth = received.synthesizer(2026);
    let stats = MemorySystem::new(DramConfig::default()).run_synthesizer(&mut synth);
    println!(
        "academia: replayed {} synthetic requests (accumulated feedback delay: {} cycles)",
        synth.emitted(),
        synth.accumulated_delay(),
    );
    println!(
        "          read row hits {} / write row hits {} / avg latency {:.1} cycles",
        stats.total_read_row_hits(),
        stats.total_write_row_hits(),
        stats.avg_access_latency(),
    );

    // Validation the academic can do blind: the profile promised exactly
    // this many requests of each kind.
    assert_eq!(synth.emitted(), received.total_requests());
    println!("exchange complete: synthetic stream honoured the profile's request counts");
    Ok(())
}
