//! A heterogeneous SoC scenario: three IP blocks share one memory system.
//!
//! The paper motivates Mocktails with exactly this situation — an academic
//! wants to study memory contention between a VPU decoding video, a DPU
//! scanning out frames and the CPU orchestrating them, but all three
//! devices are proprietary. Here each device is replaced by its Mocktails
//! profile; the three synthetic streams are merged by timestamp and run
//! against a single DRAM system, and we compare against merging the three
//! *original* traces the same way.
//!
//! Run with: `cargo run --release --example video_pipeline`

use mocktails::trace::Trace;
use mocktails::workloads::catalog;
use mocktails::{DramConfig, HierarchyConfig, MemorySystem, Profile};

fn main() {
    let devices = ["HEVC1", "FBC-Linear1", "CPU-V"];
    let config = HierarchyConfig::two_level_ts(500_000);

    let mut originals = Vec::new();
    let mut synthetics = Vec::new();
    for (i, name) in devices.iter().enumerate() {
        let trace = catalog::by_name(name).expect("catalog").generate();
        let profile = Profile::fit(&trace, &config);
        println!(
            "{name:<12} {} requests -> {} leaves ({} profile bytes)",
            trace.len(),
            profile.leaves().len(),
            profile.metadata_size()
        );
        synthetics.push(profile.synthesize(100 + i as u64));
        originals.push(trace);
    }

    let base_refs: Vec<&Trace> = originals.iter().collect();
    let synth_refs: Vec<&Trace> = synthetics.iter().collect();
    let base = MemorySystem::new(DramConfig::default()).run_traces(&base_refs);
    let synth = MemorySystem::new(DramConfig::default()).run_traces(&synth_refs);

    // Per-device attribution inside the shared system.
    println!("\nper-device latency          original   mocktails");
    let base_ports = base.port_stats();
    let synth_ports = synth.port_stats();
    for (i, name) in devices.iter().enumerate() {
        let port = i as u16;
        println!(
            "{name:<24} {:>12.1} {:>11.1}",
            base_ports[&port].avg_latency(),
            synth_ports[&port].avg_latency()
        );
    }

    println!("\nshared memory system       original   mocktails");
    for (label, b, s) in [
        (
            "read row hits",
            base.total_read_row_hits() as f64,
            synth.total_read_row_hits() as f64,
        ),
        (
            "write row hits",
            base.total_write_row_hits() as f64,
            synth.total_write_row_hits() as f64,
        ),
        (
            "avg access latency",
            base.avg_access_latency(),
            synth.avg_access_latency(),
        ),
        (
            "avg write queue",
            base.avg_write_queue_len(),
            synth.avg_write_queue_len(),
        ),
    ] {
        let err = mocktails::sim::error::pct_error(b, s);
        println!("{label:<24} {b:>10.1} {s:>11.1}   ({err:.1}% err)");
    }
}
