//! The paper's §VI future-work proposal, implemented: model the *data*
//! feature of a workload under differential privacy.
//!
//! A vendor has a video pipeline whose data values (pixel rows flowing
//! through the VPU) are sensitive, but wants to enable value-locality
//! research — compression, value prediction, approximation. This example
//! fits a [`mocktails::core::value::ValueModel`] to the raw values, both
//! noise-free and with an ε = 0.5 Laplace budget, and compares what each
//! model preserves and what it hides.
//!
//! Run with: `cargo run --release --example value_privacy`

use mocktails::core::value::{ValueModel, ValueStats};
use mocktails::trace::rng::{Prng, Rng};

fn main() {
    // Synthetic "pixel stream": smooth gradients with occasional edges —
    // the kind of data a VPU reconstructs.
    let mut rng = Prng::seed_from_u64(2026);
    let mut values = vec![128u64];
    for i in 0..20_000usize {
        let last = *values.last().unwrap();
        let delta: i64 = if i % 640 == 0 {
            rng.gen_range(-60..60) // scene edge at each row start
        } else {
            rng.gen_range(-2..=2) // smooth gradient
        };
        values.push((last as i64 + delta).clamp(0, 255) as u64);
    }

    let original = ValueStats::from_values(&values);
    println!("original pixel stream:");
    print_stats(&original);

    for (label, epsilon) in [
        ("noise-free model", None),
        ("ε = 0.5 private model", Some(0.5)),
    ] {
        let model = ValueModel::fit(&values, epsilon).expect("non-empty column, positive epsilon");
        let synth = model.synthesize(values.len(), 7);
        let stats = ValueStats::from_values(&synth);
        println!("\n{label}:");
        print_stats(&stats);
        // What leaks: fraction of original 8-value windows reproduced.
        let windows: std::collections::HashSet<&[u64]> = values.windows(8).collect();
        let leaked = synth.windows(8).filter(|w| windows.contains(*w)).count();
        println!(
            "  original 8-grams reproduced: {:.2}% of {} synthetic windows",
            100.0 * leaked as f64 / synth.windows(8).count() as f64,
            synth.windows(8).count()
        );
    }

    println!(
        "\nBoth models preserve the value-locality statistics research needs;\n\
         the private model additionally perturbs the transition structure so\n\
         individual observations cannot be confidently inferred."
    );
}

fn print_stats(stats: &ValueStats) {
    println!(
        "  {} values, {} distinct, zero-delta fraction {:.3}, entropy {:.2} bits",
        stats.count, stats.distinct, stats.zero_delta_fraction, stats.entropy_bits
    );
}
