//! Design-space exploration with a Mocktails profile in place of the real
//! device — the paper's headline use case (§VI).
//!
//! An architect without access to the GPU's RTL explores memory-system
//! configurations using only the statistical profile: channel counts and
//! write-drain thresholds are swept, and the profile's synthetic stream
//! reports how each configuration behaves under GPU-like traffic.
//!
//! Run with: `cargo run --release --example soc_design_space`

use mocktails::workloads::catalog;
use mocktails::{DramConfig, HierarchyConfig, MemorySystem, Profile};

fn main() {
    // The only artifact we "received" from the GPU vendor.
    let trace = catalog::by_name("T-Rex1").expect("catalog").generate();
    let profile = Profile::fit(&trace, &HierarchyConfig::two_level_ts(500_000));
    println!(
        "exploring with a {}-leaf profile of {} GPU requests\n",
        profile.leaves().len(),
        profile.total_requests()
    );

    println!("channels  wr-drain  avg latency  avg rdQ  avg wrQ  stalls");
    for channels in [1usize, 2, 4] {
        for (high, low) in [(0.85, 0.50), (0.95, 0.80)] {
            let config = DramConfig {
                channels,
                write_high_threshold: high,
                write_low_threshold: low,
                ..DramConfig::default()
            };
            // Fresh synthetic stream per configuration: Option B coupling
            // lets backpressure shape the injection.
            let mut synth = profile.synthesizer(7);
            let stats = MemorySystem::new(config).run_synthesizer(&mut synth);
            println!(
                "{channels:>8}  {:>3.0}/{:<3.0}%  {:>11.1} {:>8.2} {:>8.2} {:>7}",
                high * 100.0,
                low * 100.0,
                stats.avg_access_latency(),
                stats.avg_read_queue_len(),
                stats.avg_write_queue_len(),
                stats.stall_cycles,
            );
        }
    }
    println!("\nFewer channels concentrate the same bursts: latency and queues grow.");
}
