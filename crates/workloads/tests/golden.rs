//! Golden regression test: pins the exact output of the GPU T-Rex
//! generator at a fixed seed.
//!
//! The workloads migrated from an external PRNG to the workspace's own
//! SplitMix64/xoshiro256** generator (`mocktails_trace::rng`); this test
//! freezes the post-migration byte stream so any future change to the
//! PRNG, to sampling helpers, or to the generator's draw order shows up
//! as a failed hash rather than a silent shift of every downstream
//! experiment. If a change is *intentional*, update the constants below
//! in the same commit and say why in its message.

use mocktails_trace::fingerprint;
use mocktails_workloads::{catalog, gpu};

#[test]
fn trex_at_seed_301_is_pinned() {
    let trace = gpu::trex(301);
    assert_eq!(trace.len(), 23_040, "request count moved");
    assert_eq!(
        fingerprint(&trace),
        TREX_301_FINGERPRINT,
        "the T-Rex byte stream changed; if intentional, re-pin this hash"
    );
}

#[test]
fn catalog_trex1_matches_direct_generation() {
    let spec = catalog::by_name("T-Rex1").expect("T-Rex1 is in Table II");
    assert_eq!(fingerprint(&spec.generate()), fingerprint(&gpu::trex(301)));
}

#[test]
fn trex_regenerates_identically() {
    assert_eq!(gpu::trex(301), gpu::trex(301));
}

#[test]
fn trex_seeds_diverge() {
    assert_ne!(fingerprint(&gpu::trex(301)), fingerprint(&gpu::trex(302)));
}

/// The pinned FNV-1a fingerprint of `gpu::trex(301)`.
const TREX_301_FINGERPRINT: u64 = 0xF549_44AA_8E11_6061;
