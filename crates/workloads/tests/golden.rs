//! Golden regression test: pins the exact output of the GPU T-Rex
//! generator at a fixed seed.
//!
//! The workloads migrated from an external PRNG to the workspace's own
//! SplitMix64/xoshiro256** generator (`mocktails_trace::rng`); this test
//! freezes the post-migration byte stream so any future change to the
//! PRNG, to sampling helpers, or to the generator's draw order shows up
//! as a failed hash rather than a silent shift of every downstream
//! experiment. If a change is *intentional*, update the constants below
//! in the same commit and say why in its message.

use mocktails_trace::Trace;
use mocktails_workloads::{catalog, gpu};

/// FNV-1a over every field of every request, in trace order.
fn fingerprint(trace: &Trace) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in trace.iter() {
        mix(r.timestamp);
        mix(r.address);
        mix(u64::from(r.size));
        mix(match r.op {
            mocktails_trace::Op::Read => 0,
            mocktails_trace::Op::Write => 1,
        });
    }
    h
}

#[test]
fn trex_at_seed_301_is_pinned() {
    let trace = gpu::trex(301);
    assert_eq!(trace.len(), 23_040, "request count moved");
    assert_eq!(
        fingerprint(&trace),
        TREX_301_FINGERPRINT,
        "the T-Rex byte stream changed; if intentional, re-pin this hash"
    );
}

#[test]
fn catalog_trex1_matches_direct_generation() {
    let spec = catalog::by_name("T-Rex1").expect("T-Rex1 is in Table II");
    assert_eq!(fingerprint(&spec.generate()), fingerprint(&gpu::trex(301)));
}

#[test]
fn trex_regenerates_identically() {
    assert_eq!(gpu::trex(301), gpu::trex(301));
}

#[test]
fn trex_seeds_diverge() {
    assert_ne!(fingerprint(&gpu::trex(301)), fingerprint(&gpu::trex(302)));
}

/// The pinned FNV-1a fingerprint of `gpu::trex(301)`.
const TREX_301_FINGERPRINT: u64 = 0xF549_44AA_8E11_6061;
