//! Display processing unit (DPU) workloads.
//!
//! A DPU fetches (possibly compressed) frame buffers and composes layers
//! for scan-out. Its memory behaviour is stream-dominated: per displayed
//! frame, long read sweeps of the frame buffer paced at line rate, plus a
//! small compressed-header side stream and a modest write stream to a
//! composition buffer. The paper's FBC traces come in *linear* mode (raster
//! order — long runs within a DRAM row) and *tiled* mode (tile order —
//! frequent pitch-sized jumps, shorter row runs), whose differing row-hit
//! behaviour Fig. 10 highlights.

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request, Trace};

use crate::common::{linear_stream, merge, tiled_stream};

/// Parameters shared by the frame-buffer-compression (FBC) workloads.
#[derive(Debug, Clone)]
pub struct FbcParams {
    /// Number of displayed frames.
    pub frames: u64,
    /// Cycles between frame starts.
    pub frame_period: u64,
    /// Frame width in bytes (the pitch).
    pub pitch: u64,
    /// Number of lines fetched per frame.
    pub lines: u64,
    /// Base address of the frame buffer.
    pub frame_base: u64,
    /// Base address of the compressed-header table.
    pub header_base: u64,
    /// Base address of the composition (output) buffer the DPU writes.
    pub output_base: u64,
    /// Cycles between consecutive payload reads within a line burst.
    pub read_gap: u64,
}

impl Default for FbcParams {
    fn default() -> Self {
        Self {
            frames: 2,
            frame_period: 8_000_000,
            pitch: 4096,
            lines: 160,
            frame_base: 0x8000_0000,
            header_base: 0x8800_0000,
            output_base: 0x9000_0000,
            read_gap: 12,
        }
    }
}

/// FBC in linear (raster) mode: payload reads sweep each line left to
/// right, so consecutive reads sit in the same DRAM row.
pub fn fbc_linear(seed: u64, params: &FbcParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0xD15F_0001);
    let mut streams = Vec::new();
    let reads_per_line = params.pitch / 64;
    for frame in 0..params.frames {
        let t_frame = frame * params.frame_period + rng.gen_range(0..32);
        for line in 0..params.lines {
            // Lines are paced at scan-out rate: the burst occupies the
            // first part of the line slot, the remainder is idle.
            let t_line = t_frame + line * (reads_per_line * params.read_gap * 5 / 2 + 64);
            // One compressed header read per line.
            streams.push(linear_stream(
                t_line,
                params.read_gap,
                params.header_base + frame * 0x10_0000 + line * 64,
                0,
                1,
                32,
                Op::Read,
            ));
            // The payload sweep for this line.
            streams.push(linear_stream(
                t_line + 4,
                params.read_gap,
                params.frame_base + line * params.pitch,
                64,
                reads_per_line as usize,
                64,
                Op::Read,
            ));
            // Composition output: blend (read–modify–write) into a small
            // output strip — one 64 B read followed by three 64 B writes,
            // a strict op pattern inside a mixed-op region.
            // Blending happens after the line's payload has arrived, in
            // the second half of the line slot.
            let out_base = params.output_base + (line % 8) * params.pitch;
            let mut blend = Vec::with_capacity((reads_per_line / 4) as usize * 4);
            let mut t = t_line + reads_per_line * params.read_gap / 2 + 16;
            for chunk in 0..reads_per_line / 16 {
                let addr = out_base + chunk * 1024;
                blend.push(Request::new(t, addr, Op::Read, 64));
                for w in 0..3u64 {
                    blend.push(Request::new(
                        t + (w + 1) * params.read_gap * 2,
                        addr + (w + 1) * 64,
                        Op::Write,
                        64,
                    ));
                }
                t += params.read_gap * 10;
            }
            streams.push(blend);
        }
    }
    Trace::from_requests(merge(streams))
}

/// FBC in tiled mode: the same bytes as linear mode, visited tile by tile
/// (16 lines × 64 B tiles), so consecutive reads jump by the pitch and
/// DRAM row runs are short.
pub fn fbc_tiled(seed: u64, params: &FbcParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0xD15F_0002);
    let mut streams = Vec::new();
    let tile_lines = 16u64;
    let tiles_per_row = params.pitch / 64;
    let tile_rows = params.lines / tile_lines;
    // Tiles are consumed at scan-out rate: a short burst of pitch-strided
    // reads, then idle until the next tile's slot. The slot is sized so a
    // frame spans several 500k-cycle modeling phases, as a real-time frame
    // would.
    let tile_period = tile_lines * params.read_gap * 40 + 16;
    for frame in 0..params.frames {
        let t_frame = frame * params.frame_period + rng.gen_range(0..32);
        for tile_row in 0..tile_rows {
            for tile_col in 0..tiles_per_row {
                let tile = tile_row * tiles_per_row + tile_col;
                let t_tile = t_frame + tile * tile_period;
                // The tile's compressed header.
                streams.push(linear_stream(
                    t_tile,
                    params.read_gap,
                    params.header_base + frame * 0x10_0000 + tile * 32,
                    0,
                    1,
                    32,
                    Op::Read,
                ));
                // Payload: one 64 B column per line of the tile — each
                // read jumps by the pitch (short DRAM row runs).
                streams.push(tiled_stream(
                    t_tile + 4,
                    params.read_gap,
                    params.frame_base + tile_row * tile_lines * params.pitch + tile_col * 64,
                    params.pitch,
                    64,
                    tile_lines,
                    1,
                    1,
                    64,
                    Op::Read,
                ));
            }
            // Compressed output for the finished tile row: one burst of
            // adjacent writes.
            let t_out = t_frame + (tile_row * tiles_per_row + tiles_per_row) * tile_period;
            streams.push(linear_stream(
                t_out,
                params.read_gap * 2,
                params.output_base + (tile_row % 64) * 1024,
                64,
                16,
                64,
                Op::Write,
            ));
        }
    }
    Trace::from_requests(merge(streams))
}

/// Parameters for the multi-layer composition workload.
#[derive(Debug, Clone)]
pub struct MultiLayerParams {
    /// Number of VGA-sized layers composed per frame.
    pub layers: u64,
    /// Number of frames.
    pub frames: u64,
    /// Cycles between frame starts.
    pub frame_period: u64,
    /// Lines fetched per layer per frame.
    pub lines: u64,
    /// Bytes per line of each layer (VGA: 640 × 4 B = 2560).
    pub pitch: u64,
}

impl Default for MultiLayerParams {
    fn default() -> Self {
        Self {
            layers: 4,
            frames: 2,
            frame_period: 4_000_000,
            lines: 120,
            pitch: 2560,
        }
    }
}

/// Multi-layer display composition: several concurrent linear read streams
/// (one per layer, in distinct memory regions) plus a blended output write
/// stream — the paper's *Multi-layer* DPU trace.
pub fn multi_layer(seed: u64, params: &MultiLayerParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0xD15F_0003);
    let mut streams = Vec::new();
    let reads_per_line = params.pitch / 64 + 1;
    // Five concurrent streams (four layers + output) must fit in the line
    // slot without permanently saturating the controller.
    let line_period = reads_per_line * 10 * params.layers + 800;
    for frame in 0..params.frames {
        let t_frame = frame * params.frame_period;
        for line in 0..params.lines {
            let t_line = t_frame + line * line_period;
            for layer in 0..params.layers {
                // Layer buffers are allocated at unaligned offsets, as a
                // real allocator would, so layers do not all alias onto
                // the same DRAM bank sequence.
                let base = 0x8000_0000 + layer * 0x0100_2000;
                streams.push(linear_stream(
                    t_line + layer * 2 + rng.gen_range(0..2),
                    10 * params.layers,
                    base + line * params.pitch,
                    64,
                    reads_per_line as usize,
                    64,
                    Op::Read,
                ));
            }
            // Blended output line, written back compressed (half volume,
            // wider spacing, so the write queue drains between lines).
            streams.push(linear_stream(
                t_line + 20,
                20 * params.layers,
                0x9800_0000 + line * params.pitch,
                64,
                (reads_per_line / 2) as usize,
                64,
                Op::Write,
            ));
        }
    }
    Trace::from_requests(merge(streams))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fbc_linear_is_mostly_reads_with_long_runs() {
        let t = fbc_linear(1, &FbcParams::default());
        assert!(t.len() > 10_000);
        let stats = t.stats();
        assert!(stats.read_fraction > 0.7, "got {}", stats.read_fraction);
        // Raster order: the dominant stride between consecutive payload
        // reads is +64.
        let mut plus64 = 0usize;
        let reqs = t.requests();
        for w in reqs.windows(2) {
            if w[1].address.wrapping_sub(w[0].address) == 64 {
                plus64 += 1;
            }
        }
        assert!(plus64 * 2 > reqs.len(), "{plus64}/{}", reqs.len());
    }

    #[test]
    fn fbc_tiled_same_volume_different_order() {
        let p = FbcParams::default();
        let lin = fbc_linear(1, &p);
        let tiled = fbc_tiled(1, &p);
        // Comparable payload volume (within 20%).
        let ratio = lin.len() as f64 / tiled.len() as f64;
        assert!((0.6..1.6).contains(&ratio), "ratio {ratio}");
        // Tiled mode jumps by the pitch much more often.
        let count_pitch = |t: &Trace| {
            t.requests()
                .windows(2)
                .filter(|w| w[1].address.wrapping_sub(w[0].address) == p.pitch)
                .count()
        };
        assert!(count_pitch(&tiled) > 4 * count_pitch(&lin));
    }

    #[test]
    fn fbc_writes_confined_to_output_region() {
        let p = FbcParams::default();
        let t = fbc_linear(1, &p);
        for r in t.iter().filter(|r| r.op.is_write()) {
            assert!(r.address >= p.output_base);
        }
    }

    #[test]
    fn multi_layer_has_concurrent_layer_streams() {
        let p = MultiLayerParams::default();
        let t = multi_layer(3, &p);
        assert!(t.len() > 10_000);
        // All four layer regions appear.
        for layer in 0..p.layers {
            let base = 0x8000_0000 + layer * 0x0100_0000;
            assert!(
                t.iter()
                    .any(|r| r.address >= base && r.address < base + 0x0100_0000),
                "layer {layer} absent"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        let p = FbcParams::default();
        assert_eq!(fbc_linear(7, &p), fbc_linear(7, &p));
        assert_eq!(fbc_tiled(7, &p), fbc_tiled(7, &p));
        assert_eq!(
            multi_layer(7, &MultiLayerParams::default()),
            multi_layer(7, &MultiLayerParams::default())
        );
    }

    #[test]
    fn frames_create_idle_gaps() {
        let p = FbcParams {
            frames: 2,
            ..FbcParams::default()
        };
        let t = fbc_linear(5, &p);
        // There must exist a gap of at least a quarter frame period.
        let max_gap = t
            .requests()
            .windows(2)
            .map(|w| w[1].timestamp - w[0].timestamp)
            .max()
            .unwrap();
        assert!(max_gap > p.frame_period / 4, "max gap {max_gap}");
    }
}
