//! Video processing unit (VPU) workloads.
//!
//! The paper's HEVC traces decode compressed video. Their signature
//! behaviour (Figs. 2–3) is sparse and irregular: motion compensation reads
//! small, scattered clusters of the reference frames with mixed 64/128 B
//! requests and odd strides (8, 64, −264 …), reconstruction writes stream
//! linearly, the bitstream is read in small linear chunks — and the whole
//! workload pulses frame by frame with idle gaps of millions of cycles in
//! between.

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request, Trace};

use crate::common::{linear_stream, merge};

/// Parameters for the HEVC decode workload.
#[derive(Debug, Clone)]
pub struct HevcParams {
    /// Decoded frames.
    pub frames: u64,
    /// Cycles between frame starts (the Fig. 3 idle spacing).
    pub frame_period: u64,
    /// Coding-tree blocks decoded per frame.
    pub ctbs_per_frame: u64,
    /// Reference frames available for motion compensation.
    pub reference_frames: u64,
    /// Frame pitch in bytes.
    pub pitch: u64,
    /// Cycles between requests within a CTB burst.
    pub intra_gap: u64,
    /// Cycles between CTB bursts.
    pub ctb_gap: u64,
}

impl Default for HevcParams {
    fn default() -> Self {
        Self {
            frames: 3,
            frame_period: 50_000_000,
            ctbs_per_frame: 120,
            reference_frames: 2,
            pitch: 3840,
            intra_gap: 8,
            ctb_gap: 4_000,
        }
    }
}

/// HEVC video decode: per coding-tree block, a cluster of irregular
/// motion-compensation reads from a reference frame plus linear
/// reconstruction writes; bitstream reads trickle alongside.
pub fn hevc(seed: u64, params: &HevcParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0x4EC_0001);
    let mut streams = Vec::new();
    // The irregular intra-cluster stride/size menu of Fig. 2 / Table I.
    let cluster_pattern: [(u64, u32); 6] =
        [(0, 128), (8, 64), (72, 64), (136, 64), (200, 64), (264, 64)];
    for frame in 0..params.frames {
        let t_frame = frame * params.frame_period;
        let recon_base = 0xE000_0000 + (frame % 4) * 0x0100_0000;
        for ctb in 0..params.ctbs_per_frame {
            let t_ctb = t_frame + ctb * params.ctb_gap + rng.gen_range(0..64);
            // Motion compensation: 1–3 reference blocks, each an irregular
            // cluster; occasionally the same cluster is fetched twice
            // (bi-prediction re-reads — the reuse of partition F).
            let blocks = rng.gen_range(1..=3);
            for b in 0..blocks {
                let ref_frame = rng.gen_range(0..params.reference_frames);
                let ref_base = 0xD000_0000 + ref_frame * 0x0100_0000;
                // Motion vectors land near the CTB's own position.
                let mv_lines = rng.gen_range(0..32u64);
                let cluster_base = ref_base
                    + (ctb / 8) * 64 * params.pitch
                    + mv_lines * params.pitch
                    + (ctb % 8) * 512
                    + rng.gen_range(0..4) * 8;
                let passes = if rng.gen_bool(0.3) { 2 } else { 1 };
                for pass in 0..passes {
                    let mut t = t_ctb + b * 160 + pass * 640;
                    let mut reqs = Vec::new();
                    for &(off, size) in &cluster_pattern {
                        reqs.push(Request::new(t, cluster_base + off, Op::Read, size));
                        t += params.intra_gap;
                    }
                    streams.push(reqs);
                }
            }
            // Reconstruction writes: one 64 B-wide CTB row, linear.
            streams.push(linear_stream(
                t_ctb + 500,
                params.intra_gap,
                recon_base + (ctb / 8) * 64 * params.pitch + (ctb % 8) * 512,
                64,
                8,
                64,
                Op::Write,
            ));
            // Bitstream read: small linear chunk.
            if ctb % 4 == 0 {
                streams.push(linear_stream(
                    t_ctb + 900,
                    params.intra_gap * 2,
                    0xF000_0000 + frame * 0x4_0000 + ctb * 256,
                    64,
                    4,
                    64,
                    Op::Read,
                ));
            }
        }
    }
    Trace::from_requests(merge(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_trace::BinnedCounts;

    #[test]
    fn hevc_has_mixed_sizes_and_irregular_strides() {
        let t = hevc(1, &HevcParams::default());
        assert!(t.len() > 3_000);
        let stats = t.stats();
        assert!(stats.size_histogram.contains_key(&64));
        assert!(stats.size_histogram.contains_key(&128));
        // The cluster pattern produces the characteristic +8 stride.
        let has_plus8 = t
            .requests()
            .windows(2)
            .any(|w| w[1].address.wrapping_sub(w[0].address) == 8);
        assert!(has_plus8);
    }

    #[test]
    fn hevc_frames_produce_long_idle_gaps() {
        let p = HevcParams::default();
        let t = hevc(2, &p);
        let bins = BinnedCounts::from_trace(&t, p.frame_period / 10);
        assert!(
            bins.idle_bins() > bins.len() / 3,
            "idle {}/{}",
            bins.idle_bins(),
            bins.len()
        );
    }

    #[test]
    fn hevc_mixes_reads_and_writes() {
        let t = hevc(3, &HevcParams::default());
        let stats = t.stats();
        assert!(stats.read_fraction > 0.5 && stats.read_fraction < 0.95);
    }

    #[test]
    fn hevc_is_deterministic() {
        let p = HevcParams::default();
        assert_eq!(hevc(4, &p), hevc(4, &p));
        assert_ne!(hevc(4, &p), hevc(5, &p));
    }
}
