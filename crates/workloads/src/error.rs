//! Error type for workload generation.

/// Errors produced when generating synthetic workload traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The requested SPEC-like benchmark name is not in [`crate::spec::NAMES`].
    UnknownBenchmark(String),
}

impl std::fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadError::UnknownBenchmark(name) => {
                write!(f, "unknown SPEC-like benchmark {name:?}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_benchmark() {
        let e = WorkloadError::UnknownBenchmark("quake".into());
        assert!(e.to_string().contains("quake"));
    }
}
