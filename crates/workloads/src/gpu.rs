//! Graphics processing unit (GPU) workloads.
//!
//! GPUs issue large requests from many concurrent warps in short intervals,
//! so bursts pile up in the memory controller queues (the paper's Figs. 7–8
//! show GPUs with the longest queues). Texture fetches walk 2D footprints
//! in a blocked order; colour writes stream to the render target. The
//! *T-Rex* and *Manhattan* proxies model GFXBench frames; *OpenCL* models a
//! bandwidth-bound streaming kernel.

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request, Trace};

use crate::common::{linear_stream, merge};

/// Parameters for the rendering (T-Rex / Manhattan) workloads.
#[derive(Debug, Clone)]
pub struct RenderParams {
    /// Rendered frames.
    pub frames: u64,
    /// Cycles between frame starts.
    pub frame_period: u64,
    /// Draw batches per frame (each batch is one burst).
    pub batches_per_frame: u64,
    /// Concurrent texture streams per batch (warp groups).
    pub streams_per_batch: u64,
    /// Requests per texture stream per batch.
    pub reads_per_stream: u64,
    /// Texture atlas pitch in bytes.
    pub pitch: u64,
    /// Cycles between requests inside a burst (very small: bursty).
    pub intra_gap: u64,
    /// Cycles between batches.
    pub batch_gap: u64,
}

impl Default for RenderParams {
    fn default() -> Self {
        Self {
            frames: 2,
            frame_period: 3_000_000,
            batches_per_frame: 24,
            streams_per_batch: 8,
            reads_per_stream: 48,
            pitch: 8192,
            intra_gap: 2,
            batch_gap: 40_000,
        }
    }
}

/// A GFXBench-style rendering frame mix: per batch, several concurrent
/// blocked texture read streams plus render-target writes, all issued in a
/// tight burst.
pub fn render(seed: u64, params: &RenderParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0x6B0_0001);
    let mut streams = Vec::new();
    for frame in 0..params.frames {
        let t_frame = frame * params.frame_period;
        for batch in 0..params.batches_per_frame {
            let t_batch = t_frame + batch * params.batch_gap;
            // Concurrent texture streams: each walks a 2D block of the
            // atlas (4 texels of 128 B per row, then a pitch jump).
            for s in 0..params.streams_per_batch {
                let tex_base = 0xA000_0000
                    + (batch % 4) * 0x0400_0000
                    + s * 0x0020_0000
                    + rng.gen_range(0..64) * params.pitch;
                let mut reqs = Vec::with_capacity(params.reads_per_stream as usize);
                let mut t = t_batch + s; // staggered by one cycle per stream
                let mut addr = tex_base;
                for i in 0..params.reads_per_stream {
                    let size = if rng.gen_bool(0.75) { 128 } else { 64 };
                    reqs.push(Request::new(t, addr, Op::Read, size));
                    t += params.intra_gap * params.streams_per_batch;
                    addr = if i % 4 == 3 {
                        // next texel row of the block
                        addr + params.pitch - 3 * 128
                    } else {
                        addr + 128
                    };
                }
                streams.push(reqs);
            }
            // Render-target writes: linear 64 B bursts.
            streams.push(linear_stream(
                t_batch + 16,
                params.intra_gap * 2,
                0xC000_0000 + (batch % 8) * 0x0010_0000,
                64,
                (params.reads_per_stream * params.streams_per_batch / 4) as usize,
                64,
                Op::Write,
            ));
        }
    }
    Trace::from_requests(merge(streams))
}

/// T-Rex (GFXBench): the default rendering mix.
pub fn trex(seed: u64) -> Trace {
    render(seed, &RenderParams::default())
}

/// Manhattan (GFXBench): heavier frames — more batches and streams than
/// T-Rex, stressing queues further.
pub fn manhattan(seed: u64) -> Trace {
    render(
        seed,
        &RenderParams {
            batches_per_frame: 32,
            streams_per_batch: 10,
            reads_per_stream: 56,
            ..RenderParams::default()
        },
    )
}

/// Parameters for the OpenCL stress-test workload.
#[derive(Debug, Clone)]
pub struct OpenClParams {
    /// Kernel launches.
    pub kernels: u64,
    /// Cycles between kernel launches.
    pub kernel_period: u64,
    /// Work items (each contributing one read per input and one write).
    pub items: u64,
    /// Cycles between consecutive wavefront requests.
    pub gap: u64,
}

impl Default for OpenClParams {
    fn default() -> Self {
        Self {
            kernels: 4,
            kernel_period: 2_000_000,
            items: 3_000,
            gap: 18,
        }
    }
}

/// An OpenCL streaming stress test: `c[i] = a[i] + b[i]` — two linear
/// 128 B read streams and one linear write stream, saturating bandwidth.
pub fn opencl(seed: u64, params: &OpenClParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0x6B0_0002);
    let mut streams = Vec::new();
    for k in 0..params.kernels {
        let t0 = k * params.kernel_period + rng.gen_range(0..16);
        streams.push(linear_stream(
            t0,
            params.gap * 3,
            0xA000_0000,
            128,
            params.items as usize,
            128,
            Op::Read,
        ));
        streams.push(linear_stream(
            t0 + 1,
            params.gap * 3,
            0xA800_0000,
            128,
            params.items as usize,
            128,
            Op::Read,
        ));
        streams.push(linear_stream(
            t0 + 2,
            params.gap * 3,
            0xB000_0000,
            128,
            params.items as usize,
            128,
            Op::Write,
        ));
    }
    Trace::from_requests(merge(streams))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_trace::BinnedCounts;

    #[test]
    fn trex_is_bursty_with_large_requests() {
        let t = trex(1);
        assert!(t.len() > 10_000);
        // Large requests dominate.
        let big = t.iter().filter(|r| r.size >= 128).count();
        assert!(big * 2 > t.len());
        // Bursty injection: high coefficient of variation across bins.
        let b = BinnedCounts::from_trace(&t, 10_000).burstiness();
        assert!(b > 1.0, "burstiness {b}");
    }

    #[test]
    fn manhattan_is_heavier_than_trex() {
        assert!(manhattan(1).len() > trex(1).len());
    }

    #[test]
    fn render_mixes_reads_and_writes() {
        let t = trex(2);
        let stats = t.stats();
        assert!(stats.read_fraction > 0.6 && stats.read_fraction < 0.95);
    }

    #[test]
    fn opencl_is_streaming() {
        let t = opencl(1, &OpenClParams::default());
        let stats = t.stats();
        // 2 reads per write.
        assert!((stats.read_fraction - 2.0 / 3.0).abs() < 0.02);
        assert_eq!(stats.size_histogram.len(), 1, "uniform 128 B requests");
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(trex(9), trex(9));
        assert_eq!(manhattan(9), manhattan(9));
        assert_eq!(
            opencl(9, &OpenClParams::default()),
            opencl(9, &OpenClParams::default())
        );
    }

    #[test]
    fn different_seeds_give_different_traces() {
        assert_ne!(trex(1), trex(2));
    }
}
