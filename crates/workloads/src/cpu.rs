//! CPU workloads (requests already filtered by the cache hierarchy).
//!
//! The paper's CPU traces are captured at the interconnect, *after* the
//! caches: what remains is an irregular mix of miss traffic and write-backs
//! whose regions see both reads and writes — which is why CPU workloads
//! show the highest McC error on read/write bursts (Fig. 6) and why CPU
//! error grows with longer temporal partitions (Fig. 13).

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request, Trace};

use crate::common::{linear_stream, merge, random_in_region, Zipf};

/// Parameters for the cryptography workload.
#[derive(Debug, Clone)]
pub struct CryptoParams {
    /// Data blocks processed.
    pub blocks: u64,
    /// Cycles per block (compute-bound pacing).
    pub block_period: u64,
    /// Bytes per data block streamed through the cipher.
    pub block_bytes: u64,
    /// Number of 8 KiB lookup-table regions (S-boxes, round keys).
    pub tables: u64,
}

impl Default for CryptoParams {
    fn default() -> Self {
        Self {
            blocks: 500,
            block_period: 20_000,
            block_bytes: 2048,
            tables: 4,
        }
    }
}

/// A cryptography workload: read-modify-write sweeps over data blocks plus
/// scattered lookup-table reads — the paper's *Crypto* CPU trace.
pub fn crypto(seed: u64, params: &CryptoParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ 0xC2_0001);
    let mut streams = Vec::new();
    let lines = params.block_bytes / 64;
    for b in 0..params.blocks {
        let t0 = b * params.block_period + rng.gen_range(0..128);
        let data_base = 0x4000_0000 + (b % 64) * params.block_bytes;
        // Encrypt each line in place: read it, write the ciphertext back.
        // The data region therefore mixes reads and writes with a strict
        // alternating op pattern; occasionally the store buffer combines
        // two lines into one 128 B write, giving the mild op-size
        // correlation §IV-B blames for the CPU's burst error.
        let mut rmw = Vec::with_capacity(lines as usize * 2);
        let mut t = t0;
        let mut combined = false;
        for line in 0..lines {
            let addr = data_base + line * 64;
            rmw.push(Request::new(t, addr, Op::Read, 64));
            if combined {
                combined = false;
            } else if line % 8 == 6 {
                rmw.push(Request::new(t + 40, addr, Op::Write, 128));
                combined = true;
            } else {
                rmw.push(Request::new(t + 40, addr, Op::Write, 64));
            }
            t += 80;
        }
        streams.push(rmw);
        // Scattered table lookups while encrypting.
        let table = rng.gen_range(0..params.tables);
        streams.push(random_in_region(
            &mut rng,
            t0 + 20,
            55,
            0x4800_0000 + table * 0x2000,
            0x2000,
            64,
            (lines / 2) as usize,
            64,
            Op::Read,
        ));
    }
    Trace::from_requests(merge(streams))
}

/// Parameters for the CPU-companion workloads (CPU-D / CPU-G / CPU-V).
#[derive(Debug, Clone)]
pub struct CompanionParams {
    /// Producer/consumer hand-offs (one per accelerator job).
    pub jobs: u64,
    /// Cycles between jobs.
    pub job_period: u64,
    /// Bytes of payload the CPU prepares per job.
    pub payload_bytes: u64,
    /// Hot working-set blocks touched between jobs (code/heap misses).
    pub hot_blocks: usize,
}

impl Default for CompanionParams {
    fn default() -> Self {
        Self {
            jobs: 200,
            job_period: 60_000,
            payload_bytes: 8_192,
            hot_blocks: 512,
        }
    }
}

/// A CPU workload that feeds a companion accelerator: per job, it writes a
/// payload buffer, rings a doorbell region, then reads back results, with
/// zipf-distributed heap misses in between — the paper's *CPU-D*, *CPU-G*
/// and *CPU-V* traces (the `variant` only shifts regions and pacing).
pub fn companion(seed: u64, variant: u64, params: &CompanionParams) -> Trace {
    let mut rng = Prng::seed_from_u64(seed ^ (0xC2_0100 + variant));
    let zipf = Zipf::new(params.hot_blocks, 1.1);
    let mut streams = Vec::new();
    let lines = params.payload_bytes / 64;
    let region_shift = variant * 0x1000_0000;
    for job in 0..params.jobs {
        let t0 = job * params.job_period + rng.gen_range(0..256);
        let buf = 0x5000_0000 + region_shift + (job % 8) * params.payload_bytes;
        // Produce the payload.
        streams.push(linear_stream(
            t0,
            25,
            buf,
            64,
            lines as usize,
            64,
            Op::Write,
        ));
        // Doorbell / descriptor update.
        streams.push(linear_stream(
            t0 + lines * 25 + 10,
            10,
            0x5F00_0000 + region_shift,
            0,
            2,
            64,
            Op::Write,
        ));
        // Consume results of the previous job.
        streams.push(linear_stream(
            t0 + lines * 25 + 600,
            30,
            buf + 0x800_0000,
            64,
            (lines / 2) as usize,
            64,
            Op::Read,
        ));
        // Heap / code misses: zipf-hot blocks, mixed reads and write-backs.
        let mut heap = Vec::new();
        let mut t = t0 + 40;
        for _ in 0..lines {
            let block = zipf.sample(&mut rng) as u64;
            let op = if rng.gen_bool(0.3) {
                Op::Write
            } else {
                Op::Read
            };
            heap.push(Request::new(
                t,
                0x6000_0000 + region_shift + block * 64,
                op,
                64,
            ));
            t += rng.gen_range(20..90);
        }
        streams.push(heap);
    }
    Trace::from_requests(merge(streams))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crypto_regions_mix_reads_and_writes() {
        let t = crypto(1, &CryptoParams::default());
        assert!(t.len() > 10_000);
        // Data regions see both ops (the CPU signature the paper calls out).
        let data = t.requests_in_range(&mocktails_trace::AddrRange::new(0x4000_0000, 0x4800_0000));
        let reads = data.iter().filter(|r| r.op.is_read()).count();
        let writes = data.len() - reads;
        assert!(reads > 0 && writes > 0);
        // Roughly balanced overall (RMW pattern).
        let frac = t.stats().read_fraction;
        assert!(frac > 0.4 && frac < 0.8, "read fraction {frac}");
    }

    #[test]
    fn companion_variants_use_distinct_regions() {
        let p = CompanionParams::default();
        let d = companion(1, 0, &p);
        let g = companion(1, 1, &p);
        assert_ne!(d, g);
        let fp_d = d.footprint_range().unwrap();
        let fp_g = g.footprint_range().unwrap();
        assert!(fp_g.start() > fp_d.start());
    }

    #[test]
    fn companion_has_write_heavy_phases() {
        let t = companion(2, 0, &CompanionParams::default());
        let stats = t.stats();
        assert!(stats.writes > stats.requests / 4);
    }

    #[test]
    fn cpu_generators_deterministic() {
        assert_eq!(
            crypto(3, &CryptoParams::default()),
            crypto(3, &CryptoParams::default())
        );
        let p = CompanionParams::default();
        assert_eq!(companion(3, 2, &p), companion(3, 2, &p));
    }
}
