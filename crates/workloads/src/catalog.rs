//! The Table II trace catalog.
//!
//! Maps each of the paper's proprietary traces to a synthetic generator and
//! a fixed seed, so the whole evaluation is reproducible byte-for-byte.

use mocktails_trace::Trace;

use crate::{cpu, dpu, gpu, vpu, Device};

/// One named trace of the paper's Table II.
#[derive(Debug, Clone)]
pub struct TraceSpec {
    name: &'static str,
    device: Device,
    description: &'static str,
    seed: u64,
    generator: fn(u64) -> Trace,
}

impl TraceSpec {
    /// The trace name (e.g. `"HEVC1"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The device that produced the trace.
    pub fn device(&self) -> Device {
        self.device
    }

    /// Table II's description of the workload.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// Generates the trace (deterministic: same bytes every call).
    pub fn generate(&self) -> Trace {
        (self.generator)(self.seed)
    }
}

fn gen_crypto(seed: u64) -> Trace {
    cpu::crypto(seed, &cpu::CryptoParams::default())
}

fn gen_cpu_d(seed: u64) -> Trace {
    cpu::companion(seed, 0, &cpu::CompanionParams::default())
}

fn gen_cpu_g(seed: u64) -> Trace {
    cpu::companion(seed, 1, &cpu::CompanionParams::default())
}

fn gen_cpu_v(seed: u64) -> Trace {
    cpu::companion(seed, 2, &cpu::CompanionParams::default())
}

fn gen_fbc_linear(seed: u64) -> Trace {
    dpu::fbc_linear(seed, &dpu::FbcParams::default())
}

fn gen_fbc_tiled(seed: u64) -> Trace {
    dpu::fbc_tiled(seed, &dpu::FbcParams::default())
}

fn gen_multi_layer(seed: u64) -> Trace {
    dpu::multi_layer(seed, &dpu::MultiLayerParams::default())
}

fn gen_trex(seed: u64) -> Trace {
    gpu::trex(seed)
}

fn gen_manhattan(seed: u64) -> Trace {
    gpu::manhattan(seed)
}

fn gen_opencl(seed: u64) -> Trace {
    gpu::opencl(seed, &gpu::OpenClParams::default())
}

fn gen_hevc(seed: u64) -> Trace {
    vpu::hevc(seed, &vpu::HevcParams::default())
}

/// All 18 traces of Table II (trace counts per row match the paper).
pub fn all() -> Vec<TraceSpec> {
    vec![
        spec(
            "Crypto1",
            Device::Cpu,
            "A cryptography workload (trace 1 of 2)",
            101,
            gen_crypto,
        ),
        spec(
            "Crypto2",
            Device::Cpu,
            "A cryptography workload (trace 2 of 2)",
            102,
            gen_crypto,
        ),
        spec(
            "CPU-D",
            Device::Cpu,
            "A workload that interacts with a DPU",
            103,
            gen_cpu_d,
        ),
        spec(
            "CPU-G",
            Device::Cpu,
            "A workload that interacts with a GPU",
            104,
            gen_cpu_g,
        ),
        spec(
            "CPU-V",
            Device::Cpu,
            "A workload that interacts with a VPU",
            105,
            gen_cpu_v,
        ),
        spec(
            "FBC-Linear1",
            Device::Dpu,
            "Display compressed frames, linear mode (1 of 2)",
            201,
            gen_fbc_linear,
        ),
        spec(
            "FBC-Linear2",
            Device::Dpu,
            "Display compressed frames, linear mode (2 of 2)",
            202,
            gen_fbc_linear,
        ),
        spec(
            "FBC-Tiled1",
            Device::Dpu,
            "Display compressed frames, tiled mode (1 of 2)",
            203,
            gen_fbc_tiled,
        ),
        spec(
            "FBC-Tiled2",
            Device::Dpu,
            "Display compressed frames, tiled mode (2 of 2)",
            204,
            gen_fbc_tiled,
        ),
        spec(
            "Multi-layer",
            Device::Dpu,
            "Display multiple VGA layers",
            205,
            gen_multi_layer,
        ),
        spec(
            "T-Rex1",
            Device::Gpu,
            "T-Rex from GFXBench (trace 1 of 2)",
            301,
            gen_trex,
        ),
        spec(
            "T-Rex2",
            Device::Gpu,
            "T-Rex from GFXBench (trace 2 of 2)",
            302,
            gen_trex,
        ),
        spec(
            "Manhattan",
            Device::Gpu,
            "Manhattan from GFXBench",
            303,
            gen_manhattan,
        ),
        spec(
            "OpenCL1",
            Device::Gpu,
            "An OpenCL stress test (trace 1 of 2)",
            304,
            gen_opencl,
        ),
        spec(
            "OpenCL2",
            Device::Gpu,
            "An OpenCL stress test (trace 2 of 2)",
            305,
            gen_opencl,
        ),
        spec(
            "HEVC1",
            Device::Vpu,
            "Decoding compressed video (trace 1 of 3)",
            401,
            gen_hevc,
        ),
        spec(
            "HEVC2",
            Device::Vpu,
            "Decoding compressed video (trace 2 of 3)",
            402,
            gen_hevc,
        ),
        spec(
            "HEVC3",
            Device::Vpu,
            "Decoding compressed video (trace 3 of 3)",
            403,
            gen_hevc,
        ),
    ]
}

fn spec(
    name: &'static str,
    device: Device,
    description: &'static str,
    seed: u64,
    generator: fn(u64) -> Trace,
) -> TraceSpec {
    TraceSpec {
        name,
        device,
        description,
        seed,
        generator,
    }
}

/// Looks a trace up by name (case-sensitive, as printed in Table II).
pub fn by_name(name: &str) -> Option<TraceSpec> {
    all().into_iter().find(|s| s.name == name)
}

/// The traces belonging to one device kind.
pub fn by_device(device: Device) -> Vec<TraceSpec> {
    all().into_iter().filter(|s| s.device == device).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table2_shape() {
        let specs = all();
        assert_eq!(specs.len(), 18);
        assert_eq!(by_device(Device::Cpu).len(), 5);
        assert_eq!(by_device(Device::Dpu).len(), 5);
        assert_eq!(by_device(Device::Gpu).len(), 5);
        assert_eq!(by_device(Device::Vpu).len(), 3);
    }

    #[test]
    fn names_are_unique() {
        let specs = all();
        let mut names: Vec<_> = specs.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("T-Rex1").is_some());
        assert_eq!(by_name("T-Rex1").unwrap().device(), Device::Gpu);
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn paired_traces_differ_by_seed() {
        let a = by_name("Crypto1").unwrap().generate();
        let b = by_name("Crypto2").unwrap().generate();
        assert_ne!(a, b);
    }

    #[test]
    fn generation_is_reproducible() {
        let spec = by_name("FBC-Linear1").unwrap();
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn descriptions_are_present() {
        for s in all() {
            assert!(!s.description().is_empty());
        }
    }
}
