//! Synthetic workload generators for the Mocktails reproduction.
//!
//! The paper evaluates Mocktails on proprietary traces of CPU, DPU, GPU and
//! VPU devices collected by RTL emulation (Table II), plus Pin-captured
//! SPEC CPU2006 traces (§V). Neither is available, so this crate implements
//! parameterized generators reproducing the *described* spatio-temporal
//! behaviour of each workload class:
//!
//! * [`dpu`] — frame-buffer scans: linear and tiled compressed-frame reads,
//!   multi-layer composition.
//! * [`gpu`] — bursty interleaved texture streams with large requests
//!   (T-Rex, Manhattan from GFXBench; an OpenCL stress test).
//! * [`vpu`] — HEVC decode: sparse, irregular motion-compensation reads and
//!   linear reconstruction writes, with long inter-frame idle gaps (the
//!   behaviour of the paper's Figs. 2–3).
//! * [`cpu`] — cache-filtered CPU streams (crypto, and workloads that feed
//!   a DPU/GPU/VPU).
//! * [`spec`] — 23 SPEC-CPU2006-like locality proxies used by the §V cache
//!   validation, including the six whose associativity trends Fig. 15
//!   plots.
//! * [`catalog`] — the Table II trace list, mapping each named trace to a
//!   deterministic generator + seed.
//!
//! Every generator is seeded and fully deterministic.
//!
//! # Example
//!
//! ```
//! use mocktails_workloads::{catalog, Device};
//!
//! let spec = catalog::by_name("HEVC1").expect("HEVC1 is in Table II");
//! assert_eq!(spec.device(), Device::Vpu);
//! let trace = spec.generate();
//! assert!(!trace.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod catalog;
mod common;
pub mod cpu;
pub mod dpu;
mod error;
pub mod gpu;
pub mod spec;
pub mod vpu;

pub use catalog::TraceSpec;
pub use error::WorkloadError;

/// The kind of SoC compute device a trace comes from (paper Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Device {
    /// General-purpose CPU cluster (requests already filtered by caches).
    Cpu,
    /// Display processing unit.
    Dpu,
    /// Graphics processing unit.
    Gpu,
    /// Video processing unit.
    Vpu,
}

impl Device {
    /// All device kinds in the order the paper's figures list them.
    pub const ALL: [Device; 4] = [Device::Cpu, Device::Dpu, Device::Gpu, Device::Vpu];
}

impl std::fmt::Display for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Device::Cpu => "CPU",
            Device::Dpu => "DPU",
            Device::Gpu => "GPU",
            Device::Vpu => "VPU",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_display() {
        assert_eq!(Device::Cpu.to_string(), "CPU");
        assert_eq!(Device::Vpu.to_string(), "VPU");
        assert_eq!(Device::ALL.len(), 4);
    }
}
