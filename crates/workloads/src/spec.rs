//! SPEC-CPU2006-like benchmark proxies for the §V cache validation.
//!
//! The paper collects Pin traces of 23 SPEC CPU2006 benchmarks at the
//! CPU→L1 boundary. We substitute deterministic locality proxies: each name
//! maps to a composition of classic access archetypes (streaming, blocked,
//! pointer chasing, zipf-hot heaps, cyclic scans, conflict streams, 2-D
//! motion search, stencils) with per-benchmark parameters. Six of them —
//! the ones Fig. 15 plots — are tuned to reproduce the paper's three
//! associativity trends: miss rate *falls* with associativity (`gobmk`),
//! is *flat* (`libquantum`), or *rises* (`zeusmp`).
//!
//! Requests model loads/stores between the core and the L1: word-sized
//! (4/8 B), with the running instruction count as the timestamp (the §V
//! methodology simulates in atomic mode, where only order matters).

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request, Trace};

use crate::common::Zipf;
use crate::error::WorkloadError;

/// All 23 benchmark names, in the order of the paper's Fig. 17.
pub const NAMES: [&str; 23] = [
    "astar",
    "bzip2",
    "cactusADM",
    "calculix",
    "gcc",
    "GemsFDTD",
    "gobmk",
    "gromacs",
    "h264ref",
    "hmmer",
    "lbm",
    "leslie3d",
    "libquantum",
    "mcf",
    "milc",
    "namd",
    "omnetpp",
    "perlbench",
    "povray",
    "sjeng",
    "soplex",
    "tonto",
    "zeusmp",
];

/// The six benchmarks whose associativity trends Figs. 15–16 plot.
pub const FIG15_NAMES: [&str; 6] = ["gobmk", "h264ref", "libquantum", "milc", "soplex", "zeusmp"];

/// Default request count per benchmark trace.
pub const DEFAULT_REQUESTS: usize = 120_000;

/// Generates the named benchmark's trace with a request budget of `n`; the
/// budget is split across the benchmark's archetype phases (each phase
/// claims half the remaining budget), so the trace holds between `n / 2`
/// and `n` requests.
///
/// # Errors
///
/// Returns [`WorkloadError::UnknownBenchmark`] if `name` is not one of
/// [`NAMES`].
pub fn generate_n(name: &str, seed: u64, n: usize) -> Result<Trace, WorkloadError> {
    let mut rng = Prng::seed_from_u64(seed ^ 0x57EC_0000);
    let mut g = Gen::new(n, &mut rng);
    match name {
        // Streaming, single huge array: flat across associativity.
        "libquantum" => g.stream(&mut rng, 1, 8 << 20, 8, 0.25),
        "lbm" => {
            g.stream(&mut rng, 2, 4 << 20, 8, 0.45);
        }
        "leslie3d" => {
            g.stream(&mut rng, 3, 2 << 20, 8, 0.3);
            g.stencil(&mut rng, 4160, 64, 0.2);
        }
        // Conflict-dominated: misses fall as associativity grows.
        "gobmk" => {
            g.conflict(&mut rng, &[3, 6, 12], 32 << 10, 0.15);
            g.zipf_heap(&mut rng, 320, 1.1, 0.25);
        }
        // Cyclic working set slightly over 32 KiB: misses rise with
        // associativity under LRU.
        "zeusmp" => {
            g.cyclic(&mut rng, 34 << 10, 64, 0.3);
            g.zipf_heap(&mut rng, 64, 1.3, 0.2);
        }
        // 2-D motion search over a reference frame: mild conflict misses
        // at low associativity.
        "h264ref" => {
            g.motion2d(&mut rng, 4096, 24, 12, 0.2);
            g.zipf_heap(&mut rng, 200, 1.2, 0.3);
        }
        // Strided lattice sweeps: mostly flat, slight improvement.
        "milc" => {
            g.stream(&mut rng, 4, 1 << 20, 16, 0.35);
            g.zipf_heap(&mut rng, 500, 1.1, 0.3);
        }
        // Sparse matrix columns + dense rows: moderate improvement.
        "soplex" => {
            g.conflict(&mut rng, &[3, 10], 32 << 10, 0.2);
            g.stream(&mut rng, 2, 2 << 20, 8, 0.2);
        }
        "mcf" => g.pointer_chase(&mut rng, 16 << 20, 0.2),
        "omnetpp" => {
            g.pointer_chase(&mut rng, 8 << 20, 0.35);
            g.zipf_heap(&mut rng, 1024, 1.1, 0.35);
        }
        "astar" => {
            g.pointer_chase(&mut rng, 4 << 20, 0.25);
            g.motion2d(&mut rng, 2048, 16, 16, 0.2);
        }
        "gcc" => {
            g.zipf_heap(&mut rng, 4096, 1.05, 0.4);
            g.stream(&mut rng, 1, 1 << 20, 8, 0.3);
        }
        "perlbench" => {
            g.zipf_heap(&mut rng, 2048, 1.15, 0.45);
            g.pointer_chase(&mut rng, 1 << 20, 0.3);
        }
        "bzip2" => {
            g.stream(&mut rng, 2, 1 << 20, 4, 0.4);
            g.zipf_heap(&mut rng, 1500, 1.0, 0.3);
        }
        // hmmer sweeps small per-profile score arrays: highly structured
        // (the paper notes its Mocktails profile is among the smallest,
        // with most features modeled as constants).
        "hmmer" => {
            g.stream(&mut rng, 3, 48 << 10, 8, 0.45);
            g.zipf_heap(&mut rng, 150, 1.3, 0.4);
        }
        "namd" => {
            g.zipf_heap(&mut rng, 600, 1.1, 0.3);
            g.stream(&mut rng, 2, 512 << 10, 8, 0.25);
        }
        "sjeng" => {
            g.zipf_heap(&mut rng, 8192, 0.9, 0.3);
            g.pointer_chase(&mut rng, 2 << 20, 0.2)
        }
        "gromacs" => {
            g.stream(&mut rng, 3, 768 << 10, 8, 0.35);
            g.zipf_heap(&mut rng, 300, 1.2, 0.3);
        }
        "cactusADM" => {
            g.stencil(&mut rng, 8320, 96, 0.4);
            g.stream(&mut rng, 2, 2 << 20, 8, 0.3);
        }
        "GemsFDTD" => {
            g.stencil(&mut rng, 16448, 128, 0.45);
            g.stream(&mut rng, 3, 4 << 20, 8, 0.3);
        }
        "calculix" => {
            g.blocked(&mut rng, 512, 16, 0.3);
            g.stream(&mut rng, 1, 4 << 20, 8, 0.2);
        }
        "tonto" => {
            g.blocked(&mut rng, 256, 8, 0.35);
            g.zipf_heap(&mut rng, 800, 1.1, 0.3);
        }
        "povray" => {
            g.zipf_heap(&mut rng, 256, 1.3, 0.25);
            g.pointer_chase(&mut rng, 256 << 10, 0.2);
        }
        other => return Err(WorkloadError::UnknownBenchmark(other.to_string())),
    }
    Ok(g.finish())
}

/// Generates the named benchmark's trace with [`DEFAULT_REQUESTS`] requests.
///
/// # Errors
///
/// Returns [`WorkloadError::UnknownBenchmark`] if `name` is not one of
/// [`NAMES`].
pub fn generate(name: &str, seed: u64) -> Result<Trace, WorkloadError> {
    generate_n(name, seed, DEFAULT_REQUESTS)
}

/// Interleaving trace builder: archetype calls enqueue *phases* that are
/// spliced round-robin so the final trace mixes the address streams in
/// time, the way real code interleaves its data structures.
struct Gen {
    budget: usize,
    phases: Vec<Vec<Request>>,
}

impl Gen {
    fn new(budget: usize, _rng: &mut Prng) -> Self {
        Self {
            budget,
            phases: Vec::new(),
        }
    }

    /// Requests remaining for the next archetype: the budget is divided
    /// evenly over archetypes as they are added (first gets half, etc.).
    fn chunk(&self) -> usize {
        (self.budget / 2).max(1)
    }

    fn push_phase(&mut self, reqs: Vec<Request>) {
        self.budget = self.budget.saturating_sub(reqs.len());
        self.phases.push(reqs);
    }

    /// Round-robin over `arrays` sequential arrays.
    fn stream(
        &mut self,
        rng: &mut Prng,
        arrays: u64,
        array_bytes: u64,
        step: u64,
        write_frac: f64,
    ) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let mut offsets = vec![0u64; arrays as usize];
        for i in 0..n {
            let a = i as u64 % arrays;
            let base = 0x1000_0000 + a * 0x1000_0000;
            let addr = base + offsets[a as usize] % array_bytes;
            offsets[a as usize] += step;
            let op = if rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, if step >= 8 { 8 } else { 4 }));
        }
        self.push_phase(reqs);
    }

    /// Repeated cyclic scan of a working set (LRU-hostile when the set is
    /// slightly larger than the cache).
    fn cyclic(&mut self, rng: &mut Prng, ws_bytes: u64, step: u64, write_frac: f64) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let base = 0x3000_0000;
        for i in 0..n as u64 {
            let addr = base + (i * step) % ws_bytes;
            let op = if rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, 8));
        }
        self.push_phase(reqs);
    }

    /// Streams spaced exactly `spacing` bytes apart so they collide in the
    /// same cache set at every associativity; segments with `k` streams hit
    /// once `k ≤ ways`, so misses fall as associativity grows.
    fn conflict(&mut self, rng: &mut Prng, ks: &[u64], spacing: u64, write_frac: f64) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let per_segment = n / ks.len();
        for (seg, &k) in ks.iter().enumerate() {
            let base = 0x4000_0000 + seg as u64 * 0x0800_0000;
            let mut i = 0u64;
            // Revisit each position `k`-stream-wise several times so there
            // is reuse to hit on.
            let revisits = 6u64;
            while (i as usize) < per_segment {
                let pos = (i / (k * revisits)) * 64 % 0x4000;
                let stream = i % k;
                let addr = base + stream * spacing + pos;
                let op = if rng.gen_bool(write_frac) {
                    Op::Write
                } else {
                    Op::Read
                };
                reqs.push(Request::new(0, addr, op, 8));
                i += 1;
            }
        }
        self.push_phase(reqs);
    }

    /// Zipf-hot heap blocks.
    fn zipf_heap(&mut self, rng: &mut Prng, blocks: usize, s: f64, write_frac: f64) {
        let n = self.chunk();
        let zipf = Zipf::new(blocks, s);
        let mut reqs = Vec::with_capacity(n);
        for _ in 0..n {
            let b = zipf.sample(rng) as u64;
            // Heap objects are block-aligned at the L1 boundary; keeping
            // strides block-quantized also keeps profile entropy realistic.
            let addr = 0x6000_0000 + b * 64;
            let op = if rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, 8));
        }
        self.push_phase(reqs);
    }

    /// Uniformly random block touches over a large footprint.
    fn pointer_chase(&mut self, rng: &mut Prng, footprint: u64, write_frac: f64) {
        let n = self.chunk();
        let blocks = footprint / 64;
        let mut reqs = Vec::with_capacity(n);
        for _ in 0..n {
            let b = rng.gen_range(0..blocks);
            let op = if rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, 0x8000_0000 + b * 64, op, 8));
        }
        self.push_phase(reqs);
    }

    /// Block-matching search: for each macroblock, scan a `w × h`-block 2-D
    /// window of a pitched frame.
    fn motion2d(&mut self, rng: &mut Prng, pitch: u64, w: u64, h: u64, write_frac: f64) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let mut i = 0u64;
        let window = w * h;
        while (i as usize) < n {
            let mb = i / window;
            let inner = i % window;
            let row = inner / w;
            let col = inner % w;
            // Line-granular fetches: the search window's locality lives at
            // the cache-block level, where it survives statistical replay.
            let base = 0xA000_0000 + (mb % 64) * 1024;
            let addr = base + row * pitch + col * 64;
            let op = if rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, 8));
            i += 1;
        }
        self.push_phase(reqs);
    }

    /// Three-row stencil sweep over a pitched grid.
    fn stencil(&mut self, rng: &mut Prng, pitch: u64, rows: u64, write_frac: f64) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let cols = pitch / 8;
        let mut i = 0u64;
        while (i as usize) < n {
            let col = (i / 3) % cols;
            let row = ((i / 3) / cols) % rows;
            let tap = i % 3; // row-1, row, row+1
            let addr = 0xB000_0000 + (row + tap) * pitch + col * 8;
            let op = if tap == 1 && rng.gen_bool(write_frac) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, 8));
            i += 1;
        }
        self.push_phase(reqs);
    }

    /// Blocked matrix traversal (three matrices, block × block tiles).
    fn blocked(&mut self, rng: &mut Prng, dim: u64, block: u64, write_frac: f64) {
        let n = self.chunk();
        let mut reqs = Vec::with_capacity(n);
        let pitch = dim * 8;
        let mut i = 0u64;
        while (i as usize) < n {
            let tile = i / (block * block);
            let inner = i % (block * block);
            let r = inner / block;
            let c = inner % block;
            let mat = tile % 3;
            let base = 0xC000_0000 + mat * 0x0100_0000 + (tile / 3 % 16) * block * 8;
            let addr = base + r * pitch + c * 8;
            let op = if mat == 2 && rng.gen_bool((write_frac * 3.0).min(1.0)) {
                Op::Write
            } else {
                Op::Read
            };
            reqs.push(Request::new(0, addr, op, 8));
            i += 1;
        }
        self.push_phase(reqs);
    }

    /// Interleaves all phases round-robin and assigns instruction-count
    /// timestamps.
    fn finish(self) -> Trace {
        let mut cursors: Vec<std::vec::IntoIter<Request>> =
            self.phases.into_iter().map(Vec::into_iter).collect();
        let mut out = Vec::new();
        let mut t = 0u64;
        let mut live = cursors.len();
        while live > 0 {
            live = 0;
            for c in &mut cursors {
                if let Some(mut r) = c.next() {
                    r.timestamp = t;
                    t += 3; // a few instructions between memory ops
                    out.push(r);
                    live += 1;
                }
            }
        }
        Trace::from_sorted_requests(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_names_generate() {
        for name in NAMES {
            let t = generate_n(name, 1, 2_000).unwrap();
            assert!(t.len() >= 1_000, "{name} produced {}", t.len());
            assert!(t.len() <= 2_200, "{name} produced {}", t.len());
        }
    }

    #[test]
    fn fig15_names_are_a_subset() {
        for name in FIG15_NAMES {
            assert!(NAMES.contains(&name));
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for name in FIG15_NAMES {
            assert_eq!(
                generate_n(name, 3, 5_000).unwrap(),
                generate_n(name, 3, 5_000).unwrap()
            );
        }
    }

    #[test]
    fn traces_mix_reads_and_writes() {
        for name in NAMES {
            let t = generate_n(name, 1, 5_000).unwrap();
            let s = t.stats();
            assert!(s.reads > 0, "{name} has no reads");
            assert!(s.writes > 0, "{name} has no writes");
            assert!(
                s.read_fraction > 0.4,
                "{name} read fraction {}",
                s.read_fraction
            );
        }
    }

    #[test]
    fn timestamps_increase() {
        let t = generate_n("gcc", 1, 5_000).unwrap();
        assert!(t
            .requests()
            .windows(2)
            .all(|w| w[0].timestamp < w[1].timestamp));
    }

    #[test]
    fn libquantum_is_streaming() {
        // Every 64 B block should be touched at most a handful of times.
        let t = generate_n("libquantum", 1, 20_000).unwrap();
        let mut blocks = std::collections::HashMap::new();
        for r in t.iter() {
            *blocks.entry(r.address / 64).or_insert(0usize) += 1;
        }
        let max = blocks.values().copied().max().unwrap();
        assert!(max <= 16, "hot block touched {max} times");
    }

    #[test]
    fn unknown_name_is_a_typed_error() {
        let err = generate("not-a-benchmark", 0).unwrap_err();
        assert_eq!(
            err,
            WorkloadError::UnknownBenchmark("not-a-benchmark".to_string())
        );
        assert!(err.to_string().contains("not-a-benchmark"));
    }
}
