//! Shared building blocks for workload generators.

use mocktails_trace::rng::Prng;
use mocktails_trace::rng::Rng;
use mocktails_trace::{Op, Request};

/// A linear (constant-stride) request stream.
///
/// Emits `n` requests starting at `(t0, base)`, advancing `gap` cycles and
/// `stride` bytes per request.
pub(crate) fn linear_stream(
    t0: u64,
    gap: u64,
    base: u64,
    stride: i64,
    n: usize,
    size: u32,
    op: Op,
) -> Vec<Request> {
    let mut out = Vec::with_capacity(n);
    let mut t = t0;
    let mut addr = base;
    for _ in 0..n {
        out.push(Request::new(t, addr, op, size));
        t += gap;
        addr = addr.wrapping_add(stride as u64);
    }
    out
}

/// A tiled 2D walk: visits `tiles` tiles, each `lines` lines tall; within a
/// tile, consecutive requests jump by the frame `pitch` (bytes per line),
/// and consecutive tiles advance by `tile_width` bytes (wrapping to the
/// next tile row every `tiles_per_row`).
///
/// This is how a tiled frame-buffer consumer touches memory: short row
/// runs, frequent pitch-sized jumps.
// lint: allow(L011, the tiled-walk geometry genuinely has this many independent knobs)
#[allow(clippy::too_many_arguments)]
pub(crate) fn tiled_stream(
    t0: u64,
    gap: u64,
    base: u64,
    pitch: u64,
    tile_width: u64,
    lines: u64,
    tiles: u64,
    tiles_per_row: u64,
    size: u32,
    op: Op,
) -> Vec<Request> {
    let mut out = Vec::with_capacity((tiles * lines) as usize);
    let mut t = t0;
    for tile in 0..tiles {
        let tile_row = tile / tiles_per_row;
        let tile_col = tile % tiles_per_row;
        let tile_base = base + tile_row * pitch * lines + tile_col * tile_width;
        for line in 0..lines {
            out.push(Request::new(t, tile_base + line * pitch, op, size));
            t += gap;
        }
    }
    out
}

/// Requests at uniformly random block-aligned addresses within
/// `[base, base + span)`.
// lint: allow(L011, the random-region stream shares the tiled-walk knob set)
#[allow(clippy::too_many_arguments)]
pub(crate) fn random_in_region(
    rng: &mut Prng,
    t0: u64,
    gap: u64,
    base: u64,
    span: u64,
    align: u64,
    n: usize,
    size: u32,
    op: Op,
) -> Vec<Request> {
    let slots = (span / align).max(1);
    let mut out = Vec::with_capacity(n);
    let mut t = t0;
    for _ in 0..n {
        let addr = base + rng.gen_range(0..slots) * align;
        out.push(Request::new(t, addr, op, size));
        t += gap;
    }
    out
}

/// Sample from a Zipf-like distribution over `n` items with exponent `s`,
/// using a precomputed CDF.
#[derive(Debug, Clone)]
pub(crate) struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub(crate) fn new(n: usize, s: f64) -> Self {
        assert!(n > 0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Self { cdf: weights }
    }

    pub(crate) fn sample(&self, rng: &mut Prng) -> usize {
        let u: f64 = rng.gen_f64();
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN")) // lint: allow(L001, CDF entries come from finite weights and are never NaN)
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Merges streams into one timestamp-sorted request vector.
pub(crate) fn merge(streams: Vec<Vec<Request>>) -> Vec<Request> {
    let mut all: Vec<Request> = streams.into_iter().flatten().collect();
    all.sort_by_key(|r| r.timestamp);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_stream_strides() {
        let s = linear_stream(10, 2, 0x100, 64, 4, 64, Op::Read);
        let addrs: Vec<u64> = s.iter().map(|r| r.address).collect();
        assert_eq!(addrs, vec![0x100, 0x140, 0x180, 0x1c0]);
        let times: Vec<u64> = s.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![10, 12, 14, 16]);
    }

    #[test]
    fn linear_stream_negative_stride() {
        let s = linear_stream(0, 1, 0x200, -64, 3, 64, Op::Write);
        let addrs: Vec<u64> = s.iter().map(|r| r.address).collect();
        assert_eq!(addrs, vec![0x200, 0x1c0, 0x180]);
    }

    #[test]
    fn tiled_stream_jumps_by_pitch() {
        let s = tiled_stream(0, 1, 0, 4096, 64, 4, 2, 16, 64, Op::Read);
        assert_eq!(s.len(), 8);
        // Within the first tile: pitch jumps.
        assert_eq!(s[1].address - s[0].address, 4096);
        // Second tile starts one tile_width over.
        assert_eq!(s[4].address, 64);
    }

    #[test]
    fn random_in_region_stays_inside_and_aligned() {
        let mut rng = Prng::seed_from_u64(1);
        let s = random_in_region(&mut rng, 0, 3, 0x10_000, 0x4000, 64, 200, 64, Op::Read);
        for r in &s {
            assert!(r.address >= 0x10_000 && r.address < 0x14_000);
            assert_eq!(r.address % 64, 0);
        }
    }

    #[test]
    fn zipf_is_skewed() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Prng::seed_from_u64(2);
        let mut head = 0;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // The top 10% of items should draw well over half the accesses.
        assert!(head > n / 2, "only {head}/{n} in head");
    }

    #[test]
    fn merge_sorts_by_time() {
        let a = linear_stream(0, 10, 0, 64, 5, 64, Op::Read);
        let b = linear_stream(5, 10, 0x1000, 64, 5, 64, Op::Write);
        let m = merge(vec![a, b]);
        assert!(m.windows(2).all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(m.len(), 10);
    }
}
