//! Deterministic scoped-thread parallelism for the Mocktails workspace.
//!
//! Mocktails' hot paths are embarrassingly parallel: every leaf McC model
//! fits its partition independently (paper §III-B), every Table II
//! workload evaluates independently, and every seeded fuzz case mutates
//! and decodes independently. What makes parallelizing them delicate is
//! the workspace's headline invariant — *every output must be
//! bit-identical at any thread count*. A conventional work-stealing pool
//! breaks that promise the moment result order depends on scheduling.
//!
//! This crate therefore provides exactly one primitive, [`Parallelism::map`],
//! with a deterministic contract:
//!
//! * work is split into **contiguous index chunks**, assigned to threads
//!   by chunk index, never stolen or rebalanced;
//! * results are **merged in submission order**, so the output `Vec` is
//!   the same as a sequential `items.iter().map(f).collect()` regardless
//!   of which thread finished first;
//! * a thread count of **1 short-circuits to the plain sequential map**
//!   (no threads are spawned at all — the exact legacy code path).
//!
//! The only thing parallelism may change is wall-clock time.
//!
//! Threads are scoped ([`std::thread::scope`]), so `f` can borrow from the
//! caller's stack and no detached worker outlives a call. The crate has no
//! dependencies and is the single place in the workspace allowed to touch
//! [`std::thread`] (enforced by lint rule L007).
//!
//! # Choosing a thread count
//!
//! [`Parallelism::current`] resolves the process-wide default: an explicit
//! [`Parallelism::make_current`] pin (the CLI's `--threads N`) wins,
//! otherwise the `MOCKTAILS_THREADS` environment variable, otherwise all
//! available cores.
//!
//! # Example
//!
//! ```
//! use mocktails_pool::Parallelism;
//!
//! let squares = Parallelism::new(4).map(&[1u64, 2, 3, 4, 5], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! // Bit-identical at any thread count:
//! assert_eq!(squares, Parallelism::sequential().map(&[1u64, 2, 3, 4, 5], |&x| x * x));
//! ```

pub mod bounded;

use std::sync::OnceLock;

/// The environment variable consulted by [`Parallelism::from_env`].
pub const THREADS_ENV_VAR: &str = "MOCKTAILS_THREADS";

/// The process-wide default, pinned once by [`Parallelism::make_current`]
/// or lazily resolved from the environment by [`Parallelism::current`].
static CURRENT: OnceLock<Parallelism> = OnceLock::new();

/// A validated worker-thread count for [`Parallelism::map`].
///
/// The count only bounds concurrency; it never influences results. One
/// thread means strictly sequential execution with no spawns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parallelism {
    threads: usize,
}

impl Parallelism {
    /// A parallelism of `threads` worker threads. Zero is clamped to one:
    /// there is no meaningful "no threads" execution, and callers that
    /// want to reject `0` loudly (the CLI does) can do so before calling.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Single-threaded execution — the exact legacy code path.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// One thread per available core (falling back to sequential when the
    /// platform cannot report its core count).
    pub fn available() -> Self {
        let threads = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self::new(threads)
    }

    /// Resolves the thread count from the `MOCKTAILS_THREADS` environment
    /// variable; unset, empty, zero or unparsable values fall back to
    /// [`Parallelism::available`] so a broken environment degrades to the
    /// default rather than failing.
    pub fn from_env() -> Self {
        match std::env::var(THREADS_ENV_VAR) {
            Ok(value) => match parse_threads(&value) {
                Some(threads) => Self::new(threads),
                None => Self::available(),
            },
            Err(_) => Self::available(),
        }
    }

    /// The process-wide default: the value pinned by
    /// [`Parallelism::make_current`] if any, otherwise
    /// [`Parallelism::from_env`], cached for the life of the process.
    pub fn current() -> Self {
        *CURRENT.get_or_init(Self::from_env)
    }

    /// Pins `self` as the process-wide default consulted by
    /// [`Parallelism::current`]. The first pin wins (matching
    /// [`OnceLock`] semantics); the value actually in effect is returned,
    /// so callers can detect a lost race.
    pub fn make_current(self) -> Self {
        *CURRENT.get_or_init(|| self)
    }

    /// The worker-thread count (always at least 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// Work is partitioned into at most `threads` contiguous chunks of
    /// `ceil(len / threads)` items; chunk `k` covers input indices
    /// `[k * chunk_len, (k + 1) * chunk_len)` and its results land in the
    /// output at exactly those indices. The assignment depends only on
    /// `items.len()` and the thread count — never on scheduling — so the
    /// returned `Vec` is bit-identical to the sequential map.
    ///
    /// A panic in `f` propagates to the caller (after all worker threads
    /// have been joined), exactly as it would in a sequential loop.
    pub fn map<T, U, F>(self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        let threads = self.threads.min(items.len());
        if threads <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk_len = items.len().div_ceil(threads);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_len)
                .map(|chunk| scope.spawn(move || chunk.iter().map(f).collect::<Vec<U>>()))
                .collect();
            let mut results = Vec::with_capacity(items.len());
            for handle in handles {
                match handle.join() {
                    Ok(chunk_results) => results.extend(chunk_results),
                    // Re-raise the worker's panic on the calling thread;
                    // the scope joins the remaining workers on unwind.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            results
        })
    }
}

impl Default for Parallelism {
    /// Defaults to [`Parallelism::current`] so options structs embedding a
    /// `Parallelism` inherit the process-wide setting.
    fn default() -> Self {
        Self::current()
    }
}

/// Parses a `MOCKTAILS_THREADS` value; `None` means "fall back to the
/// available-core default".
fn parse_threads(value: &str) -> Option<usize> {
    match value.trim().parse::<usize>() {
        Ok(0) | Err(_) => None,
        Ok(threads) => Some(threads),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::sequential().threads(), 1);
    }

    #[test]
    fn available_is_at_least_one() {
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn map_preserves_input_order_at_every_thread_count() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 7, 8, 64, 1000, 2000] {
            let got = Parallelism::new(threads).map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "threads = {threads}");
        }
    }

    #[test]
    fn map_handles_empty_and_tiny_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Parallelism::new(8).map(&empty, |&x| x).is_empty());
        assert_eq!(Parallelism::new(8).map(&[42u32], |&x| x + 1), vec![43]);
    }

    #[test]
    fn map_borrows_caller_state() {
        let offset = 100u64;
        let got = Parallelism::new(4).map(&[1u64, 2, 3], |&x| x + offset);
        assert_eq!(got, vec![101, 102, 103]);
    }

    #[test]
    fn chunk_assignment_is_independent_of_scheduling() {
        // Results must identify the worker only through the input value,
        // never through spawn/finish order: map the index back out and
        // check it is untouched.
        let items: Vec<usize> = (0..257).collect();
        let got = Parallelism::new(13).map(&items, |&i| i);
        assert_eq!(got, items);
    }

    #[test]
    #[should_panic(expected = "worker exploded")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..64).collect();
        let _ = Parallelism::new(4).map(&items, |&x| {
            assert!(x < 40, "worker exploded");
            x
        });
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads(""), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads("-2"), None);
    }

    #[test]
    fn current_is_stable_across_calls() {
        assert_eq!(Parallelism::current(), Parallelism::current());
        // After the first resolution, make_current cannot repin.
        let effective = Parallelism::new(12345).make_current();
        assert_eq!(effective, Parallelism::current());
    }
}
