//! A bounded, long-lived worker pool for the serving layer.
//!
//! [`crate::Parallelism::map`] is the right primitive for the synthesis
//! pipeline — scoped fork/join over a known item list — but a server needs
//! the opposite shape: jobs arrive one at a time from many connections,
//! must be *refused* (not queued unboundedly) under overload, and the pool
//! must outlive any single call. [`WorkerPool`] provides that shape:
//!
//! * a fixed set of worker threads, spawned once;
//! * a FIFO queue with a hard depth cap — [`WorkerPool::submit`] returns
//!   [`SubmitError::QueueFull`] instead of blocking or growing, so the
//!   caller can surface a typed "busy" error to its client;
//! * [`WorkerPool::drain`] for graceful shutdown: stop accepting, run
//!   everything already admitted to completion, then return.
//!
//! Determinism note: the pool executes each job on *some* worker, so
//! anything order-sensitive must be sequenced by the job itself. The
//! serving layer keeps the workspace's bit-identical-output invariant by
//! making every job self-contained (one request in, one deterministic
//! byte stream out) — scheduling only affects interleaving between
//! independent jobs, never the bytes of any one response.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;

/// A unit of work accepted by [`WorkerPool::submit`].
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a job was not admitted to the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue already holds `cap` pending jobs; the caller should shed
    /// load (e.g. reply "busy") rather than wait.
    QueueFull {
        /// The configured queue-depth cap that was hit.
        cap: usize,
    },
    /// The pool is draining or dropped; no new work is accepted.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::QueueFull { cap } => write!(f, "worker queue full (cap {cap})"),
            Self::ShuttingDown => write!(f, "worker pool is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Shared pool state behind the mutex.
#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    /// Jobs currently executing on a worker.
    in_flight: usize,
    /// Set by [`WorkerPool::drain`] / `Drop`: reject new work, finish the
    /// backlog, then let workers exit.
    draining: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signaled when the queue gains a job or `draining` flips.
    work_ready: Condvar,
    /// Signaled when a job finishes or the queue empties, for `drain`.
    quiesced: Condvar,
}

impl Shared {
    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A worker that panicked mid-job poisons nothing we can't repair:
        // the state is just counters and a queue of opaque closures.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A fixed-size worker pool with a bounded FIFO submission queue.
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use mocktails_pool::bounded::WorkerPool;
///
/// let pool = WorkerPool::new(2, 8);
/// let hits = Arc::new(AtomicU32::new(0));
/// for _ in 0..4 {
///     let hits = Arc::clone(&hits);
///     pool.submit(move || {
///         hits.fetch_add(1, Ordering::SeqCst);
///     })
///     .unwrap();
/// }
/// pool.drain();
/// assert_eq!(hits.load(Ordering::SeqCst), 4);
/// ```
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    queue_cap: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("queue_cap", &self.queue_cap)
            .field("queued", &self.queued())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `threads` workers (clamped to at least 1) sharing a queue
    /// that admits at most `queue_cap` jobs beyond the ones running. A cap
    /// of 0 means "no waiting room": a job is only admitted when a worker
    /// is free to take it immediately.
    pub fn new(threads: usize, queue_cap: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State::default()),
            work_ready: Condvar::new(),
            quiesced: Condvar::new(),
        });
        let workers = (0..threads.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Self {
            shared,
            workers,
            queue_cap,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// The configured queue-depth cap.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    /// Jobs admitted but not yet picked up by a worker.
    pub fn queued(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Jobs currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }

    /// Enqueues `job`, or refuses it with a typed error.
    ///
    /// Admission is bounded by *outstanding* work: at most
    /// `threads + queue_cap` jobs may be running or queued at once. The
    /// bound is checked and the queue updated under one lock, so from any
    /// client's view the refusal is deterministic — while `threads`
    /// admitted jobs are known to be unfinished, the
    /// `threads + queue_cap + 1`-th concurrent submission always gets
    /// [`SubmitError::QueueFull`].
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] when the outstanding-work bound is hit
    /// (the job is *not* retained); [`SubmitError::ShuttingDown`] after
    /// [`WorkerPool::drain`].
    pub fn submit<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.lock();
        if state.draining {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() + state.in_flight >= self.workers.len() + self.queue_cap {
            return Err(SubmitError::QueueFull {
                cap: self.queue_cap,
            });
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Enqueues a *continuation* of already-admitted work, bypassing the
    /// queue-depth cap.
    ///
    /// The admission bound exists to shed new requests; a continuation
    /// (say, the next chunk of a streaming response that was admitted
    /// long ago) must never be refused for queue pressure, or the stream
    /// it belongs to wedges with its resources held. Continuations are
    /// still bounded in aggregate — each admitted stream keeps at most
    /// one in flight.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShuttingDown`] after [`WorkerPool::drain`].
    pub fn submit_continuation<F>(&self, job: F) -> Result<(), SubmitError>
    where
        F: FnOnce() + Send + 'static,
    {
        let mut state = self.shared.lock();
        if state.draining {
            return Err(SubmitError::ShuttingDown);
        }
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.work_ready.notify_one();
        Ok(())
    }

    /// Jobs running or queued.
    pub fn outstanding(&self) -> usize {
        let state = self.shared.lock();
        state.queue.len() + state.in_flight
    }

    /// Stops accepting work, runs every already-admitted job to
    /// completion, and returns once the pool is idle. Workers stay alive
    /// (and exit on `Drop`); calling `drain` twice is harmless.
    pub fn drain(&self) {
        let mut state = self.shared.lock();
        state.draining = true;
        self.shared.work_ready.notify_all();
        while !state.queue.is_empty() || state.in_flight > 0 {
            state = self
                .shared
                .quiesced
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.drain();
        for handle in self.workers.drain(..) {
            // A worker that panicked already had its job isolated by
            // catch_unwind; a join error here is unreachable in practice
            // and not worth propagating out of Drop.
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.in_flight += 1;
                    if state.queue.is_empty() {
                        shared.quiesced.notify_all();
                    }
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // A panicking job must not take the worker (or drain) down with
        // it: isolate it and keep serving.
        let _ = catch_unwind(AssertUnwindSafe(job));
        let mut state = shared.lock();
        state.in_flight -= 1;
        if state.queue.is_empty() && state.in_flight == 0 {
            shared.quiesced.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;

    #[test]
    fn runs_submitted_jobs() {
        let pool = WorkerPool::new(3, 16);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            // Overload sheds with QueueFull; a client retries.
            loop {
                let count = Arc::clone(&count);
                match pool.submit(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                }) {
                    Ok(()) => break,
                    Err(SubmitError::QueueFull { .. }) => std::thread::yield_now(),
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
        }
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn queue_cap_refuses_excess_without_blocking() {
        let pool = WorkerPool::new(1, 1);
        // Occupy the single worker until released.
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            running_tx.send(()).ok();
            release_rx.recv().ok();
        })
        .unwrap();
        running_rx.recv().unwrap();
        // One job fits in the queue; the next must be refused.
        pool.submit(|| {}).unwrap();
        assert_eq!(pool.submit(|| {}), Err(SubmitError::QueueFull { cap: 1 }));
        release_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn zero_cap_means_no_waiting_room() {
        let pool = WorkerPool::new(1, 0);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            running_tx.send(()).ok();
            release_rx.recv().ok();
        })
        .unwrap();
        running_rx.recv().unwrap();
        // Worker busy and no waiting room: every submission is refused.
        assert_eq!(pool.submit(|| {}), Err(SubmitError::QueueFull { cap: 0 }));
        release_tx.send(()).unwrap();
        pool.drain();
    }

    #[test]
    fn continuation_bypasses_the_cap_but_not_drain() {
        let pool = WorkerPool::new(1, 0);
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let (running_tx, running_rx) = mpsc::channel::<()>();
        pool.submit(move || {
            running_tx.send(()).ok();
            release_rx.recv().ok();
        })
        .unwrap();
        running_rx.recv().unwrap();
        // Zero waiting room: a fresh submit sheds, a continuation lands.
        assert_eq!(pool.submit(|| {}), Err(SubmitError::QueueFull { cap: 0 }));
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        pool.submit_continuation(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(pool.outstanding(), 2, "blocked job + queued continuation");
        release_tx.send(()).unwrap();
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
        assert_eq!(
            pool.submit_continuation(|| {}),
            Err(SubmitError::ShuttingDown)
        );
    }

    #[test]
    fn drain_completes_backlog_then_rejects() {
        let pool = WorkerPool::new(2, 64);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let count = Arc::clone(&count);
            pool.submit(move || {
                count.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 32);
        assert_eq!(pool.submit(|| {}), Err(SubmitError::ShuttingDown));
        // Second drain is a no-op, not a hang.
        pool.drain();
    }

    #[test]
    fn panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1, 8);
        let count = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("job exploded")).unwrap();
        let c = Arc::clone(&count);
        pool.submit(move || {
            c.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        pool.drain();
        assert_eq!(count.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn drop_joins_workers() {
        let count = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(4, 64);
            for _ in 0..16 {
                let count = Arc::clone(&count);
                pool.submit(move || {
                    count.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
            }
        }
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }
}
