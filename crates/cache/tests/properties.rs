//! Property-based tests of the cache simulator's invariants.

use proptest::prelude::*;

use mocktails_cache::{Cache, CacheConfig, CacheHierarchy, Replacement};
use mocktails_trace::{Op, Request, Trace};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..100_000,
        0u64..0x4_0000,
        any::<bool>(),
        prop_oneof![Just(4u32), Just(8), Just(16), Just(64)],
    )
        .prop_map(|(t, addr, write, size)| {
            let op = if write { Op::Write } else { Op::Read };
            Request::new(t, addr, op, size)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn single_level_conservation(
        accesses in prop::collection::vec((0u64..0x1_0000, any::<bool>()), 1..400),
        replacement in prop_oneof![
            Just(Replacement::Lru),
            Just(Replacement::Fifo),
            Just(Replacement::Random)
        ],
    ) {
        let cfg = CacheConfig::new(2 << 10, 2, 64).with_replacement(replacement);
        let mut cache = Cache::new(cfg);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for &(addr, write) in &accesses {
            let op = if write { Op::Write } else { Op::Read };
            let block = addr / 64 * 64;
            let out = cache.access(addr, op);
            // Hit iff the block is actually resident.
            prop_assert_eq!(out.hit, resident.contains(&block));
            if let Some((victim, _)) = out.evicted {
                prop_assert!(resident.remove(&victim), "evicted non-resident block");
            }
            resident.insert(block);
            // Never exceed capacity.
            prop_assert!(resident.len() <= 32);
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
        prop_assert!(stats.write_backs <= stats.replacements);
        prop_assert!(stats.footprint_bytes >= resident.len() as u64 * 64);
    }

    #[test]
    fn hierarchy_inclusion_style_invariants(
        reqs in prop::collection::vec(arb_request(), 1..300),
    ) {
        let trace = Trace::from_requests(reqs);
        let stats = CacheHierarchy::paper_config(8 << 10, 2).run_trace(&trace);
        // L2 traffic = L1 misses + L1 dirty write-backs.
        prop_assert_eq!(stats.l2.accesses, stats.l1.misses + stats.l1.write_backs);
        // Footprints agree at the block level (same blocks flow down).
        prop_assert!(stats.l2.footprint_bytes <= stats.l1.footprint_bytes);
        // Rates bounded.
        prop_assert!((0.0..=1.0).contains(&stats.l1.miss_rate()));
        prop_assert!((0.0..=1.0).contains(&stats.l2.miss_rate()));
    }

    #[test]
    fn bigger_caches_never_miss_more_under_lru_inclusion(
        reqs in prop::collection::vec(arb_request(), 1..300),
    ) {
        // LRU stack property: for a fully-associative cache, a bigger one
        // never misses more. Use ways == sets*ways blocks with one set to
        // make the caches fully associative.
        let trace = Trace::from_requests(reqs);
        let run = |blocks: usize| {
            let cfg = CacheConfig::new(blocks as u64 * 64, blocks, 64);
            let mut cache = Cache::new(cfg);
            for r in trace.iter() {
                cache.access(r.address, r.op);
            }
            cache.stats().misses
        };
        prop_assert!(run(64) >= run(128));
    }

    #[test]
    fn replacement_policies_agree_on_compulsory_misses(
        reqs in prop::collection::vec(arb_request(), 1..200),
    ) {
        let trace = Trace::from_requests(reqs);
        let distinct = trace
            .iter()
            .map(|r| r.address / 64)
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        for replacement in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let cfg = CacheConfig::new(1 << 10, 2, 64).with_replacement(replacement);
            let mut cache = Cache::new(cfg);
            for r in trace.iter() {
                cache.access(r.address, r.op);
            }
            // At least one miss per distinct block, regardless of policy.
            prop_assert!(cache.stats().misses >= distinct);
        }
    }
}
