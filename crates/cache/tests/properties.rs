//! Randomized property tests of the cache simulator's invariants, driven
//! by the workspace's deterministic PRNG so the suite builds hermetically.

use mocktails_cache::{Cache, CacheConfig, CacheHierarchy, Replacement};
use mocktails_trace::rng::{Prng, Rng};
use mocktails_trace::{Op, Request, Trace};

const CASES: u64 = 64;

fn rand_request(rng: &mut Prng) -> Request {
    let t = rng.gen_range(0..100_000u64);
    let addr = rng.gen_range(0..0x4_0000u64);
    let op = if rng.gen_bool(0.5) {
        Op::Write
    } else {
        Op::Read
    };
    let size = [4u32, 8, 16, 64][rng.gen_range(0..4usize)];
    Request::new(t, addr, op, size)
}

fn rand_trace(rng: &mut Prng, max: usize) -> Trace {
    let n = rng.gen_range(1..max);
    Trace::from_requests((0..n).map(|_| rand_request(rng)).collect())
}

#[test]
fn single_level_conservation() {
    let mut rng = Prng::seed_from_u64(0xCAC4_E001);
    for case in 0..CASES {
        let accesses: Vec<(u64, bool)> = (0..rng.gen_range(1..400usize))
            .map(|_| (rng.gen_range(0..0x1_0000u64), rng.gen_bool(0.5)))
            .collect();
        let replacement =
            [Replacement::Lru, Replacement::Fifo, Replacement::Random][rng.gen_range(0..3usize)];
        let cfg = CacheConfig::new(2 << 10, 2, 64).with_replacement(replacement);
        let mut cache = Cache::new(cfg);
        let mut resident: std::collections::HashSet<u64> = Default::default();
        for &(addr, write) in &accesses {
            let op = if write { Op::Write } else { Op::Read };
            let block = addr / 64 * 64;
            let out = cache.access(addr, op);
            // Hit iff the block is actually resident.
            assert_eq!(out.hit, resident.contains(&block), "case {case}");
            if let Some((victim, _)) = out.evicted {
                assert!(
                    resident.remove(&victim),
                    "case {case}: evicted non-resident block"
                );
            }
            resident.insert(block);
            // Never exceed capacity.
            assert!(resident.len() <= 32, "case {case}");
        }
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, stats.accesses, "case {case}");
        assert!(stats.write_backs <= stats.replacements, "case {case}");
        assert!(
            stats.footprint_bytes >= resident.len() as u64 * 64,
            "case {case}"
        );
    }
}

#[test]
fn hierarchy_inclusion_style_invariants() {
    let mut rng = Prng::seed_from_u64(0xCAC4_E002);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng, 300);
        let stats = CacheHierarchy::paper_config(8 << 10, 2).run_trace(&trace);
        // L2 traffic = L1 misses + L1 dirty write-backs.
        assert_eq!(
            stats.l2.accesses,
            stats.l1.misses + stats.l1.write_backs,
            "case {case}"
        );
        // Footprints agree at the block level (same blocks flow down).
        assert!(
            stats.l2.footprint_bytes <= stats.l1.footprint_bytes,
            "case {case}"
        );
        // Rates bounded.
        assert!((0.0..=1.0).contains(&stats.l1.miss_rate()), "case {case}");
        assert!((0.0..=1.0).contains(&stats.l2.miss_rate()), "case {case}");
    }
}

#[test]
fn bigger_caches_never_miss_more_under_lru_inclusion() {
    // LRU stack property: for a fully-associative cache, a bigger one
    // never misses more. Use ways == sets*ways blocks with one set to
    // make the caches fully associative.
    let mut rng = Prng::seed_from_u64(0xCAC4_E003);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng, 300);
        let run = |blocks: usize| {
            let cfg = CacheConfig::new(blocks as u64 * 64, blocks, 64);
            let mut cache = Cache::new(cfg);
            for r in trace.iter() {
                cache.access(r.address, r.op);
            }
            cache.stats().misses
        };
        assert!(run(64) >= run(128), "case {case}");
    }
}

#[test]
fn replacement_policies_agree_on_compulsory_misses() {
    let mut rng = Prng::seed_from_u64(0xCAC4_E004);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng, 200);
        let distinct = trace
            .iter()
            .map(|r| r.address / 64)
            .collect::<std::collections::HashSet<_>>()
            .len() as u64;
        for replacement in [Replacement::Lru, Replacement::Fifo, Replacement::Random] {
            let cfg = CacheConfig::new(1 << 10, 2, 64).with_replacement(replacement);
            let mut cache = Cache::new(cfg);
            for r in trace.iter() {
                cache.access(r.address, r.op);
            }
            // At least one miss per distinct block, regardless of policy.
            assert!(cache.stats().misses >= distinct, "case {case}");
        }
    }
}
