//! A two-level write-back cache hierarchy.

use mocktails_trace::{Op, Trace};

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Statistics of a two-level hierarchy run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyStats {
    /// L1 counters.
    pub l1: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
}

/// An L1 + L2 write-back hierarchy simulated in atomic mode.
///
/// L1 misses fetch through the L2; dirty L1 victims write back into the
/// L2 (marking the L2 line dirty). This matches the §V methodology: a
/// write-back L1 of varying size/associativity over a 256 KiB 8-way L2
/// with 64 B blocks and LRU replacement.
#[derive(Debug)]
pub struct CacheHierarchy {
    l1: Cache,
    l2: Cache,
}

impl CacheHierarchy {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the two levels have different block sizes (mixed-block
    /// hierarchies are out of scope, as in the paper).
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        assert_eq!(
            l1.block_bytes, l2.block_bytes,
            "levels must share a block size"
        );
        Self {
            l1: Cache::new(l1),
            l2: Cache::new(l2),
        }
    }

    /// The paper's §V baseline: a configurable L1 over a 256 KiB 8-way L2,
    /// 64 B blocks.
    pub fn paper_config(l1_bytes: u64, l1_ways: usize) -> Self {
        Self::new(
            CacheConfig::new(l1_bytes, l1_ways, 64),
            CacheConfig::new(256 << 10, 8, 64),
        )
    }

    /// Performs one request's worth of accesses (each touched block is
    /// accessed in order).
    pub fn access(&mut self, addr: u64, size: u32, op: Op) {
        let blocks: Vec<u64> = self.l1.blocks_of(addr, size).collect();
        for block in blocks {
            let outcome = self.l1.access(block, op);
            if !outcome.hit {
                // Fill path: the L2 sees a read for the missing block.
                self.l2.access(block, Op::Read);
            }
            if let Some((victim, dirty)) = outcome.evicted {
                if dirty {
                    // Write-back into the L2.
                    self.l2.access(victim, Op::Write);
                }
            }
        }
    }

    /// Replays a trace in order (timestamps ignored — atomic mode) and
    /// returns both levels' statistics.
    pub fn run_trace(&mut self, trace: &Trace) -> HierarchyStats {
        for r in trace.iter() {
            self.access(r.address, r.size, r.op);
        }
        self.stats()
    }

    /// Current statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1: self.l1.stats(),
            l2: self.l2.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_trace::Request;

    #[test]
    fn l2_sees_only_l1_misses() {
        let mut h = CacheHierarchy::paper_config(32 << 10, 4);
        // A small loop: first pass misses, later passes hit in L1.
        let mut reqs = Vec::new();
        for round in 0..10u64 {
            for i in 0..64u64 {
                reqs.push(Request::read(round * 64 + i, i * 64, 8));
            }
        }
        let stats = h.run_trace(&Trace::from_requests(reqs));
        assert_eq!(stats.l1.accesses, 640);
        assert_eq!(stats.l1.misses, 64, "only the cold pass misses");
        assert_eq!(stats.l2.accesses, 64);
    }

    #[test]
    fn dirty_l1_victims_write_back_to_l2() {
        // L1 of 512 B (8 blocks, 2-way), L2 large.
        let mut h = CacheHierarchy::new(
            CacheConfig::new(512, 2, 64),
            CacheConfig::new(64 << 10, 8, 64),
        );
        // Write 32 distinct blocks: 24 dirty evictions from L1.
        for i in 0..32u64 {
            h.access(i * 64, 8, Op::Write);
        }
        let stats = h.stats();
        assert_eq!(stats.l1.write_backs, 24);
        // The L2 absorbed 32 fills + 24 write-backs.
        assert_eq!(stats.l2.accesses, 32 + 24);
    }

    #[test]
    fn requests_spanning_blocks_touch_both() {
        let mut h = CacheHierarchy::paper_config(16 << 10, 2);
        h.access(0x3c, 16, Op::Read); // spans blocks 0 and 64
        let stats = h.stats();
        assert_eq!(stats.l1.accesses, 2);
        assert_eq!(stats.l1.misses, 2);
    }

    #[test]
    fn atomic_mode_ignores_timestamps() {
        let a = Trace::from_requests(vec![Request::read(0, 0, 8), Request::read(1, 64, 8)]);
        let b = Trace::from_requests(vec![
            Request::read(1_000_000, 0, 8),
            Request::read(2_000_000, 64, 8),
        ]);
        let sa = CacheHierarchy::paper_config(16 << 10, 2).run_trace(&a);
        let sb = CacheHierarchy::paper_config(16 << 10, 2).run_trace(&b);
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "share a block size")]
    fn mismatched_block_sizes_rejected() {
        let _ = CacheHierarchy::new(
            CacheConfig::new(512, 2, 32),
            CacheConfig::new(64 << 10, 8, 64),
        );
    }

    #[test]
    fn bigger_l1_misses_less() {
        let zipfish: Vec<Request> = (0..20_000u64)
            .map(|i| {
                // A working set of 1024 blocks with a hot head.
                let block = if i % 4 != 0 {
                    i % 64
                } else {
                    (i * 7919) % 1024
                };
                Request::read(i, block * 64, 8)
            })
            .collect();
        let trace = Trace::from_requests(zipfish);
        let small = CacheHierarchy::paper_config(16 << 10, 2).run_trace(&trace);
        let large = CacheHierarchy::paper_config(64 << 10, 2).run_trace(&trace);
        assert!(large.l1.miss_rate() < small.l1.miss_rate());
    }
}
