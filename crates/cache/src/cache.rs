//! A single set-associative cache level.

use std::collections::HashSet;

use mocktails_trace::Op;

/// Replacement policy of one cache level.
///
/// The paper's §V methodology uses LRU; §VI names replacement-policy
/// research as a Mocktails use case, which the other variants support.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Replacement {
    /// Evict the least-recently-used line (paper default).
    #[default]
    Lru,
    /// Evict the oldest-inserted line.
    Fifo,
    /// Evict a pseudo-random line (deterministic xorshift).
    Random,
}

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Block (line) size in bytes.
    pub block_bytes: u64,
    /// Replacement policy (LRU unless overridden).
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `block_bytes` and `ways` are non-zero, the capacity is
    /// a multiple of `ways * block_bytes`, and the resulting set count is a
    /// power of two (required for bit-sliced indexing).
    pub fn new(size_bytes: u64, ways: usize, block_bytes: u64) -> Self {
        assert!(block_bytes > 0 && ways > 0, "degenerate cache geometry");
        assert!(
            size_bytes.is_multiple_of(ways as u64 * block_bytes),
            "capacity must divide evenly into sets"
        );
        let sets = size_bytes / (ways as u64 * block_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        Self {
            size_bytes,
            ways,
            block_bytes,
            replacement: Replacement::Lru,
        }
    }

    /// Returns the same geometry with a different replacement policy
    /// (builder-style).
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.block_bytes)
    }
}

/// The result of a single block access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a line evicted to make room, with its dirty bit,
    /// if the access caused a replacement.
    pub evicted: Option<(u64, bool)>,
}

/// Counters for one cache level (the §V metrics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total block accesses.
    pub accesses: u64,
    /// Block hits.
    pub hits: u64,
    /// Block misses.
    pub misses: u64,
    /// Valid lines evicted to make room (replacements).
    pub replacements: u64,
    /// Dirty lines written back on eviction.
    pub write_backs: u64,
    /// Distinct blocks touched × block size (the cache footprint).
    pub footprint_bytes: u64,
}

impl CacheStats {
    /// Miss rate in `[0, 1]` (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    dirty: bool,
    /// Monotonic use stamp for LRU.
    last_use: u64,
    /// Monotonic insertion stamp for FIFO.
    inserted: u64,
}

/// One set-associative, write-back, write-allocate cache level with LRU
/// replacement, simulated in atomic mode (order only).
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    touched: HashSet<u64>,
    stats: CacheStats,
    /// xorshift64 state for [`Replacement::Random`].
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        Self {
            cfg,
            sets: vec![Vec::new(); cfg.sets() as usize],
            clock: 0,
            touched: HashSet::new(),
            stats: CacheStats::default(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        let mut s = self.stats.clone();
        s.footprint_bytes = self.touched.len() as u64 * self.cfg.block_bytes;
        s
    }

    /// Accesses the block containing `addr`. Writes mark the line dirty
    /// (write-allocate on miss). Returns the hit/eviction outcome so a
    /// hierarchy can propagate fills and write-backs.
    pub fn access(&mut self, addr: u64, op: Op) -> AccessOutcome {
        let block = addr / self.cfg.block_bytes;
        let set_idx = (block % self.cfg.sets()) as usize;
        let tag = block / self.cfg.sets();
        self.clock += 1;
        self.stats.accesses += 1;
        self.touched.insert(block);

        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.last_use = self.clock;
            if op.is_write() {
                line.dirty = true;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.stats.misses += 1;
        let mut evicted = None;
        if set.len() >= self.cfg.ways {
            let victim_idx = match self.cfg.replacement {
                Replacement::Lru => {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.last_use)
                        .expect("set non-empty") // lint: allow(L001, associativity is at least 1 so a set is never empty)
                        .0
                }
                Replacement::Fifo => {
                    set.iter()
                        .enumerate()
                        .min_by_key(|(_, l)| l.inserted)
                        .expect("set non-empty") // lint: allow(L001, associativity is at least 1 so a set is never empty)
                        .0
                }
                Replacement::Random => {
                    // xorshift64: deterministic, dependency-free.
                    self.rng_state ^= self.rng_state << 13;
                    self.rng_state ^= self.rng_state >> 7;
                    self.rng_state ^= self.rng_state << 17;
                    (self.rng_state % set.len() as u64) as usize
                }
            };
            let victim = set.swap_remove(victim_idx);
            self.stats.replacements += 1;
            if victim.dirty {
                self.stats.write_backs += 1;
            }
            let victim_block = victim.tag * self.cfg.sets() + set_idx as u64;
            evicted = Some((victim_block * self.cfg.block_bytes, victim.dirty));
        }
        set.push(Line {
            tag,
            dirty: op.is_write(),
            last_use: self.clock,
            inserted: self.clock,
        });
        AccessOutcome {
            hit: false,
            evicted,
        }
    }

    /// The block addresses an `(addr, size)` request touches.
    pub fn blocks_of(&self, addr: u64, size: u32) -> impl Iterator<Item = u64> + '_ {
        let first = addr / self.cfg.block_bytes;
        let last = (addr + u64::from(size).max(1) - 1) / self.cfg.block_bytes;
        (first..=last).map(move |b| b * self.cfg.block_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig::new(512, 2, 64))
    }

    #[test]
    fn config_geometry() {
        let c = CacheConfig::new(32 << 10, 4, 64);
        assert_eq!(c.sets(), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = CacheConfig::new(3 * 64 * 2, 2, 64);
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn uneven_capacity_rejected() {
        let _ = CacheConfig::new(1000, 2, 64);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, Op::Read).hit);
        assert!(c.access(0x100, Op::Read).hit);
        assert!(c.access(0x13f, Op::Read).hit, "same block");
        assert!(!c.access(0x140, Op::Read).hit, "next block");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 2 ways
                            // Three blocks mapping to set 0: block addresses 0, 256, 512.
        c.access(0, Op::Read);
        c.access(256, Op::Read);
        c.access(0, Op::Read); // refresh block 0
        let out = c.access(512, Op::Read); // evicts 256 (LRU)
        assert_eq!(out.evicted, Some((256, false)));
        assert!(c.access(0, Op::Read).hit, "block 0 retained");
        assert!(!c.access(256, Op::Read).hit, "block 256 evicted");
    }

    #[test]
    fn write_back_on_dirty_eviction_only() {
        let mut c = tiny();
        c.access(0, Op::Write); // dirty
        c.access(256, Op::Read); // clean
        c.access(512, Op::Read); // evicts 0 (dirty)
        c.access(768, Op::Read); // evicts 256 (clean)
        let s = c.stats();
        assert_eq!(s.replacements, 2);
        assert_eq!(s.write_backs, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0, Op::Read);
        c.access(0, Op::Write); // hit, now dirty
        c.access(256, Op::Read);
        c.access(512, Op::Read); // evicts 0
        assert_eq!(c.stats().write_backs, 1);
    }

    #[test]
    fn stats_conservation() {
        let mut c = tiny();
        for i in 0..100u64 {
            c.access(i * 64, Op::Read);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, s.accesses);
        assert_eq!(s.accesses, 100);
    }

    #[test]
    fn footprint_counts_distinct_blocks() {
        let mut c = tiny();
        c.access(0, Op::Read);
        c.access(32, Op::Read); // same block
        c.access(64, Op::Read);
        assert_eq!(c.stats().footprint_bytes, 2 * 64);
    }

    #[test]
    fn miss_rate_bounds() {
        let mut c = tiny();
        assert_eq!(c.stats().miss_rate(), 0.0);
        c.access(0, Op::Read);
        assert_eq!(c.stats().miss_rate(), 1.0);
        c.access(0, Op::Read);
        assert_eq!(c.stats().miss_rate(), 0.5);
    }

    #[test]
    fn blocks_of_spanning_request() {
        let c = tiny();
        let blocks: Vec<u64> = c.blocks_of(0x3c, 16).collect();
        assert_eq!(blocks, vec![0, 64]);
        let blocks: Vec<u64> = c.blocks_of(0x40, 64).collect();
        assert_eq!(blocks, vec![0x40]);
    }

    #[test]
    fn fifo_ignores_recency() {
        let cfg = CacheConfig::new(512, 2, 64).with_replacement(Replacement::Fifo);
        let mut c = Cache::new(cfg);
        c.access(0, Op::Read);
        c.access(256, Op::Read);
        c.access(0, Op::Read); // refresh block 0: irrelevant under FIFO
        let out = c.access(512, Op::Read); // evicts 0 (oldest insert)
        assert_eq!(out.evicted, Some((0, false)));
        assert!(c.access(256, Op::Read).hit);
    }

    #[test]
    fn random_replacement_is_deterministic_and_legal() {
        let mk = || {
            let cfg = CacheConfig::new(512, 2, 64).with_replacement(Replacement::Random);
            let mut c = Cache::new(cfg);
            let mut log = Vec::new();
            for i in 0..50u64 {
                let out = c.access((i % 5) * 256, Op::Read);
                log.push((out.hit, out.evicted));
            }
            (log, c.stats())
        };
        let (log_a, stats_a) = mk();
        let (log_b, stats_b) = mk();
        assert_eq!(log_a, log_b, "xorshift replacement must be deterministic");
        assert_eq!(stats_a.hits + stats_a.misses, stats_a.accesses);
        assert_eq!(stats_a, stats_b);
    }

    #[test]
    fn random_differs_from_lru_under_cyclic_thrash() {
        // A cyclic scan of ways+1 conflicting blocks: LRU misses always,
        // random keeps some.
        let run = |replacement: Replacement| {
            let cfg = CacheConfig::new(512, 2, 64).with_replacement(replacement);
            let mut c = Cache::new(cfg);
            for round in 0..40u64 {
                let _ = round;
                for b in 0..3u64 {
                    c.access(b * 256, Op::Read);
                }
            }
            c.stats().miss_rate()
        };
        let lru = run(Replacement::Lru);
        let random = run(Replacement::Random);
        assert!(lru > 0.99, "LRU thrash expected, got {lru}");
        assert!(random < lru, "random {random} should beat LRU {lru}");
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = tiny(); // 512 B total
                            // Cyclic scan of 1 KiB: misses every time under LRU.
        for round in 0..4 {
            for i in 0..16u64 {
                let out = c.access(i * 64, Op::Read);
                if round > 0 {
                    assert!(!out.hit, "cyclic over-capacity scan must thrash");
                }
            }
        }
    }
}
