//! A set-associative, write-back cache hierarchy simulator.
//!
//! Implements the §V validation substrate of the Mocktails paper: an
//! atomic-mode (order-only, timestamps ignored) simulation of an L1 + L2
//! hierarchy with LRU replacement, write-back and write-allocate — the gem5
//! configuration the paper uses to compare Mocktails against HRD.
//!
//! Reported metrics match the paper's: miss rates per level, cache
//! footprint, number of replacements and number of write-backs.
//!
//! # Example
//!
//! ```
//! use mocktails_cache::{CacheConfig, CacheHierarchy};
//! use mocktails_trace::{Request, Trace};
//!
//! // The paper's 32 KiB 4-way L1 over a 256 KiB 8-way L2.
//! let mut hierarchy = CacheHierarchy::new(
//!     CacheConfig::new(32 << 10, 4, 64),
//!     CacheConfig::new(256 << 10, 8, 64),
//! );
//! let trace = Trace::from_requests(
//!     (0..1000u64).map(|i| Request::read(i, (i % 128) * 64, 8)).collect(),
//! );
//! let stats = hierarchy.run_trace(&trace);
//! assert!(stats.l1.miss_rate() < 0.2); // 8 KiB working set fits easily
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod hierarchy;

pub use cache::{AccessOutcome, Cache, CacheConfig, CacheStats, Replacement};
pub use hierarchy::{CacheHierarchy, HierarchyStats};
