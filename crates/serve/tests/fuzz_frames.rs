//! Wire-protocol fuzzing: mutated frames and payloads must decode
//! cleanly or fail with a typed error — never panic (satellite of the
//! serving-layer PR, built on the PR 2 deterministic fuzz harness).

use mocktails_serve::frame::{read_frame, write_frame};
use mocktails_serve::protocol::{ProfileSource, Request, Response, PROTOCOL_VERSION};
use mocktails_serve::ServeError;
use mocktails_trace::fuzz;

const MAX_LEN: usize = 1 << 20;

/// A representative message corpus covering every request and response
/// tag, as framed byte streams.
fn corpus() -> Vec<Vec<u8>> {
    let requests = [
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        Request::FitProfile {
            cycles: 500_000,
            clusters: 0,
            trace_bytes: b"MTRC\x01\x02\x00\x00\x80\x01\x04\x40\x80\x01".to_vec(),
        },
        Request::Synthesize {
            seed: 42,
            chunk_len: 4096,
            source: ProfileSource::Fingerprint(0xdead_beef_cafe_f00d),
        },
        Request::Synthesize {
            seed: 7,
            chunk_len: 1,
            source: ProfileSource::Inline(vec![0x4d, 0x50, 0x52, 0x46, 1, 0]),
        },
        Request::Stats {
            source: ProfileSource::Fingerprint(1),
        },
        Request::Metricsz,
        Request::Shutdown,
        Request::Ack,
        Request::Cancel,
    ];
    let responses = [
        Response::HelloOk {
            version: PROTOCOL_VERSION,
        },
        Response::FitResult {
            fingerprint: 99,
            cache_hit: true,
            profile_bytes: vec![1, 2, 3, 4, 5, 6, 7, 8],
        },
        Response::SynthStart {
            total_requests: 1_000,
        },
        Response::SynthChunk {
            count: 3,
            records: vec![0x02, 0x00, 0x00, 0x80, 0x01, 0x04, 0x40, 0x80, 0x01],
        },
        Response::SynthEnd {
            total_requests: 1_000,
            fingerprint: 0x1234_5678,
        },
        Response::StatsText {
            text: "leaves 4\nrequests 100\n".into(),
        },
        Response::MetricsText {
            text: "requests_total 3\nuptime_micros 17\n".into(),
        },
        Response::ShutdownOk,
    ];
    let mut corpus = Vec::new();
    for payload in requests
        .iter()
        .map(Request::encode)
        .chain(responses.iter().map(|r| r.encode()))
    {
        let mut framed = Vec::new();
        write_frame(&mut framed, &payload).expect("framing a small payload");
        corpus.push(framed);
    }
    corpus
}

/// Reads every frame in `bytes` and decodes each payload both ways;
/// `true` iff the whole stream was accepted.
fn decode_stream(bytes: &[u8]) -> bool {
    let mut cursor = bytes;
    let mut all_ok = true;
    loop {
        match read_frame(&mut cursor, MAX_LEN) {
            Ok(Some(payload)) => {
                // A mutated payload may be a valid request OR a valid
                // response (tags overlap); exercise both decoders.
                let req_ok = Request::decode(&payload).is_ok();
                let resp_ok = Response::decode(&payload).is_ok();
                all_ok &= req_ok || resp_ok;
            }
            Ok(None) => return all_ok,
            Err(_) => return false,
        }
    }
}

#[test]
fn mutated_frames_never_panic_2000_cases() {
    let corpus = corpus();
    let cases_per_entry = 2000usize.div_ceil(corpus.len());
    let report = fuzz::run(&corpus, cases_per_entry, 0x5eed_f4a3, |bytes| {
        decode_stream(bytes)
    });
    assert!(report.cases >= 2000, "{report:?}");
    // A fuzz loop that only ever rejects (or only ever accepts) is not
    // exercising both paths of the decoder.
    assert!(report.accepted > 0, "{report:?}");
    assert!(report.rejected > 0, "{report:?}");
}

#[test]
fn mutated_bare_payloads_never_panic() {
    let corpus: Vec<Vec<u8>> = corpus()
        .into_iter()
        .map(|framed| framed[4..].to_vec())
        .collect();
    let report = fuzz::run(&corpus, 200, 0xfeed_beef, |bytes| {
        let req_ok = Request::decode(bytes).is_ok();
        let resp_ok = Response::decode(bytes).is_ok();
        req_ok || resp_ok
    });
    assert!(report.accepted > 0, "{report:?}");
    assert!(report.rejected > 0, "{report:?}");
}

// --- The corrupt-frame matrix: each known-bad shape must produce a
// --- typed `Frame`/`Protocol` error, never a panic or an accept.

#[test]
fn truncated_length_prefix_is_typed_error() {
    for cut in 1..4 {
        let mut framed = Vec::new();
        write_frame(&mut framed, &Request::Metricsz.encode()).unwrap();
        framed.truncate(cut);
        let err = read_frame(&mut framed.as_slice(), MAX_LEN).unwrap_err();
        assert!(
            matches!(&err, ServeError::Frame(m) if m.contains("truncated length prefix")),
            "cut={cut}: {err}"
        );
    }
}

#[test]
fn truncated_payload_is_typed_error() {
    let mut framed = Vec::new();
    write_frame(
        &mut framed,
        &Request::FitProfile {
            cycles: 1,
            clusters: 0,
            trace_bytes: vec![0; 64],
        }
        .encode(),
    )
    .unwrap();
    framed.truncate(framed.len() - 10);
    let err = read_frame(&mut framed.as_slice(), MAX_LEN).unwrap_err();
    assert!(
        matches!(&err, ServeError::Frame(m) if m.contains("truncated frame payload")),
        "{err}"
    );
}

#[test]
fn oversized_frame_is_rejected_before_allocation() {
    let mut framed = Vec::new();
    framed.extend_from_slice(&u32::MAX.to_le_bytes());
    let err = read_frame(&mut framed.as_slice(), MAX_LEN).unwrap_err();
    assert!(
        matches!(&err, ServeError::Frame(m) if m.contains("exceeds maximum")),
        "{err}"
    );
}

#[test]
fn unknown_request_tag_is_typed_error() {
    for tag in [0u8, 10, 100, 255] {
        let err = Request::decode(&[tag]).unwrap_err();
        assert!(
            matches!(err, ServeError::Protocol(_)),
            "tag {tag} must be a typed protocol error"
        );
    }
}

#[test]
fn unknown_response_tag_is_typed_error() {
    for tag in [0u8, 11, 200, 255] {
        let err = Response::decode(&[tag]).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "tag {tag}");
    }
}

#[test]
fn short_fixed_fields_are_typed_errors() {
    // Hello with a 2-byte version, Synthesize cut inside the seed, a
    // fingerprint source with 3 of 8 bytes.
    for payload in [
        vec![1u8, 0, 0],
        vec![3u8, 1, 2, 3],
        vec![3u8, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 2, 3],
    ] {
        let err = Request::decode(&payload).unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)), "{payload:?}");
    }
}

#[test]
fn empty_payload_is_typed_error() {
    assert!(matches!(
        Request::decode(&[]).unwrap_err(),
        ServeError::Protocol(_)
    ));
    assert!(matches!(
        Response::decode(&[]).unwrap_err(),
        ServeError::Protocol(_)
    ));
}

#[test]
fn fuzz_campaign_is_deterministic() {
    let corpus = corpus();
    let a = fuzz::run(&corpus, 50, 7, decode_stream);
    let b = fuzz::run(&corpus, 50, 7, decode_stream);
    assert_eq!(a, b);
}
