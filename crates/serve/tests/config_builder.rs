//! The builder is the validated front door to `ServerConfig`; the plain
//! struct path (deprecated) must keep forwarding bit-identically.

use std::sync::Arc;

use mocktails_serve::{Client, ManualClock, ServeError, Server, ServerConfig, ServerConfigError};
use mocktails_trace::{DecodeLimits, DecodeOptions};

#[test]
fn builder_defaults_match_the_plain_struct_default() {
    let built = ServerConfig::builder().build().expect("defaults are valid");
    assert_eq!(built, ServerConfig::default());
}

#[test]
fn builder_forwards_every_knob_bit_identically() {
    let decode = DecodeOptions::new().with_limits(DecodeLimits {
        max_requests: 1_000,
        ..DecodeLimits::default()
    });
    let built = ServerConfig::builder()
        .workers(3)
        .queue_cap(9)
        .cache_capacity(17)
        .cache_ttl_micros(5_000)
        .max_frame_len(1 << 16)
        .deadline_micros(2_000_000)
        .decode(decode)
        .store_dir("/tmp/mocktails-builder-test")
        .shards(4)
        .max_conns(99)
        .shard_budget(7)
        .build()
        .expect("valid config");
    // The deprecated plain-struct path, field for field.
    let plain = ServerConfig {
        workers: 3,
        queue_cap: 9,
        cache_capacity: 17,
        cache_ttl_micros: 5_000,
        max_frame_len: 1 << 16,
        deadline_micros: 2_000_000,
        decode,
        store_dir: Some("/tmp/mocktails-builder-test".into()),
        shards: 4,
        max_conns: 99,
        shard_budget: 7,
    };
    assert_eq!(built, plain, "builder and struct literal diverged");
}

#[test]
fn builder_rejects_invalid_knobs_with_typed_errors() {
    assert_eq!(
        ServerConfig::builder().workers(0).build(),
        Err(ServerConfigError::ZeroWorkers)
    );
    assert_eq!(
        ServerConfig::builder().shards(0).build(),
        Err(ServerConfigError::ZeroShards)
    );
    assert_eq!(
        ServerConfig::builder().max_conns(0).build(),
        Err(ServerConfigError::ZeroMaxConns)
    );
    assert_eq!(
        ServerConfig::builder().shard_budget(0).build(),
        Err(ServerConfigError::ZeroShardBudget)
    );
    assert_eq!(
        ServerConfig::builder().deadline_micros(0).build(),
        Err(ServerConfigError::ZeroDeadline)
    );
    assert_eq!(
        ServerConfig::builder().max_frame_len(512).build(),
        Err(ServerConfigError::FrameLimitTooSmall { min: 1024 })
    );
    // The messages are stable enough to route on.
    assert_eq!(
        ServerConfigError::ZeroWorkers.to_string(),
        "workers must be at least 1"
    );
}

#[test]
fn bind_validates_plain_struct_configs_too() {
    let config = ServerConfig {
        workers: 0,
        ..ServerConfig::default()
    };
    let err = Server::bind("127.0.0.1:0", config, Arc::new(ManualClock::new()))
        .expect_err("zero workers must be rejected at bind");
    match err {
        ServeError::Config(e) => assert_eq!(e, ServerConfigError::ZeroWorkers),
        other => panic!("expected config error, got {other}"),
    }
}

#[test]
fn a_builder_built_server_serves() {
    let config = ServerConfig::builder()
        .workers(1)
        .shards(2)
        .build()
        .expect("valid");
    let server = Server::bind("127.0.0.1:0", config, Arc::new(ManualClock::new())).expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("run"));
    let mut client = Client::connect(&addr).expect("connect");
    assert!(client
        .metricsz()
        .expect("metricsz")
        .contains("requests_total"));
    client.shutdown().expect("shutdown");
    handle.join().expect("clean exit");
}
