//! Loopback soak: a thousand concurrent streaming clients against one
//! event-loop thread, every reassembled stream byte-identical to the
//! offline pipeline, zero frame errors, and a bounded tail latency.
//!
//! `MOCKTAILS_SOAK_CLIENTS` overrides the client count (CI smokes run
//! ~200; the default exercises the ≥1k contract).

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mocktails_core::{HierarchyConfig, LayerSpec, Profile};
use mocktails_pool::Parallelism;
use mocktails_serve::{
    retry_busy, Client, MonotonicClock, ProfileSource, RetryPolicy, Server, ServerConfig,
};
use mocktails_trace::codec::write_trace;
use mocktails_trace::Trace;
use mocktails_workloads::spec::generate_n;

const CYCLES: u64 = 50_000;
const RECORDS: usize = 300;
const PROFILES: usize = 8;
const BASE_SEED: u64 = 0x50a1;

fn soak_clients() -> usize {
    std::env::var("MOCKTAILS_SOAK_CLIENTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_000)
}

fn trace_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(&mut bytes, trace).expect("encoding to memory");
    bytes
}

fn offline_config() -> HierarchyConfig {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(CYCLES))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .expect("valid config")
}

/// A retry policy generous enough for a thousand-way stampede: the point
/// of the soak is that shed clients *eventually* get through, not that
/// nothing is ever shed.
fn soak_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 64,
        jitter_seed: seed,
        ..RetryPolicy::default()
    }
}

#[test]
fn soak_thousand_streaming_clients_byte_identical_with_bounded_tail() {
    let clients = soak_clients();
    // Distinct workloads spread across cache shards; each client streams
    // one of them and byte-compares against this offline reference.
    let mut uploads = Vec::new();
    let mut expected = Vec::new();
    let mut synth_counts = Vec::new();
    for i in 0..PROFILES {
        let trace = generate_n("gobmk", 100 + i as u64, RECORDS).expect("known benchmark");
        let profile = Profile::fit_with(&trace, &offline_config(), Parallelism::sequential());
        let synth = profile.synthesize(BASE_SEED + i as u64);
        uploads.push(trace_bytes(&trace));
        synth_counts.push(synth.len() as u64);
        expected.push(trace_bytes(&synth));
    }

    let config = ServerConfig::builder()
        .workers(8)
        .queue_cap(256)
        .cache_capacity(64)
        .shards(8)
        .shard_budget(512)
        .max_conns(clients + 64)
        .deadline_micros(120_000_000)
        .build()
        .expect("valid soak config");
    let server =
        Server::bind("127.0.0.1:0", config, Arc::new(MonotonicClock::new())).expect("bind");
    let addr = server.local_addr().to_string();
    let metrics = server.metrics();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    // Prime all profiles so clients can stream by fingerprint.
    let fingerprints: Vec<u64> = {
        let mut primer = Client::connect(&addr).expect("primer connect");
        uploads
            .iter()
            .map(|upload| {
                primer
                    .fit(CYCLES, upload.clone())
                    .expect("prime fit")
                    .fingerprint
            })
            .collect()
    };

    let barrier = Arc::new(Barrier::new(clients));
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let profile_idx = i % PROFILES;
            let fingerprint = fingerprints[profile_idx];
            let expected = expected[profile_idx].clone();
            std::thread::Builder::new()
                .stack_size(128 * 1024)
                .spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    // Everyone is connected before anyone streams: the
                    // server holds `clients` open connections at once.
                    barrier.wait();
                    let chunk_len = 64 + (i % 5) as u32 * 37;
                    let policy = soak_policy(i as u64);
                    let started = Instant::now();
                    let outcome = retry_busy(
                        &policy,
                        |micros| std::thread::sleep(Duration::from_micros(micros)),
                        || {
                            client.synthesize(
                                BASE_SEED + profile_idx as u64,
                                chunk_len,
                                ProfileSource::Fingerprint(fingerprint),
                            )
                        },
                    )
                    .unwrap_or_else(|e| panic!("client {i}: {e}"));
                    let elapsed = started.elapsed();
                    assert_eq!(
                        outcome.trace_bytes, expected,
                        "client {i}: stream diverged from offline synthesis"
                    );
                    elapsed
                })
                .expect("spawn soak client")
        })
        .collect();

    let mut latencies: Vec<Duration> = workers
        .into_iter()
        .map(|w| w.join().expect("soak client panicked"))
        .collect();
    latencies.sort();
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[(latencies.len() * 99) / 100 - 1];
    println!("soak: {clients} clients, stream p50 {p50:?}, p99 {p99:?}");
    // "Flat" within reason: the tail must stay bounded even with every
    // client in flight at once — a wedged stream or lost wakeup shows up
    // here as minutes, not seconds.
    assert!(p99 < Duration::from_secs(60), "p99 {p99:?} out of bounds");

    // Zero frame errors end to end, and every stream really went through
    // the reactor's frame path.
    let text = {
        let mut client = Client::connect(&addr).expect("metricsz connect");
        client.metricsz().expect("metricsz")
    };
    assert!(
        metrics.frame_latency_micros.count() >= clients as u64,
        "frame latency histogram undercounted"
    );
    let streamed: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("streamed_requests_total "))
        .expect("streamed_requests_total rendered")
        .parse()
        .expect("counter parses");
    let expected_streamed: u64 = (0..clients).map(|i| synth_counts[i % PROFILES]).sum();
    assert_eq!(
        streamed, expected_streamed,
        "every admitted stream must deliver exactly its workload's records"
    );

    let mut closer = Client::connect(&addr).expect("closer connect");
    closer.shutdown().expect("shutdown");
    server_thread.join().expect("server exits cleanly");
}
