//! Loopback integration tests: a real server on an ephemeral port, real
//! clients, and byte-level comparison against the offline pipeline.

use std::sync::Arc;

use mocktails_core::{HierarchyConfig, LayerSpec, Profile};
use mocktails_pool::Parallelism;
use mocktails_serve::{
    Client, ErrorCode, ManualClock, ProfileSource, ServeError, Server, ServerConfig,
};
use mocktails_trace::codec::write_trace;
use mocktails_trace::{DecodeLimits, DecodeOptions, Trace};
use mocktails_workloads::spec::generate_n;

const CYCLES: u64 = 50_000;
const SEED: u64 = 42;

fn small_trace() -> Trace {
    generate_n("gobmk", 7, 2_000).expect("known benchmark name")
}

fn trace_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(&mut bytes, trace).expect("encoding to memory");
    bytes
}

fn offline_config() -> HierarchyConfig {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(CYCLES))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .expect("valid config")
}

/// Fits and synthesizes entirely offline — the reference the server must
/// match byte-for-byte.
fn offline_round_trip(trace: &Trace) -> (Vec<u8>, Vec<u8>) {
    let profile = Profile::fit_with(trace, &offline_config(), Parallelism::sequential());
    let mut profile_bytes = Vec::new();
    profile.write(&mut profile_bytes).expect("profile encode");
    let synth = profile.synthesize(SEED);
    (profile_bytes, trace_bytes(&synth))
}

/// Starts a server on an ephemeral loopback port; returns its address and
/// the thread running it (joined after shutdown).
fn start_server(config: ServerConfig) -> (String, std::thread::JoinHandle<()>) {
    let server = Server::bind("127.0.0.1:0", config, Arc::new(ManualClock::new()))
        .expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle)
}

fn shut_down(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown handshake");
    handle.join().expect("server thread exits cleanly");
}

#[test]
fn server_output_is_byte_identical_to_offline_at_any_worker_count() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let (offline_profile, offline_synth) = offline_round_trip(&trace);

    for workers in [1usize, 2, 8] {
        let (addr, handle) = start_server(ServerConfig {
            workers,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(&addr).expect("connect");

        let fit = client.fit(CYCLES, upload.clone()).expect("fit");
        assert!(!fit.cache_hit, "first fit must miss ({workers} workers)");
        assert_eq!(
            fit.profile_bytes, offline_profile,
            "server profile differs from offline at {workers} workers"
        );

        // By fingerprint (cache) and by inline upload: same bytes.
        for source in [
            ProfileSource::Fingerprint(fit.fingerprint),
            ProfileSource::Inline(fit.profile_bytes.clone()),
        ] {
            let synth = client.synthesize(SEED, 257, source).expect("synthesize");
            assert_eq!(
                synth.trace_bytes, offline_synth,
                "streamed trace differs from offline at {workers} workers"
            );
        }

        // A repeat fit of the same bytes is answered from the cache.
        let refit = client.fit(CYCLES, upload.clone()).expect("refit");
        assert!(refit.cache_hit, "repeat fit must hit ({workers} workers)");
        assert_eq!(refit.fingerprint, fit.fingerprint);
        assert_eq!(refit.profile_bytes, offline_profile);

        shut_down(&addr, handle);
    }
}

#[test]
fn chunk_length_does_not_change_the_bytes() {
    let trace = small_trace();
    let (_, offline_synth) = offline_round_trip(&trace);
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, trace_bytes(&trace)).expect("fit");
    for chunk_len in [1u32, 64, 1 << 20] {
        let synth = client
            .synthesize(SEED, chunk_len, ProfileSource::Fingerprint(fit.fingerprint))
            .expect("synthesize");
        assert_eq!(synth.trace_bytes, offline_synth, "chunk_len {chunk_len}");
    }
    shut_down(&addr, handle);
}

#[test]
fn metrics_text_is_deterministic_under_frozen_clock() {
    // Two servers, frozen clocks, identical request sequences → identical
    // metric renderings, byte for byte.
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let render = |addr: &str| {
        let mut client = Client::connect(addr).expect("connect");
        let fit = client.fit(CYCLES, upload.clone()).expect("fit");
        let _ = client.fit(CYCLES, upload.clone()).expect("refit");
        let _ = client
            .synthesize(SEED, 512, ProfileSource::Fingerprint(fit.fingerprint))
            .expect("synthesize");
        client.metricsz().expect("metricsz")
    };
    let (addr_a, handle_a) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let (addr_b, handle_b) = start_server(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let text_a = render(&addr_a);
    let text_b = render(&addr_b);
    // reactor_wakeups_total is the one scheduling-dependent metric (it
    // counts event-loop sweeps, which depend on park timing); everything
    // else must match byte for byte.
    let strip = |text: &str| {
        text.lines()
            .filter(|line| !line.starts_with("reactor_wakeups_total "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&text_a), strip(&text_b), "metric renderings diverged");
    // Two hits: the repeat fit (by fit key) and the synthesize (by
    // fingerprint); one miss: the first fit.
    assert!(text_a.contains("cache_hits_total 2"), "{text_a}");
    assert!(text_a.contains("cache_misses_total 1"), "{text_a}");
    assert!(text_a.contains("uptime_micros 0"), "{text_a}");
    shut_down(&addr_a, handle_a);
    shut_down(&addr_b, handle_b);
}

#[test]
fn stats_and_not_found_round_trip() {
    let trace = small_trace();
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, trace_bytes(&trace)).expect("fit");

    let text = client
        .stats(ProfileSource::Fingerprint(fit.fingerprint))
        .expect("stats");
    assert!(text.contains("fingerprint"), "{text}");

    let err = client
        .stats(ProfileSource::Fingerprint(fit.fingerprint ^ 1))
        .expect_err("unknown fingerprint");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::NotFound,
                ..
            }
        ),
        "{err}"
    );
    // The typed error left the connection usable.
    assert!(client.metricsz().is_ok());
    shut_down(&addr, handle);
}

#[test]
fn malformed_uploads_get_typed_errors_not_dropped_connections() {
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let err = client
        .fit(CYCLES, b"not a trace".to_vec())
        .expect_err("garbage");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{err}"
    );
    let err = client.fit(0, Vec::new()).expect_err("zero cycles");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{err}"
    );
    let err = client
        .synthesize(SEED, 0, ProfileSource::Fingerprint(1))
        .expect_err("zero chunk_len");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::Malformed,
                ..
            }
        ),
        "{err}"
    );
    // Still alive after three typed failures.
    assert!(client.metricsz().is_ok());
    shut_down(&addr, handle);
}

#[test]
fn oversized_frame_is_limit_exceeded() {
    let (addr, handle) = start_server(ServerConfig {
        max_frame_len: 1 << 10,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .fit(CYCLES, vec![0u8; 1 << 12])
        .expect_err("frame above the server limit");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::LimitExceeded,
                ..
            }
        ),
        "{err}"
    );
    shut_down(&addr, handle);
}

#[test]
fn mid_stream_client_survives_shutdown_with_clean_end_of_stream() {
    let trace = small_trace();
    let (addr, handle) = start_server(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, trace_bytes(&trace)).expect("fit");

    // Open a stream with tiny chunks and read just the first chunk.
    let mut stream = client
        .begin_synthesize(SEED, 16, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("begin stream");
    let first = stream.next_chunk().expect("first chunk");
    assert!(first.is_some(), "stream should have at least one chunk");

    // Another client asks the server to shut down while the stream is
    // mid-flight.
    let mut other = Client::connect(&addr).expect("second client");
    other.shutdown().expect("shutdown accepted");

    // The draining server must still complete the stream: ack the chunk
    // in hand, then keep reading until the clean end-of-stream frame —
    // never a reset mid-read.
    stream.ack().expect("ack first chunk");
    while stream.next_chunk().expect("mid-shutdown chunk").is_some() {
        stream.ack().expect("ack during drain");
    }
    let (total, fingerprint) = stream.end().expect("clean end of stream");
    assert!(total > 0);
    assert_ne!(fingerprint, 0);

    handle.join().expect("server exits cleanly");
}

#[test]
fn over_cap_requests_get_deterministic_busy() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    // One shard with an in-flight budget of one: while any request or
    // open stream holds the slot, the next request must be shed with a
    // deterministic Busy — no timing window involved.
    let (addr, handle) = start_server(ServerConfig {
        workers: 1,
        shards: 1,
        shard_budget: 1,
        ..ServerConfig::default()
    });
    let mut holder = Client::connect(&addr).expect("holder connect");
    let fit = holder.fit(CYCLES, upload).expect("fit");

    // Hold the only admission slot: an open stream keeps it until its
    // SynthEnd, even while it sits parked awaiting an ack (streams hold
    // no worker — the budget is what bounds them now).
    let mut stream = holder
        .begin_synthesize(SEED, 1, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("begin stream");
    assert!(stream.next_chunk().expect("first chunk").is_some());

    let mut contender = Client::connect(&addr).expect("contender connect");
    let err = contender
        .stats(ProfileSource::Fingerprint(fit.fingerprint))
        .expect_err("shard at budget, must shed");
    match &err {
        ServeError::Remote {
            code: ErrorCode::Busy,
            message,
        } => assert!(message.contains("at budget"), "{message}"),
        other => panic!("expected Busy, got {other}"),
    }
    // The shed was counted and left the contender's connection usable.
    let text = contender.metricsz().expect("metricsz after shed");
    assert!(text.contains("shard_shed_total 1"), "{text}");

    // Release the slot by draining the stream; the contender can then be
    // admitted.
    stream.ack().expect("release ack");
    while stream.next_chunk().expect("chunk").is_some() {
        stream.ack().expect("ack");
    }
    let text = loop {
        match contender.stats(ProfileSource::Fingerprint(fit.fingerprint)) {
            Ok(text) => break text,
            Err(ServeError::Remote {
                code: ErrorCode::Busy,
                ..
            }) => std::thread::yield_now(),
            Err(e) => panic!("served after release: {e}"),
        }
    };
    assert!(text.contains("fingerprint"));
    shut_down(&addr, handle);
}

#[test]
fn thirty_two_concurrent_clients_complete_without_deadlock() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let (addr, handle) = start_server(ServerConfig {
        workers: 4,
        queue_cap: 8,
        ..ServerConfig::default()
    });

    // Prime the cache so repeats can hit.
    let expected_fp = {
        let mut client = Client::connect(&addr).expect("prime connect");
        client
            .fit(CYCLES, upload.clone())
            .expect("prime fit")
            .fingerprint
    };

    let clients: Vec<_> = (0..32)
        .map(|i| {
            let addr = addr.clone();
            let upload = upload.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                // Retry on Busy: the queue cap guarantees some of 32
                // simultaneous requests are refused; a typed refusal is
                // retryable by design.
                let mut busy_seen = 0u32;
                let fit = loop {
                    match client.fit(CYCLES, upload.clone()) {
                        Ok(fit) => break fit,
                        Err(ServeError::Remote {
                            code: ErrorCode::Busy,
                            ..
                        }) => {
                            busy_seen += 1;
                            std::thread::yield_now();
                        }
                        Err(e) => panic!("client {i}: {e}"),
                    }
                };
                assert_eq!(fit.fingerprint, expected_fp, "client {i}");
                (fit.cache_hit, busy_seen)
            })
        })
        .collect();

    let outcomes: Vec<(bool, u32)> = clients
        .into_iter()
        .map(|c| c.join().expect("client thread"))
        .collect();
    // Every repeat of the primed fit must be a cache hit.
    assert!(
        outcomes.iter().all(|&(hit, _)| hit),
        "all post-prime fits hit the cache: {outcomes:?}"
    );

    // The hit-rate metric reflects the repeats.
    let mut client = Client::connect(&addr).expect("metrics connect");
    let text = client.metricsz().expect("metricsz");
    let hits: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("cache_hits_total "))
        .expect("cache_hits_total present")
        .parse()
        .expect("numeric");
    let misses: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("cache_misses_total "))
        .expect("cache_misses_total present")
        .parse()
        .expect("numeric");
    assert_eq!(hits, 32, "{text}");
    assert_eq!(misses, 1, "{text}");
    shut_down(&addr, handle);
}

#[test]
fn version_mismatch_is_refused_with_typed_error() {
    use mocktails_serve::frame::{read_frame, write_frame};
    use mocktails_serve::{Request, Response};
    use std::io::Write;

    let (addr, handle) = start_server(ServerConfig::default());
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    let payload = Request::Hello { version: 9999 }.encode();
    write_frame(&mut stream, &payload).expect("send");
    stream.flush().expect("flush");
    let reply = read_frame(&mut stream, 1 << 20)
        .expect("read")
        .expect("a frame, not a drop");
    match Response::decode(&reply).expect("decodable") {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
        other => panic!("expected error frame, got {other:?}"),
    }
    drop(stream);
    shut_down(&addr, handle);
}

#[test]
fn cancel_mid_stream_keeps_the_connection_usable() {
    let trace = small_trace();
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, trace_bytes(&trace)).expect("fit");

    let mut stream = client
        .begin_synthesize(SEED, 8, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("begin");
    assert!(stream.next_chunk().expect("first chunk").is_some());
    let (partial_total, _) = stream.cancel().expect("cancel drains cleanly");
    assert!(partial_total > 0, "cancelled stream reports what was sent");

    // Follow-up request on the same connection works.
    let synth = client
        .synthesize(SEED, 512, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("full synthesis after cancel");
    assert!(synth.total_requests >= partial_total);
    shut_down(&addr, handle);
}

#[test]
fn decode_limits_apply_to_uploads() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let decode = DecodeOptions::new().with_limits(DecodeLimits {
        max_requests: 10,
        ..DecodeLimits::default()
    });
    let (addr, handle) = start_server(ServerConfig {
        decode,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(&addr).expect("connect");
    let err = client
        .fit(CYCLES, upload)
        .expect_err("over the request limit");
    assert!(
        matches!(
            &err,
            ServeError::Remote {
                code: ErrorCode::LimitExceeded,
                ..
            }
        ),
        "{err}"
    );
    shut_down(&addr, handle);
}

#[test]
fn shutdown_with_idle_connections_completes_and_closes_their_sockets() {
    // Regression: the shutdown sweep used to hold the connection
    // registry's lock while shutting each socket down, which could wedge
    // against a connection thread trying to deregister itself (it needs
    // that same lock to make progress). The sweep now takes the sockets
    // out under the lock and shuts them down after releasing it, so
    // shutdown must complete — promptly — with idle clients attached.
    let (addr, handle) = start_server(ServerConfig::default());
    let mut idle: Vec<Client> = (0..3)
        .map(|i| Client::connect(&addr).unwrap_or_else(|e| panic!("idle connect {i}: {e}")))
        .collect();
    shut_down(&addr, handle);

    // The sweep shut the idle sockets down; a request on one must fail
    // instead of hanging on a half-open connection.
    let upload = trace_bytes(&small_trace());
    let mut client = idle.pop().expect("has idle clients");
    assert!(
        client.fit(CYCLES, upload).is_err(),
        "a swept socket cannot serve a fit"
    );
}

#[test]
fn store_backed_server_survives_restart_and_compaction() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let (offline_profile, offline_synth) = offline_round_trip(&trace);
    let dir = std::env::temp_dir().join(format!("mocktails-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let config = || ServerConfig {
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };

    // First life: the fit is appended to the write-ahead log (and fsynced)
    // before the FitResult ack, so everything below survives the restart.
    let (addr, handle) = start_server(config());
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, upload.clone()).expect("fit");
    assert!(!fit.cache_hit);
    assert_eq!(fit.profile_bytes, offline_profile);
    shut_down(&addr, handle);

    // Second life: the cache warms from the recovered store, so both the
    // fingerprint lookup and a repeat fit are answered without refitting.
    let (addr, handle) = start_server(config());
    let mut client = Client::connect(&addr).expect("reconnect");
    let synth = client
        .synthesize(SEED, 509, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("synthesize after restart");
    assert_eq!(
        synth.trace_bytes, offline_synth,
        "restart changed the bytes"
    );
    let refit = client.fit(CYCLES, upload.clone()).expect("refit");
    assert!(refit.cache_hit, "warmed cache must answer the refit");
    assert_eq!(refit.profile_bytes, offline_profile);

    // Compaction checkpoints the store and truncates the log, and the
    // metric registry reflects the store's health.
    let compacted = client.compact().expect("compact");
    assert_eq!(compacted.profiles, 1);
    assert!(compacted.checkpoint_bytes > 0);
    assert!(compacted.wal_bytes_dropped > 0, "the log held one record");
    let metrics = client.metricsz().expect("metricsz");
    for line in ["store_profiles 1", "store_checkpoints_total 1"] {
        assert!(metrics.contains(line), "{line} missing from:\n{metrics}");
    }
    shut_down(&addr, handle);

    // Third life: a cold start from the checkpoint alone still serves the
    // profile, byte-identical to offline.
    let (addr, handle) = start_server(config());
    let mut client = Client::connect(&addr).expect("third connect");
    let synth = client
        .synthesize(SEED, 1 << 12, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("synthesize from checkpoint");
    assert_eq!(
        synth.trace_bytes, offline_synth,
        "checkpoint changed the bytes"
    );
    shut_down(&addr, handle);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn compact_without_a_store_is_not_found() {
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    match client.compact().expect_err("no store configured") {
        ServeError::Remote { code, .. } => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("unexpected error: {other}"),
    }
    shut_down(&addr, handle);
}

/// The offline Option B reference: fit, then run the paper's coupled
/// loop by hand — inject each synthesized request into the DRAM model
/// and feed stalls back — collecting the paced trace plus the
/// backpressure totals the server must reproduce over the wire.
fn offline_coupled(trace: &Trace) -> (Vec<u8>, u64, u64) {
    use mocktails_core::InjectionFeedback;
    use mocktails_dram::{DramConfig, MemorySystem};
    let profile = Profile::fit_with(trace, &offline_config(), Parallelism::sequential());
    let mut synth = profile.synthesizer(SEED);
    let mut mem = MemorySystem::new(DramConfig::default());
    let mut paced = Vec::new();
    while let Some(request) = synth.next_request() {
        let stall = mem.inject(&request);
        if stall > 0 {
            synth.add_delay(stall);
        }
        paced.push(request);
    }
    let stall_cycles = synth.accumulated_delay();
    let simulated_cycles = paced.last().expect("non-empty").timestamp;
    let paced = Trace::from_sorted_requests(paced);
    (trace_bytes(&paced), simulated_cycles, stall_cycles)
}

#[test]
fn coupled_stream_matches_offline_option_b_at_any_worker_count() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let (paced_bytes, simulated_cycles, stall_cycles) = offline_coupled(&trace);
    // Guard against a vacuous comparison: the DRAM model must actually
    // push back on this trace, or pacing is indistinguishable from the
    // open-loop stream.
    assert!(stall_cycles > 0, "reference run produced no backpressure");

    for workers in [1usize, 2, 8] {
        let (addr, handle) = start_server(ServerConfig {
            workers,
            ..ServerConfig::default()
        });
        let mut client = Client::connect(&addr).expect("connect");
        let fit = client.fit(CYCLES, upload.clone()).expect("fit");

        let outcome = client
            .couple(SEED, 256, ProfileSource::Fingerprint(fit.fingerprint))
            .expect("coupled stream");
        assert_eq!(
            outcome.trace_bytes, paced_bytes,
            "coupled stream differs from offline run_synthesizer at {workers} workers"
        );
        assert_eq!(outcome.simulated_cycles, simulated_cycles);
        assert_eq!(outcome.stall_cycles, stall_cycles);
        assert_eq!(outcome.total_requests, trace.len() as u64);
        shut_down(&addr, handle);
    }
}

#[test]
fn coupled_chunks_report_monotonic_simulated_time_and_end_cleanly() {
    let trace = small_trace();
    let upload = trace_bytes(&trace);
    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");
    let fit = client.fit(CYCLES, upload).expect("fit");

    let mut stream = client
        .begin_couple(SEED, 128, ProfileSource::Fingerprint(fit.fingerprint))
        .expect("begin couple");
    assert_eq!(stream.declared_total(), trace.len() as u64);
    let mut last_simulated = 0u64;
    let mut last_stall = 0u64;
    let mut chunks = 0usize;
    let mut total = 0u64;
    while let Some(chunk) = stream.next_chunk().expect("next chunk") {
        assert!(chunk.count > 0, "empty chunk frame");
        assert!(
            chunk.simulated_cycles >= last_simulated,
            "simulated time went backwards: {} then {}",
            last_simulated,
            chunk.simulated_cycles
        );
        assert!(chunk.stall_cycles >= last_stall, "cumulative stalls shrank");
        last_simulated = chunk.simulated_cycles;
        last_stall = chunk.stall_cycles;
        total += u64::from(chunk.count);
        chunks += 1;
        stream.ack().expect("ack");
    }
    // The terminator is a clean SynthEnd carrying the full totals.
    let (total_requests, fingerprint) = stream.end().expect("clean end of stream");
    assert_eq!(total_requests, trace.len() as u64);
    assert_eq!(total, total_requests);
    assert!(chunks > 1, "expected multiple chunks at chunk_len=128");
    assert_ne!(fingerprint, 0, "fingerprint must be real");

    // The connection stays usable after the coupled stream.
    let text = client.metricsz().expect("metricsz after stream");
    assert!(text.contains("coupled_requests_total 1"), "{text}");
    assert!(text.contains("coupled_chunks_total"), "{text}");
    shut_down(&addr, handle);
}

#[test]
fn sampled_fit_over_the_wire_matches_offline_and_keys_separately() {
    use mocktails_sample::{sampled_fit, SampleConfig};
    let trace = small_trace();
    let upload = trace_bytes(&trace);

    let offline = sampled_fit(
        &trace,
        &offline_config(),
        &SampleConfig {
            clusters: 4,
            seed: 0,
        },
        Parallelism::sequential(),
    );
    let mut offline_bytes = Vec::new();
    offline.profile.write(&mut offline_bytes).expect("encode");

    let (addr, handle) = start_server(ServerConfig::default());
    let mut client = Client::connect(&addr).expect("connect");

    let sampled = client
        .fit_clustered(CYCLES, 4, upload.clone())
        .expect("sampled fit");
    assert!(!sampled.cache_hit, "first sampled fit must miss");
    assert_eq!(
        sampled.profile_bytes, offline_bytes,
        "server sampled fit differs from offline sampled_fit"
    );

    // The same request repeats as a cache hit; the full fit of the same
    // trace keys separately and produces a different profile.
    let again = client
        .fit_clustered(CYCLES, 4, upload.clone())
        .expect("repeat sampled fit");
    assert!(again.cache_hit, "identical sampled fit must hit");
    assert_eq!(again.fingerprint, sampled.fingerprint);

    let full = client.fit(CYCLES, upload).expect("full fit");
    assert!(!full.cache_hit, "full fit must not alias the sampled fit");
    assert_ne!(full.fingerprint, sampled.fingerprint);

    // Both profiles synthesize the whole trace.
    let synth = client
        .synthesize(SEED, 512, ProfileSource::Fingerprint(sampled.fingerprint))
        .expect("synthesize from sampled profile");
    assert_eq!(synth.total_requests, trace.len() as u64);

    let text = client.metricsz().expect("metricsz");
    assert!(text.contains("sample_fit_requests_total 2"), "{text}");
    assert!(text.contains("sample_clusters_total 4"), "{text}");
    shut_down(&addr, handle);
}
