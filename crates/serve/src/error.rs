//! Typed errors for the serving layer — local failures and the wire-level
//! error codes carried by protocol error frames.

use std::fmt;

/// Machine-readable error codes carried in protocol `Error` frames.
///
/// The contract of the serving layer is that a protocol-level failure is
/// *always* answered with a typed error frame carrying one of these codes
/// — never a silently dropped connection — so clients can distinguish
/// retryable overload ([`ErrorCode::Busy`]) from permanent rejection
/// (e.g. [`ErrorCode::Malformed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The frame or request body failed structural decoding.
    Malformed = 1,
    /// The client's protocol version is not supported.
    UnsupportedVersion = 2,
    /// A decode limit (frame size, declared count) was exceeded.
    LimitExceeded = 3,
    /// The worker pool's queue-depth cap was hit; retry later.
    Busy = 4,
    /// The request missed its per-request deadline.
    DeadlineExceeded = 5,
    /// The referenced profile fingerprint is not in the cache.
    NotFound = 6,
    /// The server is draining; no new work is accepted.
    ShuttingDown = 7,
    /// An unexpected server-side failure.
    Internal = 8,
}

impl ErrorCode {
    /// Decodes a wire byte back to a code.
    pub fn from_byte(byte: u8) -> Option<Self> {
        Some(match byte {
            1 => Self::Malformed,
            2 => Self::UnsupportedVersion,
            3 => Self::LimitExceeded,
            4 => Self::Busy,
            5 => Self::DeadlineExceeded,
            6 => Self::NotFound,
            7 => Self::ShuttingDown,
            8 => Self::Internal,
            _ => return None,
        })
    }

    /// The wire byte for this code.
    pub fn as_byte(self) -> u8 {
        self as u8
    }

    /// Stable lower-snake name, used in metrics and error text.
    pub fn name(self) -> &'static str {
        match self {
            Self::Malformed => "malformed",
            Self::UnsupportedVersion => "unsupported_version",
            Self::LimitExceeded => "limit_exceeded",
            Self::Busy => "busy",
            Self::DeadlineExceeded => "deadline_exceeded",
            Self::NotFound => "not_found",
            Self::ShuttingDown => "shutting_down",
            Self::Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Errors surfaced by the serving layer's client and server endpoints.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O failure on the socket or local files.
    Io(std::io::Error),
    /// A malformed frame: bad length prefix, truncation mid-frame, or a
    /// frame exceeding the configured maximum.
    Frame(String),
    /// A structurally valid frame whose payload does not decode as a
    /// protocol message (unknown tag, short body, bad field).
    Protocol(String),
    /// The peer answered with a typed error frame.
    Remote {
        /// The machine-readable error code from the frame.
        code: ErrorCode,
        /// The human-readable message from the frame.
        message: String,
    },
    /// The server's persistent profile store failed to open or append.
    Store(mocktails_store::StoreError),
    /// A [`crate::server::ServerConfig`] failed validation.
    Config(crate::server::ServerConfigError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Frame(msg) => write!(f, "bad frame: {msg}"),
            Self::Protocol(msg) => write!(f, "protocol error: {msg}"),
            Self::Remote { code, message } => write!(f, "server error ({code}): {message}"),
            Self::Store(e) => write!(f, "profile store: {e}"),
            Self::Config(e) => write!(f, "server config: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Store(e) => Some(e),
            Self::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::server::ServerConfigError> for ServeError {
    fn from(e: crate::server::ServerConfigError) -> Self {
        Self::Config(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<mocktails_store::StoreError> for ServeError {
    fn from(e: mocktails_store::StoreError) -> Self {
        Self::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_codes_round_trip_through_wire_bytes() {
        for code in [
            ErrorCode::Malformed,
            ErrorCode::UnsupportedVersion,
            ErrorCode::LimitExceeded,
            ErrorCode::Busy,
            ErrorCode::DeadlineExceeded,
            ErrorCode::NotFound,
            ErrorCode::ShuttingDown,
            ErrorCode::Internal,
        ] {
            assert_eq!(ErrorCode::from_byte(code.as_byte()), Some(code));
        }
        assert_eq!(ErrorCode::from_byte(0), None);
        assert_eq!(ErrorCode::from_byte(200), None);
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(ErrorCode::Busy.to_string(), "busy");
        let e = ServeError::Remote {
            code: ErrorCode::NotFound,
            message: "no such profile".into(),
        };
        assert_eq!(e.to_string(), "server error (not_found): no such profile");
    }
}
