//! mocktails-serve: a zero-dependency streaming synthesis server.
//!
//! The paper's workflow is offline: record a trace, fit a profile,
//! synthesize a proxy. This crate puts that pipeline behind a socket so
//! many simulator frontends can share one fitting service and its
//! profile cache. Everything is `std`-only — the server is a
//! [`std::net::TcpListener`], a bounded
//! [`mocktails_pool::bounded::WorkerPool`], and a length-prefixed binary
//! protocol; there is no async runtime and no serialization dependency.
//!
//! Layering, bottom up:
//!
//! * [`frame`] — length-prefixed framing with typed truncation/oversize
//!   errors and clean-EOF detection.
//! * [`protocol`] — versioned request/response messages over frames.
//! * [`error`] — [`error::ErrorCode`] (the wire-level failure taxonomy)
//!   and [`error::ServeError`].
//! * [`cache`] — the content-fingerprint-keyed LRU/TTL profile cache.
//! * [`metrics`] — atomic counters and histograms with a deterministic
//!   text rendering, timed by an injectable [`metrics::Clock`].
//! * [`server`] / [`client`] — the two endpoints.
//!
//! Determinism carries through the wire: a `Synthesize` stream's
//! reassembled bytes are byte-identical to offline
//! [`mocktails_core::Profile::synthesize`] output for the same profile
//! and seed, at any worker-thread count.

pub mod cache;
pub mod client;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod protocol;
pub mod retry;
pub mod server;

pub use client::{Client, CompactOutcome, FitOutcome, SynthOutcome, SynthStream};
pub use error::{ErrorCode, ServeError};
pub use metrics::{Clock, ManualClock, MonotonicClock, ServeMetrics};
pub use protocol::{ProfileSource, Request, Response, PROTOCOL_VERSION};
pub use retry::{retry_busy, RetryPolicy};
pub use server::{Server, ServerConfig};
