//! mocktails-serve: a zero-dependency streaming synthesis server.
//!
//! The paper's workflow is offline: record a trace, fit a profile,
//! synthesize a proxy. This crate puts that pipeline behind a socket so
//! many simulator frontends can share one fitting service and its
//! profile cache. Everything is `std`-only — the server is a
//! [`std::net::TcpListener`], a bounded
//! [`mocktails_pool::bounded::WorkerPool`], and a length-prefixed binary
//! protocol; there is no async runtime and no serialization dependency.
//!
//! Layering, bottom up:
//!
//! * [`frame`] — length-prefixed framing with typed truncation/oversize
//!   errors and clean-EOF detection.
//! * [`protocol`] — versioned request/response messages over frames.
//! * [`error`] — [`error::ErrorCode`] (the wire-level failure taxonomy)
//!   and [`error::ServeError`].
//! * [`cache`] — the content-fingerprint-keyed LRU/TTL profile cache and
//!   its N-way sharding ([`cache::ShardedCache`]) with per-shard
//!   admission budgets.
//! * [`metrics`] — atomic counters and histograms with a deterministic
//!   text rendering, timed by an injectable [`metrics::Clock`].
//! * `conn` / `reactor` (private) — the readiness-driven event loop: one
//!   thread owns every socket; compute runs on the worker pool and
//!   responses flow back through per-connection outboxes.
//! * [`server`] / [`client`] — the two endpoints.
//!   [`server::ServerConfig::builder`] is the validated way to configure
//!   the server.
//!
//! Determinism carries through the wire: a `Synthesize` stream's
//! reassembled bytes are byte-identical to offline
//! [`mocktails_core::Profile::synthesize`] output for the same profile
//! and seed, at any worker-thread count.
//!
//! Two closed-loop additions ride the same machinery (protocol v3):
//! `FitProfile` can request a *sampled-fidelity* fit
//! ([`mocktails_sample`]) that clusters leaf partitions and models only
//! representatives, and `CoupledSynthesize` streams a synthesis paced
//! chunk-by-chunk against the [`mocktails_dram`] simulator — the paper's
//! Fig. 1 Option B against a live server, with each `CoupledChunk`
//! carrying the simulated time reached and the stalls fed back.

pub mod cache;
pub mod client;
mod conn;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod protocol;
mod reactor;
pub mod retry;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use client::{
    Client, CompactOutcome, CoupledChunk, CoupledOutcome, CoupledStream, FitOutcome, SynthOutcome,
    SynthStream,
};
pub use error::{ErrorCode, ServeError};
pub use metrics::{Clock, ManualClock, MonotonicClock, ServeMetrics};
pub use protocol::{ProfileSource, Request, Response, PROTOCOL_VERSION};
pub use retry::{retry_busy, RetryPolicy};
pub use server::{Server, ServerConfig, ServerConfigBuilder, ServerConfigError};
