//! Built-in metrics: atomic counters and histograms with a deterministic
//! text rendering.
//!
//! The registry is a concrete struct, not a generic registry — the point
//! is observability of *this* server, and a fixed field set keeps the
//! rendering order (and therefore the rendered bytes) identical across
//! runs. Time is injected through [`Clock`], so tests freeze it with
//! [`ManualClock`] and assert the rendering byte-for-byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic microsecond clock the server reads for latency and TTL
/// bookkeeping.
///
/// Injecting the clock keeps every time-dependent observable — histogram
/// buckets, uptime, cache expiry — deterministic under test.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds since an arbitrary (per-clock) epoch.
    fn now_micros(&self) -> u64;
}

/// The production clock: microseconds since the clock's construction,
/// read from [`Instant`] (monotonic, never wall-clock).
#[derive(Debug)]
pub struct MonotonicClock {
    epoch: Instant,
}

impl MonotonicClock {
    /// A clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: time only moves when told to.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves time forward by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::SeqCst);
    }

    /// Sets the absolute time.
    pub fn set(&self, micros: u64) {
        self.micros.store(micros, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::SeqCst)
    }
}

/// Upper bounds (microseconds, inclusive) of the histogram buckets; the
/// final implicit bucket is unbounded. Powers of ~4 from 100 µs to ~100 s.
const BUCKET_BOUNDS: [u64; 8] = [
    100,
    400,
    1_600,
    6_400,
    25_600,
    102_400,
    1_638_400,
    104_857_600,
];

/// A fixed-bucket latency histogram with atomic cells.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS.len() + 1],
    sum: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn observe(&self, micros: u64) {
        // Pair each bound with its bucket so no index arithmetic can go
        // out of range; the unpaired final bucket is the overflow bucket.
        let mut chosen = self.buckets.last();
        for (&bound, bucket) in BUCKET_BOUNDS.iter().zip(self.buckets.iter()) {
            if micros <= bound {
                chosen = Some(bucket);
                break;
            }
        }
        if let Some(bucket) = chosen {
            bucket.fetch_add(1, Ordering::SeqCst);
        }
        self.sum.fetch_add(micros, Ordering::SeqCst);
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::SeqCst)
    }

    /// Sum of all observations (microseconds).
    pub fn sum_micros(&self) -> u64 {
        self.sum.load(Ordering::SeqCst)
    }

    /// The upper bound of the bucket holding the `q`-quantile
    /// observation (0 for an empty histogram, `u64::MAX` when the rank
    /// lands in the unbounded overflow bucket). Bucket-resolution, like
    /// any fixed-bucket histogram — good enough to watch a p99 move.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
            seen += self.buckets[i].load(Ordering::SeqCst);
            if seen >= rank {
                return bound;
            }
        }
        u64::MAX
    }

    fn render_into(&self, name: &str, out: &mut String) {
        use std::fmt::Write;
        for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}_bucket{{le=\"{bound}\"}} {}",
                self.buckets[i].load(Ordering::SeqCst)
            );
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"+inf\"}} {}",
            self.buckets[BUCKET_BOUNDS.len()].load(Ordering::SeqCst)
        );
        let _ = writeln!(out, "{name}_sum_micros {}", self.sum_micros());
        let _ = writeln!(out, "{name}_count {}", self.count());
        let _ = writeln!(out, "{name}_p50_micros {}", self.quantile(0.50));
        let _ = writeln!(out, "{name}_p99_micros {}", self.quantile(0.99));
    }
}

/// The server's metric registry: every counter, gauge and histogram it
/// exports.
///
/// Counters only ever increase; `cache_entries` is a gauge the server
/// stores absolutely after each cache operation. Declaration order here
/// *is* the rendering order, so [`ServeMetrics::render`] output is stable
/// by construction.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    /// Connections accepted.
    pub connections_total: AtomicU64,
    /// Requests of any type admitted past the handshake.
    pub requests_total: AtomicU64,
    /// `FitProfile` requests processed (including cache hits).
    pub fit_requests_total: AtomicU64,
    /// `Synthesize` requests processed.
    pub synth_requests_total: AtomicU64,
    /// `Stats` requests processed.
    pub stats_requests_total: AtomicU64,
    /// `Metricsz` requests processed.
    pub metricsz_requests_total: AtomicU64,
    /// Typed error frames sent, any code.
    pub errors_total: AtomicU64,
    /// Error frames carrying `Busy` (queue cap hit).
    pub busy_rejections_total: AtomicU64,
    /// Error frames carrying `DeadlineExceeded`.
    pub deadline_exceeded_total: AtomicU64,
    /// Fit requests answered from the profile cache.
    pub cache_hits_total: AtomicU64,
    /// Fit requests that had to fit from scratch.
    pub cache_misses_total: AtomicU64,
    /// Profiles evicted by LRU capacity pressure.
    pub cache_evictions_total: AtomicU64,
    /// Profiles dropped because their TTL lapsed.
    pub cache_expirations_total: AtomicU64,
    /// Profiles currently resident (gauge).
    pub cache_entries: AtomicU64,
    /// Encoded record bytes streamed in `SynthChunk` frames.
    pub streamed_bytes_total: AtomicU64,
    /// Requests streamed across all `Synthesize` responses.
    pub streamed_requests_total: AtomicU64,
    /// `CoupledSynthesize` requests processed.
    pub coupled_requests_total: AtomicU64,
    /// `CoupledChunk` frames produced.
    pub coupled_chunks_total: AtomicU64,
    /// Requests streamed through coupled (Option B) streams.
    pub coupled_streamed_requests_total: AtomicU64,
    /// Simulated stall cycles the DRAM model fed back into coupled
    /// generators.
    pub coupled_stall_cycles_total: AtomicU64,
    /// `FitProfile` requests that asked for a sampled fit (clusters > 0).
    pub sample_fit_requests_total: AtomicU64,
    /// Clusters formed across all sampled fits actually computed (cache
    /// hits excluded).
    pub sample_clusters_total: AtomicU64,
    /// Profiles live in the persistent store (gauge; 0 without a store).
    pub store_profiles: AtomicU64,
    /// Persistent store write-ahead-log size in bytes (gauge).
    pub store_wal_bytes: AtomicU64,
    /// Records appended to the store's write-ahead log.
    pub store_wal_appends_total: AtomicU64,
    /// Store opens that found state to recover (replayed records,
    /// truncated a torn tail, or discarded a stale log).
    pub store_recoveries_total: AtomicU64,
    /// Profiles recovered from disk (checkpoint + log replay) at open.
    pub store_recovered_profiles_total: AtomicU64,
    /// Duration of the last store open's recovery replay (gauge).
    pub store_replay_micros: AtomicU64,
    /// Store compactions (checkpoint + log truncation) performed.
    pub store_checkpoints_total: AtomicU64,
    /// Clock reading at the last checkpoint (or store open); rendered as
    /// `store_last_checkpoint_age_micros`, the gap to "now".
    pub store_last_checkpoint_micros: AtomicU64,
    /// Connections the reactor currently owns (gauge).
    pub reactor_open_conns: AtomicU64,
    /// Connections refused at accept because `max_conns` was reached.
    pub reactor_conns_rejected_total: AtomicU64,
    /// Reactor sweep iterations. Scheduling-dependent by nature (how
    /// often the loop wakes depends on socket and worker timing), so
    /// determinism tests exclude exactly this one line.
    pub reactor_wakeups_total: AtomicU64,
    /// Response frames queued on sockets, not yet fully written (gauge).
    pub reactor_write_queue_frames: AtomicU64,
    /// Requests currently holding a shard admission slot (gauge).
    pub shard_inflight: AtomicU64,
    /// Requests shed with `Busy` because their shard was at budget.
    pub shard_shed_total: AtomicU64,
    /// Jobs waiting in the worker pool's queue (gauge).
    pub pool_queue_depth: AtomicU64,
    /// Submit-to-job-start wait.
    pub queue_wait_micros: Histogram,
    /// Fit job duration.
    pub fit_latency_micros: Histogram,
    /// Synthesis stream duration (start to end frame).
    pub synth_latency_micros: Histogram,
    /// Per-cluster mean similarity error of sampled fits, in parts per
    /// million (the accuracy side of the accuracy/cost frontier). Not a
    /// latency, but the fixed-bucket histogram resolves it fine: 1.0 of
    /// total-variation distance is 1_000_000 ppm.
    pub sample_frontier_error_ppm: Histogram,
    /// Queue-to-wire latency of each response frame (enqueue on the
    /// connection's write queue until its last byte hits the socket).
    pub frame_latency_micros: Histogram,
}

impl ServeMetrics {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders every metric as `name value` lines in a fixed order,
    /// followed by the histograms and `uptime_micros` computed from
    /// `now_micros`. Two renderings of registries in the same state with
    /// the same clock reading are byte-identical.
    pub fn render(&self, now_micros: u64) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (name, counter) in [
            ("connections_total", &self.connections_total),
            ("requests_total", &self.requests_total),
            ("fit_requests_total", &self.fit_requests_total),
            ("synth_requests_total", &self.synth_requests_total),
            ("stats_requests_total", &self.stats_requests_total),
            ("metricsz_requests_total", &self.metricsz_requests_total),
            ("errors_total", &self.errors_total),
            ("busy_rejections_total", &self.busy_rejections_total),
            ("deadline_exceeded_total", &self.deadline_exceeded_total),
            ("cache_hits_total", &self.cache_hits_total),
            ("cache_misses_total", &self.cache_misses_total),
            ("cache_evictions_total", &self.cache_evictions_total),
            ("cache_expirations_total", &self.cache_expirations_total),
            ("cache_entries", &self.cache_entries),
            ("streamed_bytes_total", &self.streamed_bytes_total),
            ("streamed_requests_total", &self.streamed_requests_total),
            ("coupled_requests_total", &self.coupled_requests_total),
            ("coupled_chunks_total", &self.coupled_chunks_total),
            (
                "coupled_streamed_requests_total",
                &self.coupled_streamed_requests_total,
            ),
            (
                "coupled_stall_cycles_total",
                &self.coupled_stall_cycles_total,
            ),
            ("sample_fit_requests_total", &self.sample_fit_requests_total),
            ("sample_clusters_total", &self.sample_clusters_total),
            ("store_profiles", &self.store_profiles),
            ("store_wal_bytes", &self.store_wal_bytes),
            ("store_wal_appends_total", &self.store_wal_appends_total),
            ("store_recoveries_total", &self.store_recoveries_total),
            (
                "store_recovered_profiles_total",
                &self.store_recovered_profiles_total,
            ),
            ("store_replay_micros", &self.store_replay_micros),
            ("store_checkpoints_total", &self.store_checkpoints_total),
        ] {
            let _ = writeln!(out, "{name} {}", counter.load(Ordering::SeqCst));
        }
        let _ = writeln!(
            out,
            "store_last_checkpoint_age_micros {}",
            now_micros.saturating_sub(self.store_last_checkpoint_micros.load(Ordering::SeqCst))
        );
        for (name, counter) in [
            ("reactor_open_conns", &self.reactor_open_conns),
            (
                "reactor_conns_rejected_total",
                &self.reactor_conns_rejected_total,
            ),
            ("reactor_wakeups_total", &self.reactor_wakeups_total),
            (
                "reactor_write_queue_frames",
                &self.reactor_write_queue_frames,
            ),
            ("shard_inflight", &self.shard_inflight),
            ("shard_shed_total", &self.shard_shed_total),
            ("pool_queue_depth", &self.pool_queue_depth),
        ] {
            let _ = writeln!(out, "{name} {}", counter.load(Ordering::SeqCst));
        }
        self.queue_wait_micros.render_into("queue_wait", &mut out);
        self.fit_latency_micros.render_into("fit_latency", &mut out);
        self.synth_latency_micros
            .render_into("synth_latency", &mut out);
        self.sample_frontier_error_ppm
            .render_into("sample_frontier_error_ppm", &mut out);
        self.frame_latency_micros
            .render_into("frame_latency", &mut out);
        let _ = writeln!(out, "uptime_micros {now_micros}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_only_when_told() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_micros(), 0);
        clock.advance(250);
        clock.advance(250);
        assert_eq!(clock.now_micros(), 500);
        clock.set(42);
        assert_eq!(clock.now_micros(), 42);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::new();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::new();
        h.observe(50); // first bucket
        h.observe(100); // still first (inclusive)
        h.observe(101); // second
        h.observe(u64::MAX); // overflow bucket
        assert_eq!(h.count(), 4);
        let mut text = String::new();
        h.render_into("t", &mut text);
        assert!(text.contains("t_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("t_bucket{le=\"400\"} 1"), "{text}");
        assert!(text.contains("t_bucket{le=\"+inf\"} 1"), "{text}");
        assert!(text.contains("t_count 4"), "{text}");
    }

    #[test]
    fn histogram_every_boundary_lands_in_its_own_bucket() {
        // Each bound is inclusive on its own bucket, bound+1 spills into
        // the next, and anything past the last bound reaches the overflow
        // bucket. Pins the bound/bucket pairing so a counting rewrite
        // cannot silently shift observations by one bucket.
        let h = Histogram::new();
        for &bound in &BUCKET_BOUNDS {
            h.observe(bound);
            h.observe(bound + 1);
        }
        assert_eq!(h.count(), 2 * BUCKET_BOUNDS.len() as u64);
        let mut text = String::new();
        h.render_into("b", &mut text);
        // Buckets report per-bucket counts: bucket 0 holds only its own
        // bound, every later bucket holds its own bound plus the previous
        // bound's +1 spillover, and the overflow bucket has the final
        // bound+1.
        for (i, &bound) in BUCKET_BOUNDS.iter().enumerate() {
            let want = format!("b_bucket{{le=\"{bound}\"}} {}", if i == 0 { 1 } else { 2 });
            assert!(text.contains(&want), "missing {want} in {text}");
        }
        assert!(text.contains("b_bucket{le=\"+inf\"} 1"), "{text}");
    }

    #[test]
    fn render_is_deterministic_under_frozen_clock() {
        let m = ServeMetrics::new();
        m.requests_total.fetch_add(3, Ordering::SeqCst);
        m.cache_hits_total.fetch_add(1, Ordering::SeqCst);
        m.fit_latency_micros.observe(1234);
        assert_eq!(m.render(777), m.render(777));
        assert_ne!(m.render(777), m.render(778));
    }

    #[test]
    fn render_lists_every_counter_once() {
        let text = ServeMetrics::new().render(0);
        for name in [
            "connections_total",
            "requests_total",
            "fit_requests_total",
            "synth_requests_total",
            "stats_requests_total",
            "metricsz_requests_total",
            "errors_total",
            "busy_rejections_total",
            "deadline_exceeded_total",
            "cache_hits_total",
            "cache_misses_total",
            "cache_evictions_total",
            "cache_expirations_total",
            "cache_entries",
            "streamed_bytes_total",
            "streamed_requests_total",
            "coupled_requests_total",
            "coupled_chunks_total",
            "coupled_streamed_requests_total",
            "coupled_stall_cycles_total",
            "sample_fit_requests_total",
            "sample_clusters_total",
            "store_profiles",
            "store_wal_bytes",
            "store_wal_appends_total",
            "store_recoveries_total",
            "store_recovered_profiles_total",
            "store_replay_micros",
            "store_checkpoints_total",
            "store_last_checkpoint_age_micros",
            "reactor_open_conns",
            "reactor_conns_rejected_total",
            "reactor_wakeups_total",
            "reactor_write_queue_frames",
            "shard_inflight",
            "shard_shed_total",
            "pool_queue_depth",
            "uptime_micros",
        ] {
            assert_eq!(
                text.lines().filter(|l| l.starts_with(name)).count(),
                1,
                "{name} missing or duplicated in:\n{text}"
            );
        }
        assert!(text.contains("queue_wait_count 0"));
        assert!(text.contains("fit_latency_count 0"));
        assert!(text.contains("synth_latency_count 0"));
        assert!(text.contains("sample_frontier_error_ppm_count 0"));
        assert!(text.contains("frame_latency_count 0"));
        assert!(text.contains("frame_latency_p50_micros 0"));
        assert!(text.contains("frame_latency_p99_micros 0"));
    }

    #[test]
    fn quantile_returns_bucket_bounds() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.99), 0, "empty histogram");
        for _ in 0..99 {
            h.observe(50); // le="100"
        }
        h.observe(200_000_000); // overflow bucket
        assert_eq!(h.quantile(0.50), 100);
        assert_eq!(h.quantile(0.99), 100, "rank 99 is still in le=100");
        assert_eq!(h.quantile(1.0), u64::MAX, "the max landed past all bounds");
        let h = Histogram::new();
        h.observe(500); // le="1600"
        assert_eq!(h.quantile(0.50), 1_600);
        assert_eq!(h.quantile(0.99), 1_600);
    }
}
