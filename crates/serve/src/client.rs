//! A synchronous client for the serving protocol.
//!
//! [`Client`] speaks the framed protocol over one TCP connection:
//! handshake on connect, then any number of requests. The streaming
//! `Synthesize` response can be consumed two ways:
//!
//! * [`Client::synthesize`] — auto-acks every chunk, reassembles a
//!   complete whole-trace encoding, and verifies the server's
//!   end-of-stream fingerprint by replaying the records through the
//!   codec. The returned bytes are byte-identical to what the offline
//!   [`mocktails_core::Profile::synthesize`] path writes.
//! * [`Client::begin_synthesize`] — hands back a [`SynthStream`] whose
//!   acks the caller sends explicitly, for consumers that want real
//!   backpressure (or tests that withhold acks on purpose).

use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;

use mocktails_trace::codec::{write_u64, RecordDecoder, CODEC_VERSION, TRACE_MAGIC};
use mocktails_trace::Fingerprinter;

use crate::error::ServeError;
use crate::frame::{read_frame, write_frame};
use crate::protocol::{ProfileSource, Request, Response, PROTOCOL_VERSION};

/// Result of a `FitProfile` request.
#[derive(Debug, Clone)]
pub struct FitOutcome {
    /// Content fingerprint of the fitted profile; later `Synthesize` and
    /// `Stats` requests can name the profile by it.
    pub fingerprint: u64,
    /// Whether the server answered from its profile cache.
    pub cache_hit: bool,
    /// The encoded profile bytes.
    pub profile_bytes: Vec<u8>,
}

/// Result of a fully-consumed `Synthesize` request.
#[derive(Debug, Clone)]
pub struct SynthOutcome {
    /// A complete whole-trace encoding (header + records), byte-identical
    /// to the offline synthesis path's output for the same profile/seed.
    pub trace_bytes: Vec<u8>,
    /// Requests in the trace.
    pub total_requests: u64,
    /// The server's order-sensitive request fingerprint (verified against
    /// a local replay before this outcome is returned).
    pub fingerprint: u64,
}

/// Result of a fully-consumed `CoupledSynthesize` request.
#[derive(Debug, Clone)]
pub struct CoupledOutcome {
    /// A complete whole-trace encoding (header + records) whose
    /// timestamps carry the DRAM model's fed-back stalls — byte-identical
    /// to the offline `MemorySystem::run_synthesizer` path's trace.
    pub trace_bytes: Vec<u8>,
    /// Requests in the trace.
    pub total_requests: u64,
    /// The server's order-sensitive request fingerprint (verified against
    /// a local replay before this outcome is returned).
    pub fingerprint: u64,
    /// Simulated cycle count the stream reached (last request's issue
    /// timestamp, including stalls).
    pub simulated_cycles: u64,
    /// Total stall cycles the DRAM model fed back into the generator.
    pub stall_cycles: u64,
}

/// One chunk of a coupled stream, as received by [`CoupledStream`].
#[derive(Debug, Clone)]
pub struct CoupledChunk {
    /// Requests encoded in `records`.
    pub count: u32,
    /// Simulated cycles reached by the last request in the chunk.
    pub simulated_cycles: u64,
    /// Cumulative stall cycles fed back so far.
    pub stall_cycles: u64,
    /// The chunk's record bytes.
    pub records: Vec<u8>,
}

/// Result of a `Compact` request: the store checkpointed and truncated
/// its write-ahead log.
#[derive(Debug, Clone, Copy)]
pub struct CompactOutcome {
    /// Store generation after the compaction.
    pub generation: u64,
    /// Live profiles captured in the checkpoint.
    pub profiles: u64,
    /// Size of the checkpoint file, in bytes.
    pub checkpoint_bytes: u64,
    /// Log bytes reclaimed by the truncation.
    pub wal_bytes_dropped: u64,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame_len: usize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.reader.get_ref().peer_addr().ok())
            .finish()
    }
}

impl Client {
    /// Connects to `addr` and performs the protocol handshake.
    ///
    /// # Errors
    ///
    /// Connection failures, or a typed [`ServeError::Remote`] if the
    /// server rejects the protocol version.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        Self::connect_with(addr, 64 << 20)
    }

    /// [`Client::connect`] with an explicit inbound frame size limit.
    ///
    /// # Errors
    ///
    /// As [`Client::connect`].
    pub fn connect_with(addr: &str, max_frame_len: usize) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let mut client = Self {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
            max_frame_len,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Response::HelloOk { .. } => Ok(client),
            other => Err(unexpected("hello-ok", &other)),
        }
    }

    fn send(&mut self, request: &Request) -> Result<(), ServeError> {
        write_frame(&mut self.writer, &request.encode())?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self) -> Result<Response, ServeError> {
        match read_frame(&mut self.reader, self.max_frame_len)? {
            Some(payload) => Response::decode(&payload),
            None => Err(ServeError::Frame("connection closed mid-exchange".into())),
        }
    }

    /// Uploads encoded trace bytes and fits a profile server-side.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed error as
    /// [`ServeError::Remote`].
    pub fn fit(&mut self, cycles: u64, trace_bytes: Vec<u8>) -> Result<FitOutcome, ServeError> {
        self.fit_clustered(cycles, 0, trace_bytes)
    }

    /// Like [`Client::fit`], but asks the server for a sampled-fidelity
    /// fit with `clusters` k-means clusters (`0` = full fit): only each
    /// cluster's representative partition is modeled server-side.
    ///
    /// # Errors
    ///
    /// As [`Client::fit`].
    pub fn fit_clustered(
        &mut self,
        cycles: u64,
        clusters: u32,
        trace_bytes: Vec<u8>,
    ) -> Result<FitOutcome, ServeError> {
        self.send(&Request::FitProfile {
            cycles,
            clusters,
            trace_bytes,
        })?;
        match self.recv()? {
            Response::FitResult {
                fingerprint,
                cache_hit,
                profile_bytes,
            } => Ok(FitOutcome {
                fingerprint,
                cache_hit,
                profile_bytes,
            }),
            other => Err(unexpected("fit-result", &other)),
        }
    }

    /// Like [`Client::fit`], but retries `Busy` rejections under
    /// `policy`'s jittered exponential backoff, sleeping for real
    /// between attempts. Any other error returns immediately.
    ///
    /// # Errors
    ///
    /// Transport failures, the final `Busy` once retries are exhausted,
    /// or the server's first non-`Busy` typed error.
    pub fn fit_with_retry(
        &mut self,
        cycles: u64,
        trace_bytes: Vec<u8>,
        policy: &crate::retry::RetryPolicy,
    ) -> Result<FitOutcome, ServeError> {
        crate::retry::retry_busy(
            policy,
            |micros| std::thread::sleep(std::time::Duration::from_micros(micros)),
            || self.fit(cycles, trace_bytes.clone()),
        )
    }

    /// Streams a full synthesis, acking every chunk, and returns the
    /// reassembled whole-trace encoding after verifying the server's
    /// stream fingerprint against a local replay of the record bytes.
    ///
    /// # Errors
    ///
    /// Transport failures, the server's typed error, or
    /// [`ServeError::Protocol`] if the fingerprint check fails.
    pub fn synthesize(
        &mut self,
        seed: u64,
        chunk_len: u32,
        source: ProfileSource,
    ) -> Result<SynthOutcome, ServeError> {
        let mut stream = self.begin_synthesize(seed, chunk_len, source)?;
        let mut records = Vec::new();
        while let Some(chunk) = stream.next_chunk()? {
            records.extend_from_slice(&chunk);
            stream.ack()?;
        }
        let (total_requests, fingerprint) = stream.end()?;
        let trace_bytes = verify_and_assemble(records, total_requests, fingerprint)?;
        Ok(SynthOutcome {
            trace_bytes,
            total_requests,
            fingerprint,
        })
    }

    /// Streams a full coupled (Option B) synthesis, acking every chunk,
    /// and returns the reassembled paced trace plus the simulated-time
    /// totals the DRAM model reported.
    ///
    /// # Errors
    ///
    /// Transport failures, the server's typed error, or
    /// [`ServeError::Protocol`] if the fingerprint check fails.
    pub fn couple(
        &mut self,
        seed: u64,
        chunk_len: u32,
        source: ProfileSource,
    ) -> Result<CoupledOutcome, ServeError> {
        let mut stream = self.begin_couple(seed, chunk_len, source)?;
        let mut records = Vec::new();
        let mut simulated_cycles = 0u64;
        let mut stall_cycles = 0u64;
        while let Some(chunk) = stream.next_chunk()? {
            records.extend_from_slice(&chunk.records);
            simulated_cycles = chunk.simulated_cycles;
            stall_cycles = chunk.stall_cycles;
            stream.ack()?;
        }
        let (total_requests, fingerprint) = stream.end()?;
        let trace_bytes = verify_and_assemble(records, total_requests, fingerprint)?;
        Ok(CoupledOutcome {
            trace_bytes,
            total_requests,
            fingerprint,
            simulated_cycles,
            stall_cycles,
        })
    }

    /// Starts a coupled stream whose acks the caller controls. Each
    /// chunk carries the simulated-time backpressure alongside the
    /// records (see [`CoupledChunk`]).
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed error as
    /// [`ServeError::Remote`].
    pub fn begin_couple(
        &mut self,
        seed: u64,
        chunk_len: u32,
        source: ProfileSource,
    ) -> Result<CoupledStream<'_>, ServeError> {
        self.send(&Request::CoupledSynthesize {
            seed,
            chunk_len,
            source,
        })?;
        match self.recv()? {
            Response::SynthStart { total_requests } => Ok(CoupledStream {
                client: self,
                declared_total: total_requests,
                end: None,
            }),
            other => Err(unexpected("synth-start", &other)),
        }
    }

    /// Starts a synthesis stream whose acks the caller controls.
    ///
    /// # Errors
    ///
    /// Transport failures, or the server's typed error (e.g. `NotFound`,
    /// `Busy`) as [`ServeError::Remote`].
    pub fn begin_synthesize(
        &mut self,
        seed: u64,
        chunk_len: u32,
        source: ProfileSource,
    ) -> Result<SynthStream<'_>, ServeError> {
        self.send(&Request::Synthesize {
            seed,
            chunk_len,
            source,
        })?;
        match self.recv()? {
            Response::SynthStart { total_requests } => Ok(SynthStream {
                client: self,
                declared_total: total_requests,
                end: None,
            }),
            other => Err(unexpected("synth-start", &other)),
        }
    }

    /// Requests a profile summary.
    ///
    /// # Errors
    ///
    /// Transport failures or the server's typed error.
    pub fn stats(&mut self, source: ProfileSource) -> Result<String, ServeError> {
        self.send(&Request::Stats { source })?;
        match self.recv()? {
            Response::StatsText { text } => Ok(text),
            other => Err(unexpected("stats-text", &other)),
        }
    }

    /// Fetches the server's metrics rendering.
    ///
    /// # Errors
    ///
    /// Transport failures or the server's typed error.
    pub fn metricsz(&mut self) -> Result<String, ServeError> {
        self.send(&Request::Metricsz)?;
        match self.recv()? {
            Response::MetricsText { text } => Ok(text),
            other => Err(unexpected("metrics-text", &other)),
        }
    }

    /// Asks the server to checkpoint its profile store and truncate the
    /// write-ahead log.
    ///
    /// # Errors
    ///
    /// Transport failures, `NotFound` when the server runs without a
    /// store, or the server's typed error.
    pub fn compact(&mut self) -> Result<CompactOutcome, ServeError> {
        self.send(&Request::Compact)?;
        match self.recv()? {
            Response::CompactOk {
                generation,
                profiles,
                checkpoint_bytes,
                wal_bytes_dropped,
            } => Ok(CompactOutcome {
                generation,
                profiles,
                checkpoint_bytes,
                wal_bytes_dropped,
            }),
            other => Err(unexpected("compact-ok", &other)),
        }
    }

    /// Asks the server to drain and exit.
    ///
    /// # Errors
    ///
    /// Transport failures or the server's typed error.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Shutdown)?;
        match self.recv()? {
            Response::ShutdownOk => Ok(()),
            other => Err(unexpected("shutdown-ok", &other)),
        }
    }

    /// Abandons an in-flight stream (used by [`SynthStream`]).
    fn send_cancel(&mut self) -> Result<(), ServeError> {
        self.send(&Request::Cancel)
    }
}

/// An in-progress synthesis stream with caller-controlled acks.
///
/// Call [`SynthStream::next_chunk`] until it returns `None`, sending
/// [`SynthStream::ack`] between chunks (the server ships chunk *n+1*
/// only after chunk *n* is acked), then read the end-of-stream totals
/// with [`SynthStream::end`].
#[derive(Debug)]
pub struct SynthStream<'a> {
    client: &'a mut Client,
    declared_total: u64,
    end: Option<(u64, u64)>,
}

impl SynthStream<'_> {
    /// Total requests the server announced for this stream.
    pub fn declared_total(&self) -> u64 {
        self.declared_total
    }

    /// Receives the next chunk's record bytes, or `None` at end of
    /// stream.
    ///
    /// # Errors
    ///
    /// Transport failures or the server's typed error (a mid-stream
    /// `DeadlineExceeded`, for instance).
    pub fn next_chunk(&mut self) -> Result<Option<Vec<u8>>, ServeError> {
        if self.end.is_some() {
            return Ok(None);
        }
        match self.client.recv()? {
            Response::SynthChunk { records, .. } => Ok(Some(records)),
            Response::SynthEnd {
                total_requests,
                fingerprint,
            } => {
                self.end = Some((total_requests, fingerprint));
                Ok(None)
            }
            other => Err(unexpected("synth-chunk", &other)),
        }
    }

    /// Acknowledges the chunk just received, releasing the next one.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ack(&mut self) -> Result<(), ServeError> {
        self.client.send(&Request::Ack)
    }

    /// Cancels the stream and drains it to its (clean) end-of-stream
    /// frame, so the connection is reusable afterwards.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn cancel(mut self) -> Result<(u64, u64), ServeError> {
        self.client.send_cancel()?;
        while self.next_chunk()?.is_some() {}
        self.end()
    }

    /// The end-of-stream `(total_requests, fingerprint)` pair.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the stream has not ended yet.
    pub fn end(&self) -> Result<(u64, u64), ServeError> {
        self.end
            .ok_or_else(|| ServeError::Protocol("stream has not reached its end frame".into()))
    }
}

/// An in-progress coupled stream with caller-controlled acks.
///
/// The coupled analogue of [`SynthStream`]: call
/// [`CoupledStream::next_chunk`] until `None`, acking between chunks,
/// then read the clean end-of-stream totals with [`CoupledStream::end`].
#[derive(Debug)]
pub struct CoupledStream<'a> {
    client: &'a mut Client,
    declared_total: u64,
    end: Option<(u64, u64)>,
}

impl CoupledStream<'_> {
    /// Total requests the server announced for this stream.
    pub fn declared_total(&self) -> u64 {
        self.declared_total
    }

    /// Receives the next coupled chunk, or `None` at end of stream.
    ///
    /// # Errors
    ///
    /// Transport failures or the server's typed error.
    pub fn next_chunk(&mut self) -> Result<Option<CoupledChunk>, ServeError> {
        if self.end.is_some() {
            return Ok(None);
        }
        match self.client.recv()? {
            Response::CoupledChunk {
                count,
                simulated_cycles,
                stall_cycles,
                records,
            } => Ok(Some(CoupledChunk {
                count,
                simulated_cycles,
                stall_cycles,
                records,
            })),
            Response::SynthEnd {
                total_requests,
                fingerprint,
            } => {
                self.end = Some((total_requests, fingerprint));
                Ok(None)
            }
            other => Err(unexpected("coupled-chunk", &other)),
        }
    }

    /// Acknowledges the chunk just received, releasing the next one.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn ack(&mut self) -> Result<(), ServeError> {
        self.client.send(&Request::Ack)
    }

    /// Cancels the stream and drains it to its (clean) end-of-stream
    /// frame, so the connection is reusable afterwards.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn cancel(mut self) -> Result<(u64, u64), ServeError> {
        self.client.send_cancel()?;
        while self.next_chunk()?.is_some() {}
        self.end()
    }

    /// The end-of-stream `(total_requests, fingerprint)` pair.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] if the stream has not ended yet.
    pub fn end(&self) -> Result<(u64, u64), ServeError> {
        self.end
            .ok_or_else(|| ServeError::Protocol("stream has not reached its end frame".into()))
    }
}

/// Verifies streamed record bytes against the server's order-sensitive
/// fingerprint (by replaying them through the codec) and reassembles the
/// whole-trace encoding: header + record section.
fn verify_and_assemble(
    records: Vec<u8>,
    total_requests: u64,
    fingerprint: u64,
) -> Result<Vec<u8>, ServeError> {
    let mut decoder = RecordDecoder::new();
    let mut replay = Fingerprinter::new();
    let mut cursor = records.as_slice();
    for i in 0..total_requests {
        let request = decoder
            .decode(&mut cursor)
            .map_err(|e| ServeError::Protocol(format!("streamed record {i} undecodable: {e}")))?;
        replay.push(&request);
    }
    if !cursor.is_empty() {
        return Err(ServeError::Protocol(format!(
            "{} trailing record bytes after {total_requests} requests",
            cursor.len()
        )));
    }
    if replay.digest() != fingerprint {
        return Err(ServeError::Protocol(format!(
            "stream fingerprint mismatch: server {fingerprint:#018x}, replay {:#018x}",
            replay.digest()
        )));
    }
    let mut trace_bytes = Vec::with_capacity(records.len() + 16);
    trace_bytes.extend_from_slice(&TRACE_MAGIC);
    trace_bytes.push(CODEC_VERSION);
    write_u64(&mut trace_bytes, total_requests)?;
    trace_bytes.extend_from_slice(&records);
    Ok(trace_bytes)
}

fn unexpected(wanted: &str, got: &Response) -> ServeError {
    match got {
        Response::Error { code, message } => ServeError::Remote {
            code: *code,
            message: message.clone(),
        },
        other => ServeError::Protocol(format!("expected {wanted}, got {other:?}")),
    }
}
