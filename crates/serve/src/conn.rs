//! Connection-layer building blocks for the readiness-driven reactor.
//!
//! The reactor (see [`crate::reactor`]) owns every [`Conn`] exclusively
//! and sweeps them with nonblocking reads and writes; worker jobs never
//! touch a socket. The pieces here are the seams between the two:
//!
//! * [`FrameAssembler`] — incremental length-prefixed frame reassembly
//!   from whatever byte chunks the socket yields, with the same typed
//!   error strings as [`crate::frame::read_frame`].
//! * [`Outbox`] / [`ConnTx`] — the lock-protected queue worker jobs push
//!   responses and stream events into; pushing wakes the reactor.
//! * [`WriteQueue`] — per-connection pending output with write
//!   backpressure and per-frame latency observation.
//! * [`SynthState`] — a streaming synthesis parked between chunk jobs,
//!   so a stream holds no worker while waiting for the client's ack.
//! * [`WakeFlag`] — the condvar the reactor parks on when no socket or
//!   job has work for it.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use mocktails_core::Synthesizer;
use mocktails_dram::MemorySystem;
use mocktails_trace::codec::RecordEncoder;
use mocktails_trace::Fingerprinter;

use crate::cache::ShardSlot;
use crate::error::ErrorCode;
use crate::metrics::ServeMetrics;
use crate::protocol::{Request, Response};

/// Allocation granularity for payload reassembly; memory tracks bytes
/// actually received, never the declared length alone (mirrors
/// [`crate::frame`]).
const READ_CHUNK: usize = 1 << 16;

/// Bytes of queued output above which a connection's reads pause: a
/// client that stops draining its responses stops being read.
pub(crate) const WRITE_HIGH_WATERMARK: usize = 1 << 20;

/// The condvar the reactor parks on between sweeps. Worker jobs `wake`
/// it when they queue output; the reactor `wait_for`s with a timeout so
/// a missed edge only costs one tick.
pub(crate) struct WakeFlag {
    state: Mutex<bool>,
    cond: Condvar,
}

impl WakeFlag {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(false),
            cond: Condvar::new(),
        }
    }

    /// Flags the reactor awake. Cheap enough to call on every push.
    pub(crate) fn wake(&self) {
        {
            let mut flagged = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            *flagged = true;
        }
        self.cond.notify_one();
    }

    /// Parks until woken or `micros` elapse, consuming the flag either
    /// way. A wake that raced in before the park returns immediately.
    pub(crate) fn wait_for(&self, micros: u64) {
        let mut flagged = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if !*flagged {
            let (guard, _timed_out) = self
                .cond
                .wait_timeout(flagged, Duration::from_micros(micros))
                .unwrap_or_else(PoisonError::into_inner);
            flagged = guard;
        }
        *flagged = false;
    }
}

/// Incremental reassembly of length-prefixed frames from arbitrary byte
/// chunks. Error strings mirror [`crate::frame::read_frame`] so the
/// server's oversize/truncation mapping works unchanged.
pub(crate) struct FrameAssembler {
    max_len: usize,
    prefix: [u8; 4],
    prefix_filled: usize,
    /// Declared payload length once the prefix is complete.
    need: Option<usize>,
    payload: Vec<u8>,
}

impl FrameAssembler {
    pub(crate) fn new(max_len: usize) -> Self {
        Self {
            max_len,
            prefix: [0; 4],
            prefix_filled: 0,
            need: None,
            payload: Vec::new(),
        }
    }

    /// Feeds `chunk` in, appending every completed frame to `out`.
    ///
    /// # Errors
    ///
    /// A declared length above `max_len` returns the same "exceeds
    /// maximum" message [`crate::frame::read_frame`] produces; the
    /// connection must close after it (frame sync is lost).
    pub(crate) fn push(&mut self, chunk: &[u8], out: &mut VecDeque<Vec<u8>>) -> Result<(), String> {
        let mut rest = chunk;
        loop {
            match self.need {
                None => {
                    if rest.is_empty() {
                        return Ok(());
                    }
                    let take = (4 - self.prefix_filled).min(rest.len());
                    self.prefix[self.prefix_filled..self.prefix_filled + take]
                        .copy_from_slice(&rest[..take]);
                    self.prefix_filled += take;
                    rest = &rest[take..];
                    if self.prefix_filled == 4 {
                        let len = u32::from_le_bytes(self.prefix) as usize;
                        if len > self.max_len {
                            return Err(format!(
                                "frame length {len} exceeds maximum {}",
                                self.max_len
                            ));
                        }
                        self.prefix_filled = 0;
                        self.need = Some(len);
                        self.payload = Vec::with_capacity(len.min(READ_CHUNK));
                    }
                }
                Some(need) => {
                    if self.payload.len() == need {
                        out.push_back(std::mem::take(&mut self.payload));
                        self.need = None;
                        continue; // zero-length frames complete with no payload bytes
                    }
                    if rest.is_empty() {
                        return Ok(());
                    }
                    let take = (need - self.payload.len()).min(rest.len());
                    self.payload.extend_from_slice(&rest[..take]);
                    rest = &rest[take..];
                }
            }
        }
    }

    /// The typed truncation message for an EOF that lands mid-frame, or
    /// `None` when the stream closed on a clean frame boundary.
    pub(crate) fn eof_error(&self) -> Option<String> {
        if let Some(need) = self.need {
            return Some(format!(
                "truncated frame payload ({} of {need} bytes)",
                self.payload.len()
            ));
        }
        if self.prefix_filled > 0 {
            return Some(format!(
                "truncated length prefix ({} of 4 bytes)",
                self.prefix_filled
            ));
        }
        None
    }
}

/// The DRAM model a coupled (Option B) stream paces against. Chunk jobs
/// inject every synthesized request into it and feed the resulting
/// stalls back into the generator before encoding the request, exactly
/// like `MemorySystem::run_synthesizer` but one chunk at a time.
pub(crate) struct Coupling {
    /// The simulator exerting backpressure on the stream.
    pub(crate) mem: MemorySystem,
    /// Issue timestamp of the last synthesized request: simulated cycles
    /// reached, including every stall fed back so far.
    pub(crate) simulated_cycles: u64,
}

/// A streaming synthesis parked between chunk jobs. Chunk jobs lock it,
/// encode one chunk, and release; the reactor never computes on it.
pub(crate) struct SynthState {
    pub(crate) synth: Synthesizer,
    pub(crate) encoder: RecordEncoder,
    pub(crate) fingerprinter: Fingerprinter,
    pub(crate) chunk_len: u32,
    /// When the synthesize request entered its worker job; end-of-stream
    /// observes `synth_latency_micros` against it.
    pub(crate) started_micros: u64,
    /// Set once `SynthEnd` has been produced; later chunk/finalize jobs
    /// become no-ops.
    pub(crate) finished: bool,
    /// `Some` for a coupled (Option B) stream; `None` for the open-loop
    /// `Synthesize` stream.
    pub(crate) coupling: Option<Coupling>,
}

/// One event a worker job hands back to the reactor.
pub(crate) enum Outgoing {
    /// An encoded response frame to queue on the socket.
    Frame(Vec<u8>),
    /// The connection's one-shot job finished; return to `Idle`.
    Done,
    /// A synthesize job produced `SynthStart` + first chunk and parked
    /// its state; the connection enters `Streaming`.
    StreamStarted(Arc<Mutex<SynthState>>),
    /// A chunk or finalize job finished; `ended` means `SynthEnd` went
    /// out and the stream is over.
    StreamProgress { ended: bool },
}

struct OutboxInner {
    queue: VecDeque<Outgoing>,
    /// Set when the connection dies; late pushes from an orphaned job
    /// are dropped instead of accumulating.
    closed: bool,
}

/// The queue worker jobs push [`Outgoing`] events into; every push wakes
/// the reactor. One per connection, shared via [`ConnTx`].
pub(crate) struct Outbox {
    inner: Mutex<OutboxInner>,
    wake: Arc<WakeFlag>,
}

impl Outbox {
    pub(crate) fn new(wake: Arc<WakeFlag>) -> Self {
        Self {
            inner: Mutex::new(OutboxInner {
                queue: VecDeque::new(),
                closed: false,
            }),
            wake,
        }
    }

    fn push(&self, item: Outgoing) {
        {
            let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.closed {
                return;
            }
            inner.queue.push_back(item);
        }
        self.wake.wake();
    }

    /// Marks the connection dead and discards anything queued.
    pub(crate) fn close(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.closed = true;
        inner.queue.clear();
    }

    /// Takes everything queued so far (the reactor's per-sweep drain).
    pub(crate) fn drain(&self) -> VecDeque<Outgoing> {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut inner.queue)
    }

    pub(crate) fn is_empty(&self) -> bool {
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        inner.queue.is_empty()
    }
}

/// A worker job's handle to its connection: responses and stream events
/// go through here, never to the socket directly.
#[derive(Clone)]
pub(crate) struct ConnTx {
    outbox: Arc<Outbox>,
}

impl ConnTx {
    pub(crate) fn new(outbox: Arc<Outbox>) -> Self {
        Self { outbox }
    }

    pub(crate) fn send(&self, response: &Response) {
        self.outbox.push(Outgoing::Frame(response.encode()));
    }

    pub(crate) fn done(&self) {
        self.outbox.push(Outgoing::Done);
    }

    pub(crate) fn stream_started(&self, state: Arc<Mutex<SynthState>>) {
        self.outbox.push(Outgoing::StreamStarted(state));
    }

    pub(crate) fn stream_progress(&self, ended: bool) {
        self.outbox.push(Outgoing::StreamProgress { ended });
    }
}

/// What one write sweep over a connection accomplished.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum WriteOutcome {
    /// Bytes left the queue.
    Progress,
    /// Nothing to write, or the socket is full (`WouldBlock`).
    Idle,
    /// The socket is dead; the connection must be dropped.
    Closed,
}

struct PendingWrite {
    /// Length prefix plus payload, written as one unit.
    bytes: Vec<u8>,
    offset: usize,
    enqueued_micros: u64,
}

/// Per-connection pending output. Frames queue here and drain as the
/// socket accepts them; completing a frame observes its queue-to-wire
/// latency.
pub(crate) struct WriteQueue {
    queue: VecDeque<PendingWrite>,
    queued_bytes: usize,
}

impl WriteQueue {
    pub(crate) fn new() -> Self {
        Self {
            queue: VecDeque::new(),
            queued_bytes: 0,
        }
    }

    /// Queues one frame (prefix + payload). A payload above `u32::MAX`
    /// bytes cannot be framed; the message mirrors
    /// [`crate::frame::write_frame`].
    pub(crate) fn push(&mut self, payload: &[u8], now: u64) -> Result<(), String> {
        let len = u32::try_from(payload.len())
            .map_err(|_| "payload exceeds u32 length prefix".to_string())?;
        let mut bytes = Vec::with_capacity(payload.len() + 4);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(payload);
        self.queued_bytes += bytes.len();
        self.queue.push_back(PendingWrite {
            bytes,
            offset: 0,
            enqueued_micros: now,
        });
        Ok(())
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    pub(crate) fn frames(&self) -> usize {
        self.queue.len()
    }

    pub(crate) fn queued_bytes(&self) -> usize {
        self.queued_bytes
    }

    /// Writes as much as the nonblocking socket accepts. A dead socket
    /// is an outcome, not an error: the reactor drops the connection.
    pub(crate) fn write_to(
        &mut self,
        stream: &mut TcpStream,
        metrics: &ServeMetrics,
        now: u64,
    ) -> WriteOutcome {
        let mut progressed = false;
        while let Some(front) = self.queue.front_mut() {
            match stream.write(&front.bytes[front.offset..]) {
                Ok(0) => return WriteOutcome::Closed,
                Ok(n) => {
                    progressed = true;
                    front.offset += n;
                    self.queued_bytes -= n;
                    if front.offset == front.bytes.len() {
                        metrics
                            .frame_latency_micros
                            .observe(now.saturating_sub(front.enqueued_micros));
                        self.queue.pop_front();
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Closed,
            }
        }
        if progressed {
            WriteOutcome::Progress
        } else {
            WriteOutcome::Idle
        }
    }
}

/// A streaming connection's control block: the parked synthesis plus
/// what the reactor owes it.
pub(crate) struct StreamCtl {
    pub(crate) state: Arc<Mutex<SynthState>>,
    /// True while a chunk/finalize job for this stream is in the pool;
    /// at most one is ever in flight, so chunks stay ordered.
    pub(crate) job_in_flight: bool,
    /// Acks received but not yet turned into chunk jobs.
    pub(crate) pending_acks: u32,
    /// Set by `Cancel`, client EOF, or a superseding request: the next
    /// dispatch finalizes the stream instead of chunking.
    pub(crate) cancel: bool,
    /// When the reactor started waiting for the client's next ack; the
    /// deadline check measures against this.
    pub(crate) awaiting_ack_since: Option<u64>,
}

/// Where a connection is in its protocol lifecycle.
pub(crate) enum Phase {
    /// Nothing but a version-compatible `Hello` is acceptable.
    Handshake,
    /// Between requests.
    Idle,
    /// A one-shot job (fit/stats/compact) is in the pool; reads pause
    /// until its `Done` comes back.
    Job,
    /// A synthesize stream is in progress.
    Streaming(StreamCtl),
}

/// One client connection, owned exclusively by the reactor thread.
pub(crate) struct Conn {
    pub(crate) stream: TcpStream,
    pub(crate) assembler: FrameAssembler,
    /// Completed frames not yet dispatched.
    pub(crate) inbound: VecDeque<Vec<u8>>,
    pub(crate) writeq: WriteQueue,
    pub(crate) outbox: Arc<Outbox>,
    pub(crate) phase: Phase,
    /// A request that arrived while a stream was still winding down; it
    /// dispatches once the stream's finalize completes.
    pub(crate) pending: Option<Request>,
    /// Set once the connection should close as soon as its output
    /// flushes.
    pub(crate) closing: bool,
    /// Set when the socket is unwritable; the connection drops without
    /// waiting for its queue to flush.
    pub(crate) dead: bool,
    pub(crate) read_eof: bool,
    /// A framing error (sync lost); answered with a typed error frame
    /// once earlier frames have been served, then the connection closes.
    pub(crate) frame_error: Option<String>,
    /// A typed error to send after the in-flight stream winds down.
    pub(crate) close_error: Option<(ErrorCode, String)>,
    /// The admission slot held while a request or stream is in flight;
    /// dropping it releases the shard budget.
    pub(crate) shard_slot: Option<ShardSlot>,
}

impl Conn {
    pub(crate) fn new(stream: TcpStream, max_len: usize, wake: Arc<WakeFlag>) -> Self {
        Self {
            stream,
            assembler: FrameAssembler::new(max_len),
            inbound: VecDeque::new(),
            writeq: WriteQueue::new(),
            outbox: Arc::new(Outbox::new(wake)),
            phase: Phase::Handshake,
            pending: None,
            closing: false,
            dead: false,
            read_eof: false,
            frame_error: None,
            close_error: None,
            shard_slot: None,
        }
    }

    pub(crate) fn tx(&self) -> ConnTx {
        ConnTx::new(Arc::clone(&self.outbox))
    }

    /// Whether the reactor should stop pulling bytes off this socket:
    /// output is backed up, a close is pending, or the protocol phase
    /// cannot consume another request yet.
    pub(crate) fn read_paused(&self) -> bool {
        self.closing
            || self.read_eof
            || self.frame_error.is_some()
            || self.close_error.is_some()
            || self.pending.is_some()
            || matches!(self.phase, Phase::Job)
            || self.writeq.queued_bytes() > WRITE_HIGH_WATERMARK
    }

    /// Pulls whatever the nonblocking socket has (bounded per sweep for
    /// fairness), assembling frames into `inbound`. Returns `true` if
    /// any bytes arrived.
    pub(crate) fn pump_read(&mut self) -> bool {
        let mut buf = [0u8; 16 * 1024];
        let mut progressed = false;
        // 8 reads x 16 KiB bounds one connection's share of a sweep.
        for _ in 0..8 {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_eof = true;
                    if self.frame_error.is_none() {
                        self.frame_error = self.assembler.eof_error();
                    }
                    break;
                }
                Ok(n) => {
                    progressed = true;
                    let mut frames = std::mem::take(&mut self.inbound);
                    // lint: allow(L019, completed frames are drained by process_inbound every sweep and the partial-payload buffer is bounded by max_len)
                    let pushed = self.assembler.push(&buf[..n], &mut frames);
                    self.inbound = frames;
                    if let Err(msg) = pushed {
                        self.frame_error = Some(msg);
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    // A dead socket reads like EOF: wind down in order.
                    self.read_eof = true;
                    break;
                }
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames_of(assembler: &mut FrameAssembler, chunks: &[&[u8]]) -> Vec<Vec<u8>> {
        let mut out = VecDeque::new();
        for chunk in chunks {
            assembler.push(chunk, &mut out).unwrap();
        }
        out.into_iter().collect()
    }

    fn encode(payload: &[u8]) -> Vec<u8> {
        let mut bytes = (payload.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(payload);
        bytes
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_splits() {
        let mut wire = encode(b"hello");
        wire.extend_from_slice(&encode(b""));
        wire.extend_from_slice(&encode(b"world!"));
        for split in 0..wire.len() {
            let mut asm = FrameAssembler::new(1024);
            let (a, b) = wire.split_at(split);
            let frames = frames_of(&mut asm, &[a, b]);
            assert_eq!(
                frames,
                vec![b"hello".to_vec(), Vec::new(), b"world!".to_vec()]
            );
            assert!(asm.eof_error().is_none(), "split={split}");
        }
    }

    #[test]
    fn assembler_byte_at_a_time() {
        let wire = encode(b"abc");
        let mut asm = FrameAssembler::new(16);
        let mut out = VecDeque::new();
        for byte in &wire {
            asm.push(std::slice::from_ref(byte), &mut out).unwrap();
        }
        assert_eq!(out.pop_front().unwrap(), b"abc");
        assert!(out.is_empty());
    }

    #[test]
    fn assembler_oversize_matches_read_frame_message() {
        let mut asm = FrameAssembler::new(16);
        let mut out = VecDeque::new();
        let err = asm.push(&encode(&[0u8; 17]), &mut out).unwrap_err();
        assert_eq!(err, "frame length 17 exceeds maximum 16");
        assert!(
            err.contains("exceeds maximum"),
            "server maps this to LimitExceeded"
        );
    }

    #[test]
    fn assembler_eof_error_mirrors_read_frame() {
        let mut asm = FrameAssembler::new(1024);
        let mut out = VecDeque::new();
        asm.push(&encode(b"xyz")[..2], &mut out).unwrap();
        assert_eq!(
            asm.eof_error().unwrap(),
            "truncated length prefix (2 of 4 bytes)"
        );
        let mut asm = FrameAssembler::new(1024);
        asm.push(&encode(b"xyz")[..5], &mut out).unwrap();
        assert_eq!(
            asm.eof_error().unwrap(),
            "truncated frame payload (1 of 3 bytes)"
        );
    }

    #[test]
    fn wake_flag_consumed_by_wait() {
        let flag = WakeFlag::new();
        flag.wake();
        flag.wait_for(0); // flagged: returns immediately
        let started = std::time::Instant::now();
        flag.wait_for(5_000); // unflagged: must actually park
        assert!(started.elapsed() >= Duration::from_micros(1_000));
    }

    #[test]
    fn outbox_drops_pushes_after_close() {
        let outbox = Outbox::new(Arc::new(WakeFlag::new()));
        let tx = ConnTx::new(Arc::new(Outbox::new(Arc::new(WakeFlag::new()))));
        drop(tx);
        outbox.push(Outgoing::Done);
        assert_eq!(outbox.drain().len(), 1);
        outbox.close();
        outbox.push(Outgoing::Done);
        assert!(outbox.is_empty());
    }
}
