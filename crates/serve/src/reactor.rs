//! The readiness-driven event loop that owns every connection.
//!
//! One thread — the caller of [`run`] — sweeps all sockets with
//! nonblocking accepts, reads and writes; there are no per-connection
//! threads. The workspace forbids `unsafe`, so instead of an OS
//! readiness API the reactor is a sweep loop that parks on a condvar
//! ([`crate::conn::WakeFlag`]) whenever a full pass makes no progress;
//! worker jobs wake it when they queue output, and the park timeout
//! bounds the latency of anything that slips between edges to one tick.
//!
//! Per sweep, each connection gets: its outbox drained (worker events →
//! state transitions), queued frames written as the socket accepts them,
//! bounded reads assembled into frames (unless paused by backpressure or
//! phase), and completed frames dispatched. Compute never happens here —
//! requests are admitted against their shard's budget and submitted to
//! the pool; streams advance one chunk job per client ack.

use std::io;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use mocktails_pool::bounded::SubmitError;

use crate::cache::ShardSlot;
use crate::conn::{Conn, Outgoing, Phase, StreamCtl, WriteOutcome};
use crate::error::{ErrorCode, ServeError};
use crate::protocol::{Request, Response, PROTOCOL_VERSION};
use crate::server::{self, Shared};

/// Connections accepted per sweep before yielding to existing ones.
const ACCEPT_BURST: usize = 64;

/// Park timeout: an upper bound on how stale the reactor can be about
/// anything that did not explicitly wake it.
const PARK_MICROS: u64 = 1_000;

/// Runs the event loop until a `Shutdown` request has been honored and
/// every admitted piece of work has drained.
///
/// # Errors
///
/// Only a listener-level accept failure aborts the loop; per-connection
/// failures are answered on that connection (typed error frame, never a
/// silent drop) and the server keeps serving.
pub(crate) fn run(listener: &TcpListener, shared: &Arc<Shared>) -> Result<(), ServeError> {
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        // Scheduling-dependent by design; see the field's metrics doc.
        shared
            .metrics
            .reactor_wakeups_total
            .fetch_add(1, Ordering::SeqCst);
        let mut progress = false;
        if !shared.shutting_down.load(Ordering::SeqCst) {
            progress |= accept_burst(listener, shared, &mut conns)?;
        }
        let open_conns = conns.len();
        let now = shared.clock.now_micros();
        for conn in &mut conns {
            progress |= sweep_conn(shared, conn, now, open_conns);
        }
        conns.retain_mut(|conn| {
            let drop_now = conn.dead || (conn.closing && conn.writeq.is_empty());
            if drop_now {
                // Orphaned jobs may still hold a ConnTx; their pushes
                // must not accumulate against a gone connection.
                conn.outbox.close();
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            !drop_now
        });
        sync_reactor_gauges(shared, &conns);
        if shared.shutting_down.load(Ordering::SeqCst) && quiesced(shared, &conns) {
            for conn in &conns {
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
            return Ok(());
        }
        if !progress {
            shared.wake.wait_for(PARK_MICROS);
        }
    }
}

/// Accepts up to [`ACCEPT_BURST`] pending connections; over
/// `max_conns`, the newcomer gets a typed `Busy` frame and is closed.
fn accept_burst(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    conns: &mut Vec<Conn>,
) -> Result<bool, ServeError> {
    let mut progressed = false;
    for _ in 0..ACCEPT_BURST {
        match listener.accept() {
            Ok((stream, _peer)) => {
                progressed = true;
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::SeqCst);
                if conns.len() >= shared.config.max_conns {
                    shared
                        .metrics
                        .reactor_conns_rejected_total
                        .fetch_add(1, Ordering::SeqCst);
                    reject_connection(shared, stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                conns.push(Conn::new(
                    stream,
                    shared.config.max_frame_len,
                    Arc::clone(&shared.wake),
                ));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    Ok(progressed)
}

/// Answers an over-capacity connection with `Busy` before closing it —
/// the "typed error, never a silent drop" contract extends to accept.
/// The accepted socket is still blocking (it does not inherit the
/// listener's nonblocking flag), and one small frame fits any fresh
/// socket buffer, so this cannot stall the loop.
fn reject_connection(shared: &Shared, mut stream: TcpStream) {
    server::count_error(shared, ErrorCode::Busy);
    let frame = Response::Error {
        code: ErrorCode::Busy,
        message: format!(
            "connection limit reached (max_conns {}); retry later",
            shared.config.max_conns
        ),
    }
    .encode();
    let _ = crate::frame::write_frame(&mut stream, &frame);
    let _ = stream.shutdown(Shutdown::Both);
}

/// One full pass over one connection. Returns whether anything moved.
fn sweep_conn(shared: &Arc<Shared>, conn: &mut Conn, now: u64, open_conns: usize) -> bool {
    let mut progress = false;
    // lint: allow(L017, Outbox::drain is a nonblocking mem::take behind a brief mutex hop, not a WorkerPool drain)
    for event in conn.outbox.drain() {
        progress = true;
        handle_event(shared, conn, event, now, open_conns);
    }
    match conn.writeq.write_to(&mut conn.stream, &shared.metrics, now) {
        WriteOutcome::Progress => progress = true,
        WriteOutcome::Idle => {}
        WriteOutcome::Closed => {
            conn.dead = true;
            return true;
        }
    }
    if !conn.read_paused() {
        progress |= conn.pump_read();
    }
    progress |= process_inbound(shared, conn, now, open_conns);
    wind_down_broken_stream(shared, conn);
    check_ack_deadline(shared, conn, now);
    settle_idle(shared, conn, now, open_conns);
    progress
}

/// Applies one worker-job event to the connection's state machine.
fn handle_event(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    event: Outgoing,
    now: u64,
    open_conns: usize,
) {
    match event {
        Outgoing::Frame(bytes) => {
            if conn.writeq.push(&bytes, now).is_err() {
                conn.dead = true;
            }
        }
        Outgoing::Done => {
            conn.phase = Phase::Idle;
            conn.shard_slot = None;
            settle_idle(shared, conn, now, open_conns);
        }
        Outgoing::StreamStarted(state) => {
            conn.phase = Phase::Streaming(StreamCtl {
                state,
                job_in_flight: false,
                pending_acks: 0,
                cancel: false,
                awaiting_ack_since: Some(now),
            });
            // An EOF or frame error that landed while the open job ran is
            // applied by wind_down_broken_stream on this same sweep.
        }
        Outgoing::StreamProgress { ended } => {
            if let Phase::Streaming(ctl) = &mut conn.phase {
                ctl.job_in_flight = false;
            } else {
                return;
            }
            if ended {
                conn.phase = Phase::Idle;
                conn.shard_slot = None;
                settle_idle(shared, conn, now, open_conns);
            } else {
                drive_stream(shared, conn);
                if let Phase::Streaming(ctl) = &mut conn.phase {
                    if !ctl.job_in_flight && !ctl.cancel && ctl.awaiting_ack_since.is_none() {
                        ctl.awaiting_ack_since = Some(now);
                    }
                }
            }
        }
    }
}

/// If the connection's stream owes work and has no job in flight,
/// submits the next one: a finalize when cancelled, else a chunk per
/// banked ack.
fn drive_stream(shared: &Arc<Shared>, conn: &mut Conn) {
    let tx = conn.tx();
    let mut submit_failed = false;
    if let Phase::Streaming(ctl) = &mut conn.phase {
        if ctl.job_in_flight {
            return;
        }
        if ctl.cancel {
            ctl.job_in_flight = true;
            let state = Arc::clone(&ctl.state);
            submit_failed = server::submit_stream_job(shared, tx, move |shared, tx| {
                server::synth_finalize_job(shared, tx, &state);
            })
            .is_err();
        } else if ctl.pending_acks > 0 {
            ctl.pending_acks -= 1;
            ctl.awaiting_ack_since = None;
            ctl.job_in_flight = true;
            let state = Arc::clone(&ctl.state);
            submit_failed = server::submit_stream_job(shared, tx, move |shared, tx| {
                server::synth_chunk_job(shared, tx, &state);
            })
            .is_err();
        }
    }
    // Continuations are only refused by pool drain, which cannot happen
    // while the reactor runs; defensively treat it as a dead connection.
    if submit_failed {
        conn.dead = true;
    }
}

/// A stream whose client vanished (EOF) or lost frame sync winds down
/// through a finalize job, releasing its shard budget cleanly.
fn wind_down_broken_stream(shared: &Arc<Shared>, conn: &mut Conn) {
    if !conn.read_eof && conn.frame_error.is_none() {
        return;
    }
    let mut newly_cancelled = false;
    if let Phase::Streaming(ctl) = &mut conn.phase {
        if !ctl.cancel {
            ctl.cancel = true;
            ctl.awaiting_ack_since = None;
            newly_cancelled = true;
        }
    }
    if newly_cancelled {
        drive_stream(shared, conn);
    }
}

/// A stream waiting on the client's ack past the deadline is dropped
/// with a typed error; the connection itself stays usable.
fn check_ack_deadline(shared: &Arc<Shared>, conn: &mut Conn, now: u64) {
    let deadline = shared.config.deadline_micros;
    let expired = match &conn.phase {
        Phase::Streaming(ctl) => {
            !ctl.job_in_flight
                && !ctl.cancel
                && ctl
                    .awaiting_ack_since
                    .is_some_and(|since| now.saturating_sub(since) > deadline)
        }
        _ => false,
    };
    if expired {
        queue_error(
            shared,
            conn,
            ErrorCode::DeadlineExceeded,
            format!("no ack within {deadline} µs"),
            now,
        );
        conn.phase = Phase::Idle;
        conn.shard_slot = None;
    }
}

/// Deferred work once the connection is out of `Job`/`Streaming`: a
/// parked request, then a parked close error (framing errors report only
/// after every earlier frame was served), then a clean EOF close.
fn settle_idle(shared: &Arc<Shared>, conn: &mut Conn, now: u64, open_conns: usize) {
    if conn.closing || conn.dead {
        return;
    }
    if matches!(conn.phase, Phase::Job | Phase::Streaming(_)) {
        return;
    }
    if let Some(request) = conn.pending.take() {
        route_request(shared, conn, request, now, open_conns);
        return;
    }
    if conn.close_error.is_none() && conn.inbound.is_empty() {
        if let Some(msg) = conn.frame_error.take() {
            let code = if msg.contains("exceeds maximum") {
                ErrorCode::LimitExceeded
            } else {
                ErrorCode::Malformed
            };
            conn.close_error = Some((code, msg));
        }
    }
    if let Some((code, message)) = conn.close_error.take() {
        queue_error(shared, conn, code, message, now);
        conn.closing = true;
        return;
    }
    if conn.read_eof && conn.inbound.is_empty() {
        conn.closing = true;
    }
}

/// Dispatches completed inbound frames as the current phase allows.
fn process_inbound(shared: &Arc<Shared>, conn: &mut Conn, now: u64, open_conns: usize) -> bool {
    let mut progress = false;
    loop {
        if conn.closing
            || conn.dead
            || conn.close_error.is_some()
            || conn.pending.is_some()
            || matches!(conn.phase, Phase::Job)
        {
            break;
        }
        let Some(payload) = conn.inbound.pop_front() else {
            break;
        };
        progress = true;
        if matches!(conn.phase, Phase::Handshake) {
            handle_handshake(shared, conn, &payload, now);
            continue;
        }
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary held, so the connection is still in
                // sync; report and keep serving.
                queue_error(shared, conn, ErrorCode::Malformed, e.to_string(), now);
                continue;
            }
        };
        if matches!(conn.phase, Phase::Streaming(_)) {
            handle_streaming_request(shared, conn, request, now);
            continue;
        }
        match request {
            Request::Ack => queue_error(
                shared,
                conn,
                ErrorCode::Malformed,
                "ack with no stream in progress".into(),
                now,
            ),
            Request::Cancel => queue_error(
                shared,
                conn,
                ErrorCode::Malformed,
                "cancel with no stream in progress".into(),
                now,
            ),
            other => route_request(shared, conn, other, now, open_conns),
        }
    }
    progress
}

/// The first frame on a connection must be a version-compatible Hello.
fn handle_handshake(shared: &Arc<Shared>, conn: &mut Conn, payload: &[u8], now: u64) {
    match Request::decode(payload) {
        Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
            queue_response(
                conn,
                &Response::HelloOk {
                    version: PROTOCOL_VERSION,
                },
                now,
            );
            conn.phase = Phase::Idle;
        }
        Ok(Request::Hello { version }) => {
            queue_error(
                shared,
                conn,
                ErrorCode::UnsupportedVersion,
                format!(
                    "protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"
                ),
                now,
            );
            conn.closing = true;
        }
        Ok(other) => {
            queue_error(
                shared,
                conn,
                ErrorCode::Malformed,
                format!("expected hello, got {other:?}"),
                now,
            );
            conn.closing = true;
        }
        Err(e) => {
            queue_error(shared, conn, ErrorCode::Malformed, e.to_string(), now);
            conn.closing = true;
        }
    }
}

/// Stream-phase dispatch: acks advance the stream, cancel winds it
/// down, and any other request supersedes it (cancel, park, dispatch
/// after the finalize lands) — the same contract the threaded server
/// kept.
fn handle_streaming_request(shared: &Arc<Shared>, conn: &mut Conn, request: Request, now: u64) {
    match request {
        Request::Ack => {
            if let Phase::Streaming(ctl) = &mut conn.phase {
                if !ctl.cancel {
                    ctl.pending_acks += 1;
                    ctl.awaiting_ack_since = None;
                }
            }
            drive_stream(shared, conn);
        }
        Request::Cancel => {
            if let Phase::Streaming(ctl) = &mut conn.phase {
                ctl.cancel = true;
                ctl.awaiting_ack_since = None;
            }
            drive_stream(shared, conn);
        }
        other => {
            if let Phase::Streaming(ctl) = &mut conn.phase {
                ctl.cancel = true;
                ctl.awaiting_ack_since = None;
            }
            conn.pending = Some(other);
            drive_stream(shared, conn);
        }
    }
    let _ = now;
}

/// Routes one idle-phase request (also used for requests parked behind a
/// superseded stream).
fn route_request(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    request: Request,
    now: u64,
    open_conns: usize,
) {
    let metrics = &shared.metrics;
    metrics.requests_total.fetch_add(1, Ordering::SeqCst);
    match request {
        Request::Hello { .. } => {
            queue_error(
                shared,
                conn,
                ErrorCode::Malformed,
                "duplicate hello".into(),
                now,
            );
        }
        Request::Metricsz => {
            metrics
                .metricsz_requests_total
                .fetch_add(1, Ordering::SeqCst);
            // Rendering is cheap string formatting; the sweep-maintained
            // gauges are refreshed so the text is current as of this
            // request.
            metrics
                .reactor_open_conns
                .store(open_conns as u64, Ordering::SeqCst);
            metrics
                .pool_queue_depth
                .store(shared.pool.queued() as u64, Ordering::SeqCst);
            metrics
                .shard_inflight
                .store(shared.admission.total_inflight(), Ordering::SeqCst);
            let text = metrics.render(shared.clock.now_micros());
            queue_response(conn, &Response::MetricsText { text }, now);
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            queue_response(conn, &Response::ShutdownOk, now);
        }
        Request::Compact => {
            if reject_if_draining(shared, conn, now) {
                return;
            }
            // Off the event thread: a checkpoint fsyncs. No admission
            // slot — compaction is store-wide, not keyed to a shard.
            submit_one_shot(shared, conn, now, None, server::compact_job);
        }
        Request::FitProfile {
            cycles,
            clusters,
            trace_bytes,
        } => {
            if reject_if_draining(shared, conn, now) {
                return;
            }
            let key = Shared::upload_admission_key(&trace_bytes);
            let Some(slot) = try_admit(shared, conn, key, now) else {
                return;
            };
            submit_one_shot(shared, conn, now, Some(slot), move |shared, tx| {
                server::fit_job(shared, tx, cycles, clusters, &trace_bytes);
            });
        }
        Request::Synthesize {
            seed,
            chunk_len,
            source,
        } => {
            if reject_if_draining(shared, conn, now) {
                return;
            }
            let key = shared.admission_key(&source);
            let Some(slot) = try_admit(shared, conn, key, now) else {
                return;
            };
            submit_one_shot(shared, conn, now, Some(slot), move |shared, tx| {
                server::synth_open_job(shared, tx, seed, chunk_len, &source);
            });
        }
        Request::CoupledSynthesize {
            seed,
            chunk_len,
            source,
        } => {
            if reject_if_draining(shared, conn, now) {
                return;
            }
            let key = shared.admission_key(&source);
            let Some(slot) = try_admit(shared, conn, key, now) else {
                return;
            };
            submit_one_shot(shared, conn, now, Some(slot), move |shared, tx| {
                server::coupled_open_job(shared, tx, seed, chunk_len, &source);
            });
        }
        Request::Stats { source } => {
            if reject_if_draining(shared, conn, now) {
                return;
            }
            let key = shared.admission_key(&source);
            let Some(slot) = try_admit(shared, conn, key, now) else {
                return;
            };
            submit_one_shot(shared, conn, now, Some(slot), move |shared, tx| {
                server::stats_job(shared, tx, &source);
            });
        }
        Request::Ack | Request::Cancel => unreachable!("handled by process_inbound"), // lint: allow(L001, L016, stream-control frames are routed before route_request)
    }
}

/// During drain, every new compute request is answered `ShuttingDown`.
fn reject_if_draining(shared: &Arc<Shared>, conn: &mut Conn, now: u64) -> bool {
    if shared.shutting_down.load(Ordering::SeqCst) {
        queue_error(
            shared,
            conn,
            ErrorCode::ShuttingDown,
            "server is draining".into(),
            now,
        );
        return true;
    }
    false
}

/// Takes a slot from the request's shard budget, or sheds with `Busy`.
fn try_admit(shared: &Arc<Shared>, conn: &mut Conn, key: u64, now: u64) -> Option<ShardSlot> {
    match shared.admission.try_acquire(key) {
        Some(slot) => Some(slot),
        None => {
            shared
                .metrics
                .shard_shed_total
                .fetch_add(1, Ordering::SeqCst);
            let shard = shared.admission.shard_of(key);
            queue_error(
                shared,
                conn,
                ErrorCode::Busy,
                format!(
                    "shard {shard} at budget ({} in flight); retry later",
                    shared.config.shard_budget
                ),
                now,
            );
            None
        }
    }
}

/// Submits a one-shot request job; on success the connection enters
/// `Job` (holding `slot` until `Done`), on refusal the slot releases by
/// drop and the client gets the typed refusal.
fn submit_one_shot<F>(
    shared: &Arc<Shared>,
    conn: &mut Conn,
    now: u64,
    slot: Option<ShardSlot>,
    job: F,
) where
    F: FnOnce(&Shared, &crate::conn::ConnTx) + Send + 'static,
{
    let tx = conn.tx();
    match server::submit_request_job(shared, tx, job) {
        Ok(()) => {
            conn.phase = Phase::Job;
            conn.shard_slot = slot;
        }
        Err(SubmitError::QueueFull { cap }) => {
            queue_error(
                shared,
                conn,
                ErrorCode::Busy,
                format!("worker queue full (cap {cap}); retry later"),
                now,
            );
        }
        Err(SubmitError::ShuttingDown) => {
            queue_error(
                shared,
                conn,
                ErrorCode::ShuttingDown,
                "server is draining".into(),
                now,
            );
        }
    }
}

/// Queues a response frame on the connection's write queue.
fn queue_response(conn: &mut Conn, response: &Response, now: u64) {
    if conn.writeq.push(&response.encode(), now).is_err() {
        conn.dead = true;
    }
}

/// Queues a typed error frame, counted exactly like worker-side errors.
fn queue_error(shared: &Shared, conn: &mut Conn, code: ErrorCode, message: String, now: u64) {
    server::count_error(shared, code);
    queue_response(conn, &Response::Error { code, message }, now);
}

/// Refreshes the gauges the sweep maintains.
fn sync_reactor_gauges(shared: &Shared, conns: &[Conn]) {
    let frames: usize = conns.iter().map(|conn| conn.writeq.frames()).sum();
    shared
        .metrics
        .reactor_open_conns
        .store(conns.len() as u64, Ordering::SeqCst);
    shared
        .metrics
        .reactor_write_queue_frames
        .store(frames as u64, Ordering::SeqCst);
}

/// Whether a draining server has nothing left to do: no job outstanding
/// (a finished job's outbox events are visible before its in-flight
/// count drops, so checking the pool first is safe) and every connection
/// fully flushed and out of any request.
fn quiesced(shared: &Shared, conns: &[Conn]) -> bool {
    if shared.pool.outstanding() > 0 {
        return false;
    }
    conns.iter().all(|conn| {
        matches!(conn.phase, Phase::Handshake | Phase::Idle)
            && conn.pending.is_none()
            && conn.close_error.is_none()
            && conn.writeq.is_empty()
            && conn.outbox.is_empty()
    })
}
