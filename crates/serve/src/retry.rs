//! Jittered exponential backoff for `Busy` rejections.
//!
//! The server sheds load with typed `Busy` frames rather than queueing
//! unboundedly (PR 4). A polite client retries those — but naive
//! fixed-delay retries from many clients synchronize into thundering
//! herds that re-saturate the queue at the same instant. The standard
//! fix is exponential backoff with *half-to-full jitter*: attempt `n`
//! sleeps a uniform draw from `[cap/2, cap)` where
//! `cap = base * 2^n` (clamped to a maximum), which decorrelates
//! clients while keeping a deterministic, seedable schedule for tests.
//!
//! The sleep itself is injected as a closure so unit tests record the
//! schedule instead of actually waiting, and the jitter stream is the
//! workspace [`Prng`] — the same seed always produces the same delays.

use mocktails_trace::rng::{Prng, Rng};

/// Backoff schedule for retrying `Busy` rejections.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay cap for the first retry, in microseconds; doubles per
    /// attempt. Must be at least 2 (asserted) so the jitter window
    /// `[cap/2, cap)` is non-empty.
    pub base_delay_micros: u64,
    /// Upper clamp on the delay cap, in microseconds.
    pub max_delay_micros: u64,
    /// Retries after the initial attempt; `0` disables retrying.
    pub max_retries: u32,
    /// Seed for the jitter stream. Two clients with different seeds
    /// draw decorrelated schedules; the same seed replays identically.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_delay_micros: 2_000,
            max_delay_micros: 500_000,
            max_retries: 6,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The full delay schedule this policy would sleep through if every
    /// attempt came back `Busy`: one entry per retry, half-to-full
    /// jittered, deterministic in `jitter_seed`.
    pub fn schedule(&self) -> Vec<u64> {
        let mut rng = Prng::seed_from_u64(self.jitter_seed);
        (0..self.max_retries)
            .map(|attempt| self.delay_for(attempt, &mut rng))
            .collect()
    }

    /// Draws the jittered delay for 0-based retry `attempt`.
    fn delay_for(&self, attempt: u32, rng: &mut Prng) -> u64 {
        assert!(self.base_delay_micros >= 2, "jitter window would be empty");
        let cap = self
            .base_delay_micros
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_micros.max(self.base_delay_micros));
        rng.gen_range(cap / 2..cap)
    }
}

/// Runs `operation` under `policy`, sleeping via `sleep_micros` between
/// `Busy` rejections. Any other outcome — success or a different error —
/// is returned immediately; retries never mask real failures.
///
/// # Errors
///
/// The final `Busy` error once retries are exhausted, or the first
/// non-`Busy` error.
pub fn retry_busy<T, F, S>(
    policy: &RetryPolicy,
    mut sleep_micros: S,
    mut operation: F,
) -> Result<T, crate::ServeError>
where
    F: FnMut() -> Result<T, crate::ServeError>,
    S: FnMut(u64),
{
    let mut rng = Prng::seed_from_u64(policy.jitter_seed);
    let mut attempt = 0u32;
    loop {
        match operation() {
            Err(crate::ServeError::Remote { code, .. })
                if code == crate::ErrorCode::Busy && attempt < policy.max_retries =>
            {
                sleep_micros(policy.delay_for(attempt, &mut rng));
                attempt += 1;
            }
            other => return other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ErrorCode, ServeError};

    fn busy() -> ServeError {
        ServeError::Remote {
            code: ErrorCode::Busy,
            message: "queue full".into(),
        }
    }

    #[test]
    fn schedule_is_deterministic_and_half_to_full_jittered() {
        let policy = RetryPolicy {
            base_delay_micros: 1_000,
            max_delay_micros: 8_000,
            max_retries: 6,
            jitter_seed: 7,
        };
        let schedule = policy.schedule();
        assert_eq!(schedule, policy.schedule(), "same seed, same delays");
        assert_eq!(schedule.len(), 6);
        // Caps double then clamp: 1000, 2000, 4000, 8000, 8000, 8000.
        for (i, (&delay, cap)) in schedule
            .iter()
            .zip([1_000u64, 2_000, 4_000, 8_000, 8_000, 8_000])
            .enumerate()
        {
            assert!(
                (cap / 2..cap).contains(&delay),
                "retry {i}: {delay} outside [{}, {cap})",
                cap / 2
            );
        }
        let other = RetryPolicy {
            jitter_seed: 8,
            ..policy
        };
        assert_ne!(schedule, other.schedule(), "seeds decorrelate clients");
    }

    /// Golden schedule: the exact microsecond delays for two fixed
    /// policies. Any change to the PRNG, the draw order, or the window
    /// arithmetic shows up here as a literal diff — the contract is that
    /// recorded experiments replay the same backoff forever.
    #[test]
    fn golden_schedules_are_pinned_to_the_exact_delays() {
        let policy = RetryPolicy {
            base_delay_micros: 2_000,
            max_delay_micros: 500_000,
            max_retries: 8,
            jitter_seed: 0xc0ffee,
        };
        assert_eq!(
            policy.schedule(),
            [1_070, 3_121, 7_759, 10_523, 31_461, 41_848, 84_823, 253_898],
        );

        // A tight cap: windows clamp to [200, 400) from retry 2 onward,
        // but the draws keep advancing the jitter stream, so the capped
        // tail still varies draw to draw.
        let capped = RetryPolicy {
            base_delay_micros: 100,
            max_delay_micros: 400,
            max_retries: 6,
            jitter_seed: 1,
        };
        let schedule = capped.schedule();
        assert_eq!(schedule, [85, 152, 314, 278, 339, 228]);
        for &delay in &schedule[2..] {
            assert!(
                (200..400).contains(&delay),
                "capped draws must stay in [cap/2, cap): {delay}"
            );
        }
    }

    /// `retry_busy` must consume the same jitter stream `schedule()`
    /// describes: the sleeps a retrying call records are a prefix of the
    /// pinned schedule, and only `Busy` consumes a draw.
    #[test]
    fn injected_sleeps_replay_the_pinned_schedule_prefix() {
        let policy = RetryPolicy {
            base_delay_micros: 2_000,
            max_delay_micros: 500_000,
            max_retries: 8,
            jitter_seed: 0xc0ffee,
        };
        let mut sleeps = Vec::new();
        let mut calls = 0;
        let result = retry_busy(
            &policy,
            |micros| sleeps.push(micros),
            || {
                calls += 1;
                if calls <= 3 {
                    Err(busy())
                } else {
                    Ok("served")
                }
            },
        )
        .unwrap();
        assert_eq!(result, "served");
        assert_eq!(sleeps, [1_070, 3_121, 7_759], "golden prefix, in order");
    }

    #[test]
    fn retries_busy_until_success_recording_the_sleeps() {
        let policy = RetryPolicy {
            jitter_seed: 42,
            ..RetryPolicy::default()
        };
        let mut sleeps = Vec::new();
        let mut calls = 0;
        let result = retry_busy(
            &policy,
            |micros| sleeps.push(micros),
            || {
                calls += 1;
                if calls < 4 {
                    Err(busy())
                } else {
                    Ok(calls)
                }
            },
        )
        .unwrap();
        assert_eq!(result, 4);
        assert_eq!(sleeps, policy.schedule()[..3], "slept the exact schedule");
    }

    #[test]
    fn non_busy_errors_pass_through_without_sleeping() {
        let mut sleeps = Vec::new();
        let err = retry_busy(
            &RetryPolicy::default(),
            |micros| sleeps.push(micros),
            || -> Result<(), _> { Err(ServeError::Protocol("bad frame".into())) },
        )
        .unwrap_err();
        assert!(matches!(err, ServeError::Protocol(_)));
        assert!(sleeps.is_empty(), "no backoff for non-Busy failures");
    }

    #[test]
    fn exhausted_retries_surface_the_final_busy() {
        let policy = RetryPolicy {
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let mut sleeps = Vec::new();
        let mut calls = 0u32;
        let err = retry_busy(
            &policy,
            |micros| sleeps.push(micros),
            || -> Result<(), _> {
                calls += 1;
                Err(busy())
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ServeError::Remote {
                code: ErrorCode::Busy,
                ..
            }
        ));
        assert_eq!(calls, 4, "initial attempt plus three retries");
        assert_eq!(sleeps.len(), 3);
    }
}
