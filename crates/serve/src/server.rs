//! The streaming synthesis server.
//!
//! One readiness-driven reactor thread owns every connection (see
//! [`crate::reactor`]): nonblocking accept, read, frame reassembly and
//! write backpressure all happen there, and no socket is ever touched by
//! more than one thread. Compute — fit, synthesize, stats, compact —
//! runs on a bounded [`WorkerPool`]; jobs hand their responses back
//! through a per-connection outbox ([`crate::conn::ConnTx`]) and the
//! reactor writes them out. A streaming synthesis never pins a worker:
//! each client ack schedules one short chunk job against the stream's
//! parked [`crate::conn::SynthState`], so thousands of concurrent
//! streams need only as many workers as there are chunks in flight.
//!
//! Admission is sharded: the profile cache is a [`ShardedCache`] keyed
//! by content fingerprint, and each shard has a bounded in-flight budget
//! ([`ServerConfig::shard_budget`]). A request for a shard at budget is
//! shed with a typed `Busy` frame the client retries with backoff.
//! Every failure path still answers with a typed error frame before the
//! connection is ever closed.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use mocktails_core::{
    fit_key, HierarchyConfig, InjectionFeedback, LayerSpec, Profile, ProfileError,
};
use mocktails_dram::{DramConfig, MemorySystem};
use mocktails_pool::bounded::{SubmitError, WorkerPool};
use mocktails_pool::Parallelism;
use mocktails_sample::{sampled_fit, SampleConfig};
use mocktails_store::{ProfileStore, StoreOptions};
use mocktails_trace::codec::RecordEncoder;
use mocktails_trace::{fnv1a, DecodeOptions, Fingerprinter, TraceError};

use crate::cache::{ShardAdmission, ShardedCache};
use crate::conn::{ConnTx, Coupling, SynthState, WakeFlag};
use crate::error::{ErrorCode, ServeError};
use crate::metrics::{Clock, ServeMetrics};
use crate::protocol::{ProfileSource, Response};

/// Bytes of an upload hashed for *admission routing* (which shard's
/// budget a fit consumes). The true fit key still hashes the whole
/// trace — in a worker, never on the reactor thread.
const ADMISSION_HASH_PREFIX: usize = 4096;

/// Why a [`ServerConfig`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerConfigError {
    /// `workers` was 0; the pool needs at least one thread.
    ZeroWorkers,
    /// `shards` was 0; the cache needs at least one shard.
    ZeroShards,
    /// `max_conns` was 0; the server could accept nothing.
    ZeroMaxConns,
    /// `shard_budget` was 0; every request would be shed.
    ZeroShardBudget,
    /// `deadline_micros` was 0; every queued request would miss it.
    ZeroDeadline,
    /// `max_frame_len` is below the smallest useful frame.
    FrameLimitTooSmall {
        /// The minimum accepted value.
        min: usize,
    },
}

impl std::fmt::Display for ServerConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroWorkers => write!(f, "workers must be at least 1"),
            Self::ZeroShards => write!(f, "shards must be at least 1"),
            Self::ZeroMaxConns => write!(f, "max_conns must be at least 1"),
            Self::ZeroShardBudget => write!(f, "shard_budget must be at least 1"),
            Self::ZeroDeadline => write!(f, "deadline_micros must be positive"),
            Self::FrameLimitTooSmall { min } => {
                write!(f, "max_frame_len must be at least {min} bytes")
            }
        }
    }
}

impl std::error::Error for ServerConfigError {}

/// Tuning knobs for [`Server`].
///
/// Construct through [`ServerConfig::builder`], which validates on
/// `build()`. Plain struct-literal construction (the pre-0.4 path) still
/// works and is validated by [`Server::bind`], but is deprecated in
/// favor of the builder and may lose field-level access in a future
/// breaking release.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Worker threads executing compute requests.
    pub workers: usize,
    /// Jobs admitted beyond the running ones; over-cap submissions get a
    /// `Busy` error frame (see [`WorkerPool`]).
    pub queue_cap: usize,
    /// Profiles the cache retains across all shards (LRU per shard
    /// beyond `cache_capacity / shards`).
    pub cache_capacity: usize,
    /// Cache entry lifetime in microseconds (0 = never expires).
    pub cache_ttl_micros: u64,
    /// Maximum accepted frame payload length in bytes.
    pub max_frame_len: usize,
    /// Per-request deadline in microseconds: bounds the queue wait and
    /// each backpressure (ack) wait of a streaming response.
    pub deadline_micros: u64,
    /// Decode hardening applied to uploaded traces and profiles.
    pub decode: DecodeOptions,
    /// Directory of the crash-recoverable profile store; `None` runs
    /// memory-only. With a store, every fitted profile is appended to
    /// its write-ahead log *before* the `FitResult` ack, and a restart
    /// warms the cache from the recovered state.
    pub store_dir: Option<PathBuf>,
    /// Cache/admission shards; requests route by content fingerprint.
    pub shards: usize,
    /// Connections the reactor will hold open at once; excess accepts
    /// are answered with a `Busy` frame and closed.
    pub max_conns: usize,
    /// In-flight requests (including open streams) one shard admits
    /// before shedding with `Busy`.
    pub shard_budget: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 16,
            cache_capacity: 64,
            cache_ttl_micros: 0,
            max_frame_len: 64 << 20,
            deadline_micros: 30_000_000,
            decode: DecodeOptions::default(),
            store_dir: None,
            shards: 8,
            max_conns: 1024,
            shard_budget: 32,
        }
    }
}

impl ServerConfig {
    /// A builder starting from [`ServerConfig::default`], in the style
    /// of `HierarchyConfig::builder()`.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }

    /// Checks the knobs for values the server cannot run with.
    ///
    /// # Errors
    ///
    /// The first [`ServerConfigError`] found, in field order.
    pub fn validate(&self) -> Result<(), ServerConfigError> {
        if self.workers == 0 {
            return Err(ServerConfigError::ZeroWorkers);
        }
        if self.shards == 0 {
            return Err(ServerConfigError::ZeroShards);
        }
        if self.max_conns == 0 {
            return Err(ServerConfigError::ZeroMaxConns);
        }
        if self.shard_budget == 0 {
            return Err(ServerConfigError::ZeroShardBudget);
        }
        if self.deadline_micros == 0 {
            return Err(ServerConfigError::ZeroDeadline);
        }
        if self.max_frame_len < 1024 {
            return Err(ServerConfigError::FrameLimitTooSmall { min: 1024 });
        }
        Ok(())
    }
}

/// Builds a validated [`ServerConfig`]; see [`ServerConfig::builder`].
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads executing compute requests.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Jobs admitted beyond the running ones.
    #[must_use]
    pub fn queue_cap(mut self, queue_cap: usize) -> Self {
        self.config.queue_cap = queue_cap;
        self
    }

    /// Profiles the cache retains across all shards.
    #[must_use]
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.config.cache_capacity = cache_capacity;
        self
    }

    /// Cache entry lifetime in microseconds (0 = never expires).
    #[must_use]
    pub fn cache_ttl_micros(mut self, cache_ttl_micros: u64) -> Self {
        self.config.cache_ttl_micros = cache_ttl_micros;
        self
    }

    /// Maximum accepted frame payload length in bytes.
    #[must_use]
    pub fn max_frame_len(mut self, max_frame_len: usize) -> Self {
        self.config.max_frame_len = max_frame_len;
        self
    }

    /// Per-request deadline in microseconds.
    #[must_use]
    pub fn deadline_micros(mut self, deadline_micros: u64) -> Self {
        self.config.deadline_micros = deadline_micros;
        self
    }

    /// Decode hardening applied to uploaded traces and profiles.
    #[must_use]
    pub fn decode(mut self, decode: DecodeOptions) -> Self {
        self.config.decode = decode;
        self
    }

    /// Directory of the crash-recoverable profile store.
    #[must_use]
    pub fn store_dir(mut self, store_dir: impl Into<PathBuf>) -> Self {
        self.config.store_dir = Some(store_dir.into());
        self
    }

    /// Cache/admission shards.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shards = shards;
        self
    }

    /// Connections the reactor will hold open at once.
    #[must_use]
    pub fn max_conns(mut self, max_conns: usize) -> Self {
        self.config.max_conns = max_conns;
        self
    }

    /// In-flight requests one shard admits before shedding.
    #[must_use]
    pub fn shard_budget(mut self, shard_budget: usize) -> Self {
        self.config.shard_budget = shard_budget;
        self
    }

    /// Validates and returns the config.
    ///
    /// # Errors
    ///
    /// See [`ServerConfig::validate`].
    pub fn build(self) -> Result<ServerConfig, ServerConfigError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// State shared by the reactor and worker jobs.
pub(crate) struct Shared {
    pub(crate) config: ServerConfig,
    pub(crate) cache: ShardedCache,
    pub(crate) metrics: Arc<ServeMetrics>,
    pub(crate) pool: WorkerPool,
    pub(crate) clock: Arc<dyn Clock>,
    /// The durable tier behind the cache, if configured. Its mutex is
    /// never held together with a cache shard's: fit persistence
    /// releases the cache shard, then locks the store.
    pub(crate) store: Option<Mutex<ProfileStore>>,
    pub(crate) shutting_down: AtomicBool,
    pub(crate) addr: SocketAddr,
    /// The reactor's park/wake condvar; worker jobs wake it through
    /// their outbox pushes and once more when they finish.
    pub(crate) wake: Arc<WakeFlag>,
    /// Per-shard in-flight budgets.
    pub(crate) admission: ShardAdmission,
}

impl Shared {
    /// Mirrors the cache's aggregate tallies into the metric registry.
    pub(crate) fn sync_cache_metrics(&self) {
        let stats = self.cache.stats();
        let m = &self.metrics;
        m.cache_entries.store(stats.entries, Ordering::SeqCst);
        m.cache_evictions_total
            .store(stats.evictions, Ordering::SeqCst);
        m.cache_expirations_total
            .store(stats.expirations, Ordering::SeqCst);
    }

    /// Mirrors the store's size gauges into the metric registry.
    pub(crate) fn sync_store_metrics(&self, store: &ProfileStore) {
        let m = &self.metrics;
        m.store_profiles.store(store.len() as u64, Ordering::SeqCst);
        m.store_wal_bytes.store(store.wal_bytes(), Ordering::SeqCst);
    }

    /// The shard-admission routing key for a request: which shard's
    /// budget it consumes. Fingerprint sources route exactly like the
    /// cache; uploads hash a bounded prefix (cheap enough for the
    /// reactor thread — the real content hash happens in a worker).
    pub(crate) fn admission_key(&self, source: &ProfileSource) -> u64 {
        match source {
            ProfileSource::Fingerprint(fp) => *fp,
            ProfileSource::Inline(bytes) => Self::upload_admission_key(bytes),
        }
    }

    /// Admission key for raw uploaded bytes (trace or profile).
    pub(crate) fn upload_admission_key(bytes: &[u8]) -> u64 {
        fnv1a(&bytes[..bytes.len().min(ADMISSION_HASH_PREFIX)])
    }
}

/// The server: a bound listener plus everything requests share.
///
/// [`Server::bind`] then [`Server::run`]; `run` returns after a
/// `Shutdown` frame has been honored — in-flight requests drained,
/// mid-stream clients given their clean end-of-stream frames — so the
/// caller can flush final metrics and exit 0.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.shared.config.workers)
            .field("shards", &self.shared.config.shards)
            .finish()
    }
}

/// The hierarchy every server-side fit uses: the paper's 2L-TS shape with
/// a caller-chosen temporal window — identical to the CLI's offline
/// `profile` command, so server and offline outputs byte-compare equal.
fn fit_config(cycles: u64) -> Result<HierarchyConfig, String> {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(cycles))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .map_err(|e| e.to_string())
}

/// Opens (recovering) the profile store and records what recovery did in
/// the metric registry.
fn shared_store_open(
    dir: &std::path::Path,
    config: &ServerConfig,
    clock: &dyn Clock,
    metrics: &ServeMetrics,
) -> Result<ProfileStore, ServeError> {
    let options = StoreOptions {
        decode: config.decode,
        ..StoreOptions::default()
    };
    let started = clock.now_micros();
    let store = ProfileStore::open_with(dir, options)?;
    let replay = clock.now_micros().saturating_sub(started);
    let report = *store.recovery();
    metrics.store_replay_micros.store(replay, Ordering::SeqCst);
    metrics.store_recovered_profiles_total.fetch_add(
        (report.checkpoint_profiles + report.wal_records_replayed) as u64,
        Ordering::SeqCst,
    );
    if report.wal_records_replayed > 0 || report.wal_bytes_truncated > 0 || report.wal_reset {
        metrics
            .store_recoveries_total
            .fetch_add(1, Ordering::SeqCst);
    }
    Ok(store)
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the worker pool, sharded cache and metrics registry.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for an invalid `config`; otherwise the
    /// bind or store-recovery failure.
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let cache = ShardedCache::new(
            config.shards,
            config.cache_capacity,
            config.cache_ttl_micros,
        );

        // Cold start: recover the persistent store and warm the cache
        // from it, so a restarted server answers fits it already paid for.
        let store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let opened = shared_store_open(dir, &config, clock.as_ref(), &metrics)?;
                let now = clock.now_micros();
                for (fingerprint, entry) in opened.iter() {
                    cache.insert(fingerprint, Arc::clone(&entry.profile), entry.fit_key, now);
                }
                metrics
                    .store_profiles
                    .store(opened.len() as u64, Ordering::SeqCst);
                metrics
                    .store_wal_bytes
                    .store(opened.wal_bytes(), Ordering::SeqCst);
                Some(Mutex::new(opened))
            }
        };
        metrics
            .cache_entries
            .store(cache.len() as u64, Ordering::SeqCst);
        metrics
            .store_last_checkpoint_micros
            .store(clock.now_micros(), Ordering::SeqCst);
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.workers, config.queue_cap),
            admission: ShardAdmission::new(config.shards, config.shard_budget),
            cache,
            config,
            metrics,
            clock,
            store,
            shutting_down: AtomicBool::new(false),
            addr: local,
            wake: Arc::new(WakeFlag::new()),
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live metric registry (shared with all request handlers).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Serves until a `Shutdown` frame arrives, then drains: stops
    /// accepting, completes in-flight work (mid-stream clients get their
    /// `SynthEnd`), closes connections, and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures; per-connection failures are
    /// answered on that connection and never abort the server.
    pub fn run(self) -> Result<(), ServeError> {
        let result = crate::reactor::run(&self.listener, &self.shared);
        // The reactor only exits once no job is outstanding, so this
        // drain is a formality that also flips the pool to rejecting.
        self.shared.pool.drain();
        result
    }
}

/// Queues a typed error frame on `tx`, counting it exactly like the
/// reactor's own error path.
pub(crate) fn send_error_tx(shared: &Shared, tx: &ConnTx, code: ErrorCode, message: String) {
    count_error(shared, code);
    tx.send(&Response::Error { code, message });
}

/// Bumps the error counters for one typed error frame.
pub(crate) fn count_error(shared: &Shared, code: ErrorCode) {
    let m = &shared.metrics;
    m.errors_total.fetch_add(1, Ordering::SeqCst);
    match code {
        ErrorCode::Busy => {
            m.busy_rejections_total.fetch_add(1, Ordering::SeqCst);
        }
        ErrorCode::DeadlineExceeded => {
            m.deadline_exceeded_total.fetch_add(1, Ordering::SeqCst);
        }
        _ => {}
    }
}

/// Submits a request-scoped job: observes its queue wait, enforces the
/// deadline, then runs `job`. The job must finish with `tx.done()` or
/// `tx.stream_started(..)`.
///
/// # Errors
///
/// Pool refusal propagates; the caller answers with `Busy`.
pub(crate) fn submit_request_job<F>(
    shared: &Arc<Shared>,
    tx: ConnTx,
    job: F,
) -> Result<(), SubmitError>
where
    F: FnOnce(&Shared, &ConnTx) + Send + 'static,
{
    let job_shared = Arc::clone(shared);
    let submitted_micros = shared.clock.now_micros();
    shared.pool.submit(move || {
        let waited = job_shared
            .clock
            .now_micros()
            .saturating_sub(submitted_micros);
        job_shared.metrics.queue_wait_micros.observe(waited);
        if waited > job_shared.config.deadline_micros {
            send_error_tx(
                &job_shared,
                &tx,
                ErrorCode::DeadlineExceeded,
                format!(
                    "queued {waited} µs, deadline {} µs",
                    job_shared.config.deadline_micros
                ),
            );
            tx.done();
        } else {
            job(&job_shared, &tx);
        }
        job_shared.wake.wake();
    })
}

/// Submits a continuation of an admitted stream (a chunk or finalize
/// job); bypasses the queue cap so an open stream can never be wedged
/// by fresh load.
///
/// # Errors
///
/// Only pool drain refuses, which cannot happen while the reactor runs.
pub(crate) fn submit_stream_job<F>(
    shared: &Arc<Shared>,
    tx: ConnTx,
    job: F,
) -> Result<(), SubmitError>
where
    F: FnOnce(&Shared, &ConnTx) + Send + 'static,
{
    let job_shared = Arc::clone(shared);
    shared.pool.submit_continuation(move || {
        job(&job_shared, &tx);
        job_shared.wake.wake();
    })
}

/// Maps a trace decode failure onto a wire error code.
fn trace_error_frame(e: &TraceError) -> (ErrorCode, String) {
    match e {
        TraceError::LimitExceeded { .. } => (ErrorCode::LimitExceeded, e.to_string()),
        _ => (ErrorCode::Malformed, format!("trace decode: {e}")),
    }
}

/// Maps a profile decode failure onto a wire error code.
fn profile_error_frame(e: &ProfileError) -> (ErrorCode, String) {
    match e {
        ProfileError::Codec(TraceError::LimitExceeded { .. }) => {
            (ErrorCode::LimitExceeded, e.to_string())
        }
        _ => (ErrorCode::Malformed, format!("profile decode: {e}")),
    }
}

/// Worker-side body of `FitProfile`. `clusters == 0` fits every leaf
/// partition; a positive value runs the sampled-fidelity fit
/// ([`mocktails_sample::sampled_fit`]) with that many clusters.
pub(crate) fn fit_job(
    shared: &Shared,
    tx: &ConnTx,
    cycles: u64,
    clusters: u32,
    trace_bytes: &[u8],
) {
    let metrics = &shared.metrics;
    metrics.fit_requests_total.fetch_add(1, Ordering::SeqCst);
    if clusters > 0 {
        metrics
            .sample_fit_requests_total
            .fetch_add(1, Ordering::SeqCst);
    }
    let started = shared.clock.now_micros();
    let config = match fit_config(cycles) {
        Ok(config) => config,
        Err(msg) => {
            send_error_tx(shared, tx, ErrorCode::Malformed, format!("cycles: {msg}"));
            tx.done();
            return;
        }
    };
    // A sampled fit keys separately from the full fit of the same trace:
    // the cluster count is folded into the fit key so neither aliases
    // the other in the cache or the store.
    let key = fit_key(fnv1a(trace_bytes), &config)
        ^ u64::from(clusters).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let now = shared.clock.now_micros();
    let cached = shared.cache.get_by_fit_key(key, now);
    shared.sync_cache_metrics();
    let (fingerprint, profile, cache_hit) = match cached {
        Some((fingerprint, profile)) => {
            metrics.cache_hits_total.fetch_add(1, Ordering::SeqCst);
            (fingerprint, profile, true)
        }
        None => {
            metrics.cache_misses_total.fetch_add(1, Ordering::SeqCst);
            let trace = match mocktails_trace::codec::read_trace_with(
                &mut { trace_bytes },
                &shared.config.decode,
            ) {
                Ok(trace) => trace,
                Err(e) => {
                    let (code, msg) = trace_error_frame(&e);
                    send_error_tx(shared, tx, code, msg);
                    tx.done();
                    return;
                }
            };
            // Workers fit sequentially: concurrency comes from the pool,
            // and the result is bit-identical either way (PR 3 invariant).
            let profile = if clusters > 0 {
                let fit = sampled_fit(
                    &trace,
                    &config,
                    &SampleConfig {
                        clusters: clusters as usize,
                        seed: 0,
                    },
                    Parallelism::sequential(),
                );
                metrics
                    .sample_clusters_total
                    .fetch_add(fit.report.clusters().len() as u64, Ordering::SeqCst);
                for cluster in fit.report.clusters() {
                    // Per-cluster mean similarity error in parts per
                    // million, so the integer histogram resolves it.
                    metrics
                        .sample_frontier_error_ppm
                        .observe((cluster.mean_error * 1_000_000.0) as u64);
                }
                Arc::new(fit.profile)
            } else {
                Arc::new(Profile::fit_with(
                    &trace,
                    &config,
                    Parallelism::sequential(),
                ))
            };
            let fingerprint = profile.content_fingerprint();
            let now = shared.clock.now_micros();
            shared
                .cache
                .insert(fingerprint, Arc::clone(&profile), Some(key), now);
            shared.sync_cache_metrics();
            (fingerprint, profile, false)
        }
    };
    // Durability before acknowledgement: a freshly fitted record must be
    // in the write-ahead log (fsynced) before the FitResult goes out, so
    // a crash after the ack can always replay it.
    if !cache_hit {
        if let Some(store) = shared.store.as_ref() {
            let persisted = {
                let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
                let result = store.put_profile(&profile, Some(key)); // lint: allow(L013, the WAL append must serialize under the store lock — durability-before-ack is the point)
                if result.is_ok() {
                    shared.sync_store_metrics(&store);
                }
                result
            };
            if let Err(e) = persisted {
                send_error_tx(
                    shared,
                    tx,
                    ErrorCode::Internal,
                    format!("profile store: {e}"),
                );
                tx.done();
                return;
            }
            metrics
                .store_wal_appends_total
                .fetch_add(1, Ordering::SeqCst);
        }
    }
    let mut profile_bytes = Vec::new();
    if let Err(e) = profile.write(&mut profile_bytes) {
        send_error_tx(shared, tx, ErrorCode::Internal, e.to_string());
        tx.done();
        return;
    }
    metrics
        .fit_latency_micros
        .observe(shared.clock.now_micros().saturating_sub(started));
    tx.send(&Response::FitResult {
        fingerprint,
        cache_hit,
        profile_bytes,
    });
    tx.done();
}

/// Resolves a request's profile source against the cache or an inline
/// upload (which is validated, then cached under its content fingerprint
/// so repeats hit).
fn resolve_profile(
    shared: &Shared,
    source: &ProfileSource,
) -> Result<Arc<Profile>, (ErrorCode, String)> {
    match source {
        ProfileSource::Fingerprint(fp) => {
            let now = shared.clock.now_micros();
            let found = shared.cache.get(*fp, now);
            shared.sync_cache_metrics();
            match found {
                Some(profile) => {
                    shared
                        .metrics
                        .cache_hits_total
                        .fetch_add(1, Ordering::SeqCst);
                    Ok(profile)
                }
                None => {
                    shared
                        .metrics
                        .cache_misses_total
                        .fetch_add(1, Ordering::SeqCst);
                    Err((
                        ErrorCode::NotFound,
                        format!("no cached profile with fingerprint {fp:#018x}"),
                    ))
                }
            }
        }
        ProfileSource::Inline(bytes) => {
            let profile = Profile::read(&mut bytes.as_slice(), &shared.config.decode)
                .map_err(|e| profile_error_frame(&e))?;
            let profile = Arc::new(profile);
            let fingerprint = fnv1a(bytes);
            let now = shared.clock.now_micros();
            shared
                .cache
                .insert(fingerprint, Arc::clone(&profile), None, now);
            shared.sync_cache_metrics();
            Ok(profile)
        }
    }
}

/// What one chunk-encode step produced.
enum ChunkStep {
    /// A chunk frame; the stream continues after the client's ack.
    Chunk(Response),
    /// The stream is exhausted: the clean end-of-stream frame.
    End(Response),
    /// Encoding failed; send the typed error and end the stream.
    Failed(ErrorCode, String),
}

/// Encodes the next chunk (or end-of-stream) from a parked synthesis.
/// Pure compute on `state` — callers send the resulting frame *after*
/// releasing the state lock.
///
/// A coupled stream injects every request into its DRAM model as it is
/// synthesized and feeds the stall back into the generator before the
/// next request — the per-request loop of
/// `MemorySystem::run_synthesizer`, one chunk at a time — so the encoded
/// timestamps already carry the simulated-time backpressure.
fn encode_next(shared: &Shared, state: &mut SynthState) -> ChunkStep {
    let metrics = &shared.metrics;
    let mut records = Vec::new();
    let mut count: u32 = 0;
    while count < state.chunk_len {
        let Some(request) = state.synth.next_request() else {
            break;
        };
        if let Some(coupling) = state.coupling.as_mut() {
            let stall = coupling.mem.inject(&request);
            if stall > 0 {
                state.synth.add_delay(stall);
                metrics
                    .coupled_stall_cycles_total
                    .fetch_add(stall, Ordering::SeqCst);
            }
            coupling.simulated_cycles = request.timestamp;
        }
        if let Err(e) = state.encoder.encode(&mut records, &request) {
            state.finished = true;
            return ChunkStep::Failed(ErrorCode::Internal, e.to_string());
        }
        state.fingerprinter.push(&request);
        count += 1;
    }
    if count == 0 {
        state.finished = true;
        metrics.synth_latency_micros.observe(
            shared
                .clock
                .now_micros()
                .saturating_sub(state.started_micros),
        );
        return ChunkStep::End(Response::SynthEnd {
            total_requests: state.fingerprinter.count(),
            fingerprint: state.fingerprinter.digest(),
        });
    }
    metrics
        .streamed_bytes_total
        .fetch_add(records.len() as u64, Ordering::SeqCst);
    metrics
        .streamed_requests_total
        .fetch_add(u64::from(count), Ordering::SeqCst);
    if let Some(coupling) = state.coupling.as_ref() {
        metrics.coupled_chunks_total.fetch_add(1, Ordering::SeqCst);
        metrics
            .coupled_streamed_requests_total
            .fetch_add(u64::from(count), Ordering::SeqCst);
        return ChunkStep::Chunk(Response::CoupledChunk {
            count,
            simulated_cycles: coupling.simulated_cycles,
            stall_cycles: state.synth.accumulated_delay(),
            records,
        });
    }
    ChunkStep::Chunk(Response::SynthChunk { count, records })
}

/// Worker-side opening of `Synthesize`: resolve, validate, `SynthStart`,
/// first chunk. Ends with `stream_started` (stream parked, reactor takes
/// over pacing) or `done` (error, or the stream was empty).
pub(crate) fn synth_open_job(
    shared: &Shared,
    tx: &ConnTx,
    seed: u64,
    chunk_len: u32,
    source: &ProfileSource,
) {
    shared
        .metrics
        .synth_requests_total
        .fetch_add(1, Ordering::SeqCst);
    open_stream_job(shared, tx, seed, chunk_len, source, None);
}

/// Worker-side opening of `CoupledSynthesize`: like [`synth_open_job`]
/// but every chunk is paced against a fresh DRAM model (the paper's
/// Fig. 1 Option B against a live server).
pub(crate) fn coupled_open_job(
    shared: &Shared,
    tx: &ConnTx,
    seed: u64,
    chunk_len: u32,
    source: &ProfileSource,
) {
    shared
        .metrics
        .coupled_requests_total
        .fetch_add(1, Ordering::SeqCst);
    let coupling = Coupling {
        mem: MemorySystem::new(DramConfig::default()),
        simulated_cycles: 0,
    };
    open_stream_job(shared, tx, seed, chunk_len, source, Some(coupling));
}

/// Shared body of the two stream-opening jobs.
fn open_stream_job(
    shared: &Shared,
    tx: &ConnTx,
    seed: u64,
    chunk_len: u32,
    source: &ProfileSource,
    coupling: Option<Coupling>,
) {
    let started = shared.clock.now_micros();
    if chunk_len == 0 {
        send_error_tx(
            shared,
            tx,
            ErrorCode::Malformed,
            "chunk_len must be positive".into(),
        );
        tx.done();
        return;
    }
    let profile = match resolve_profile(shared, source) {
        Ok(profile) => profile,
        Err((code, msg)) => {
            send_error_tx(shared, tx, code, msg);
            tx.done();
            return;
        }
    };
    if let Err(e) = profile.validate() {
        send_error_tx(shared, tx, ErrorCode::Malformed, e.to_string());
        tx.done();
        return;
    }
    let synth = profile.synthesizer(seed);
    tx.send(&Response::SynthStart {
        total_requests: synth.remaining(),
    });
    let mut state = SynthState {
        synth,
        encoder: RecordEncoder::new(),
        fingerprinter: Fingerprinter::new(),
        chunk_len,
        started_micros: started,
        finished: false,
        coupling,
    };
    match encode_next(shared, &mut state) {
        ChunkStep::Chunk(response) => {
            tx.send(&response);
            tx.stream_started(Arc::new(Mutex::new(state)));
        }
        ChunkStep::End(response) => {
            tx.send(&response);
            tx.done();
        }
        ChunkStep::Failed(code, msg) => {
            send_error_tx(shared, tx, code, msg);
            tx.done();
        }
    }
}

/// Worker-side continuation of a stream: one acked chunk.
pub(crate) fn synth_chunk_job(shared: &Shared, tx: &ConnTx, state: &Arc<Mutex<SynthState>>) {
    let step = {
        let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.finished {
            None
        } else {
            // Pure compute under the stream's own lock (no other thread
            // touches this stream while its one job runs); the frame is
            // sent after release.
            Some(encode_next(shared, &mut state)) // lint: allow(L013, the coupled path's MemorySystem::inject is in-memory simulation, not blocking I/O — the stream's lock is held by exactly this one job)
        }
    };
    match step {
        None => tx.stream_progress(true),
        Some(ChunkStep::Chunk(response)) => {
            tx.send(&response);
            tx.stream_progress(false);
        }
        Some(ChunkStep::End(response)) => {
            tx.send(&response);
            tx.stream_progress(true);
        }
        Some(ChunkStep::Failed(code, msg)) => {
            send_error_tx(shared, tx, code, msg);
            tx.stream_progress(true);
        }
    }
}

/// Worker-side finalize of a cancelled (or superseded, or abandoned)
/// stream: the clean `SynthEnd` carrying what was actually sent.
pub(crate) fn synth_finalize_job(shared: &Shared, tx: &ConnTx, state: &Arc<Mutex<SynthState>>) {
    let response = {
        let mut state = state.lock().unwrap_or_else(PoisonError::into_inner);
        if state.finished {
            None
        } else {
            state.finished = true;
            shared.metrics.synth_latency_micros.observe(
                shared
                    .clock
                    .now_micros()
                    .saturating_sub(state.started_micros),
            );
            Some(Response::SynthEnd {
                total_requests: state.fingerprinter.count(),
                fingerprint: state.fingerprinter.digest(),
            })
        }
    };
    if let Some(response) = response {
        tx.send(&response);
    }
    tx.stream_progress(true);
}

/// Worker-side body of `Stats`.
pub(crate) fn stats_job(shared: &Shared, tx: &ConnTx, source: &ProfileSource) {
    shared
        .metrics
        .stats_requests_total
        .fetch_add(1, Ordering::SeqCst);
    let profile = match resolve_profile(shared, source) {
        Ok(profile) => profile,
        Err((code, msg)) => {
            send_error_tx(shared, tx, code, msg);
            tx.done();
            return;
        }
    };
    let summary = profile.summary();
    let text = format!(
        "{summary}\nfingerprint {:#018x}\nmetadata_bytes {}\n",
        profile.content_fingerprint(),
        profile.metadata_size(),
    );
    tx.send(&Response::StatsText { text });
    tx.done();
}

/// Worker-side body of `Compact` (moved off the reactor thread: a
/// checkpoint fsyncs, which must never stall the event loop).
pub(crate) fn compact_job(shared: &Shared, tx: &ConnTx) {
    let Some(store) = shared.store.as_ref() else {
        send_error_tx(
            shared,
            tx,
            ErrorCode::NotFound,
            "server has no store configured".into(),
        );
        tx.done();
        return;
    };
    let compacted = {
        let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
        let stats = store.compact();
        if stats.is_ok() {
            shared.sync_store_metrics(&store);
        }
        (stats, store.generation())
    };
    match compacted {
        (Err(e), _) => {
            send_error_tx(shared, tx, ErrorCode::Internal, e.to_string());
        }
        (Ok(stats), generation) => {
            shared
                .metrics
                .store_checkpoints_total
                .fetch_add(1, Ordering::SeqCst);
            shared
                .metrics
                .store_last_checkpoint_micros
                .store(shared.clock.now_micros(), Ordering::SeqCst);
            tx.send(&Response::CompactOk {
                generation,
                profiles: stats.profiles,
                checkpoint_bytes: stats.checkpoint_bytes,
                wal_bytes_dropped: stats.wal_bytes_dropped,
            });
        }
    }
    tx.done();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_config_matches_cli_phase_config_shape() {
        let config = fit_config(500_000).unwrap();
        assert_eq!(
            config.layers(),
            &[
                LayerSpec::TemporalCycleCount(500_000),
                LayerSpec::SpatialDynamic
            ]
        );
        assert!(fit_config(0).is_err(), "zero cycles must be rejected");
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert!(config.max_frame_len >= 1 << 20);
        assert!(config.deadline_micros > 0);
        assert!(config.shards >= 1);
        assert!(config.max_conns >= 1);
        assert!(config.shard_budget >= 1);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn validate_rejects_each_zero_knob() {
        let cases: [(fn(&mut ServerConfig), ServerConfigError); 6] = [
            (|c| c.workers = 0, ServerConfigError::ZeroWorkers),
            (|c| c.shards = 0, ServerConfigError::ZeroShards),
            (|c| c.max_conns = 0, ServerConfigError::ZeroMaxConns),
            (|c| c.shard_budget = 0, ServerConfigError::ZeroShardBudget),
            (|c| c.deadline_micros = 0, ServerConfigError::ZeroDeadline),
            (
                |c| c.max_frame_len = 512,
                ServerConfigError::FrameLimitTooSmall { min: 1024 },
            ),
        ];
        for (mutate, expected) in cases {
            let mut config = ServerConfig::default();
            mutate(&mut config);
            assert_eq!(config.validate(), Err(expected));
        }
    }
}
