//! The streaming synthesis server.
//!
//! One accept loop, one OS thread per connection, and a bounded
//! [`WorkerPool`] for the compute requests (fit, synthesize, stats).
//! Connection threads never compute: they decode frames, answer the
//! cheap requests inline (`Metricsz`, `Shutdown`), submit the rest to
//! the pool, and pump `Ack`/`Cancel` frames to the in-flight streaming
//! job. Every failure path answers with a typed error frame before the
//! connection is ever closed.

use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use mocktails_core::{fit_key, HierarchyConfig, LayerSpec, Profile, ProfileError};
use mocktails_pool::bounded::{SubmitError, WorkerPool};
use mocktails_pool::Parallelism;
use mocktails_store::{ProfileStore, StoreOptions};
use mocktails_trace::codec::RecordEncoder;
use mocktails_trace::{fnv1a, DecodeOptions, Fingerprinter, TraceError};

use crate::cache::ProfileCache;
use crate::error::{ErrorCode, ServeError};
use crate::frame::{read_frame, write_frame};
use crate::metrics::{Clock, ServeMetrics};
use crate::protocol::{ProfileSource, Request, Response, PROTOCOL_VERSION};

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing compute requests.
    pub workers: usize,
    /// Jobs admitted beyond the running ones; over-cap submissions get a
    /// `Busy` error frame (see [`WorkerPool`]).
    pub queue_cap: usize,
    /// Profiles the cache retains (LRU beyond this).
    pub cache_capacity: usize,
    /// Cache entry lifetime in microseconds (0 = never expires).
    pub cache_ttl_micros: u64,
    /// Maximum accepted frame payload length in bytes.
    pub max_frame_len: usize,
    /// Per-request deadline in microseconds: bounds the queue wait and
    /// each backpressure (ack) wait of a streaming response.
    pub deadline_micros: u64,
    /// Decode hardening applied to uploaded traces and profiles.
    pub decode: DecodeOptions,
    /// Directory of the crash-recoverable profile store; `None` runs
    /// memory-only. With a store, every fitted profile is appended to
    /// its write-ahead log *before* the `FitResult` ack, and a restart
    /// warms the cache from the recovered state.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_cap: 16,
            cache_capacity: 64,
            cache_ttl_micros: 0,
            max_frame_len: 64 << 20,
            deadline_micros: 30_000_000,
            decode: DecodeOptions::default(),
            store_dir: None,
        }
    }
}

/// State shared by the accept loop, connection threads and worker jobs.
struct Shared {
    config: ServerConfig,
    cache: Mutex<ProfileCache>,
    metrics: Arc<ServeMetrics>,
    pool: WorkerPool,
    clock: Arc<dyn Clock>,
    /// The durable tier behind the cache, if configured. Its mutex is
    /// never held together with the cache's: fit persistence locks the
    /// cache, releases it, then locks the store.
    store: Option<Mutex<ProfileStore>>,
    shutting_down: AtomicBool,
    addr: SocketAddr,
    /// Read halves of live connections, shut down after drain so blocked
    /// reads unblock and connection threads can be joined.
    conns: Mutex<Vec<TcpStream>>,
}

impl Shared {
    fn cache(&self) -> std::sync::MutexGuard<'_, ProfileCache> {
        self.cache.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mirrors the cache's internal tallies into the metric registry.
    fn sync_cache_metrics(&self, cache: &ProfileCache) {
        let m = &self.metrics;
        m.cache_entries.store(cache.len() as u64, Ordering::SeqCst);
        m.cache_evictions_total
            .store(cache.evictions(), Ordering::SeqCst);
        m.cache_expirations_total
            .store(cache.expirations(), Ordering::SeqCst);
    }

    /// Mirrors the store's size gauges into the metric registry.
    fn sync_store_metrics(&self, store: &ProfileStore) {
        let m = &self.metrics;
        m.store_profiles.store(store.len() as u64, Ordering::SeqCst);
        m.store_wal_bytes.store(store.wal_bytes(), Ordering::SeqCst);
    }
}

/// The server: a bound listener plus everything requests share.
///
/// [`Server::bind`] then [`Server::run`]; `run` returns after a
/// `Shutdown` frame has been honored — in-flight requests drained,
/// mid-stream clients given their clean end-of-stream frames — so the
/// caller can flush final metrics and exit 0.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("addr", &self.shared.addr)
            .field("workers", &self.shared.config.workers)
            .finish()
    }
}

/// The hierarchy every server-side fit uses: the paper's 2L-TS shape with
/// a caller-chosen temporal window — identical to the CLI's offline
/// `profile` command, so server and offline outputs byte-compare equal.
fn fit_config(cycles: u64) -> Result<HierarchyConfig, String> {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(cycles))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .map_err(|e| e.to_string())
}

/// Opens (recovering) the profile store and records what recovery did in
/// the metric registry.
fn shared_store_open(
    dir: &std::path::Path,
    config: &ServerConfig,
    clock: &dyn Clock,
    metrics: &ServeMetrics,
) -> Result<ProfileStore, ServeError> {
    let options = StoreOptions {
        decode: config.decode,
        ..StoreOptions::default()
    };
    let started = clock.now_micros();
    let store = ProfileStore::open_with(dir, options)?;
    let replay = clock.now_micros().saturating_sub(started);
    let report = *store.recovery();
    metrics.store_replay_micros.store(replay, Ordering::SeqCst);
    metrics.store_recovered_profiles_total.fetch_add(
        (report.checkpoint_profiles + report.wal_records_replayed) as u64,
        Ordering::SeqCst,
    );
    if report.wal_records_replayed > 0 || report.wal_bytes_truncated > 0 || report.wal_reset {
        metrics
            .store_recoveries_total
            .fetch_add(1, Ordering::SeqCst);
    }
    Ok(store)
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares the worker pool, cache and metrics registry.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(
        addr: &str,
        config: ServerConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<Self, ServeError> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let metrics = Arc::new(ServeMetrics::new());
        let mut cache = ProfileCache::new(config.cache_capacity, config.cache_ttl_micros);

        // Cold start: recover the persistent store and warm the cache
        // from it, so a restarted server answers fits it already paid for.
        let store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let opened = shared_store_open(dir, &config, clock.as_ref(), &metrics)?;
                let now = clock.now_micros();
                for (fingerprint, entry) in opened.iter() {
                    cache.insert(fingerprint, Arc::clone(&entry.profile), entry.fit_key, now);
                }
                metrics
                    .store_profiles
                    .store(opened.len() as u64, Ordering::SeqCst);
                metrics
                    .store_wal_bytes
                    .store(opened.wal_bytes(), Ordering::SeqCst);
                Some(Mutex::new(opened))
            }
        };
        metrics
            .cache_entries
            .store(cache.len() as u64, Ordering::SeqCst);
        metrics
            .store_last_checkpoint_micros
            .store(clock.now_micros(), Ordering::SeqCst);
        let shared = Arc::new(Shared {
            pool: WorkerPool::new(config.workers, config.queue_cap),
            cache: Mutex::new(cache),
            config,
            metrics,
            clock,
            store,
            shutting_down: AtomicBool::new(false),
            addr: local,
            conns: Mutex::new(Vec::new()),
        });
        Ok(Self { listener, shared })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The live metric registry (shared with all request handlers).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.shared.metrics)
    }

    /// Serves until a `Shutdown` frame arrives, then drains: stops
    /// accepting, completes in-flight work, closes connections, joins
    /// every thread.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures; per-connection failures are
    /// answered on that connection and never abort the server.
    pub fn run(self) -> Result<(), ServeError> {
        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(ServeError::Io(e)),
            };
            self.shared
                .metrics
                .connections_total
                .fetch_add(1, Ordering::SeqCst);
            if let Ok(clone) = stream.try_clone() {
                self.shared
                    .conns
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(clone);
            }
            let shared = Arc::clone(&self.shared);
            handles.push(std::thread::spawn(move || {
                // Failures inside a connection are answered on that
                // connection; nothing propagates to the accept loop.
                let _ = serve_connection(&shared, stream);
            }));
        }
        // Complete everything already admitted (mid-stream clients get
        // their SynthEnd), then unblock any idle connection reads. Take
        // the sockets out under the lock and shut them down after
        // releasing it: `shutdown` can block on the peer, and a
        // connection thread racing to deregister itself needs the
        // registry lock to make progress.
        self.shared.pool.drain();
        let conns = {
            let mut guard = self
                .shared
                .conns
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            std::mem::take(&mut *guard)
        };
        for conn in conns {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        for handle in handles {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// The streaming job a connection currently has in flight.
struct ActiveJob {
    /// Forwards client `Ack` frames to the worker.
    ack_tx: mpsc::Sender<()>,
    /// Signals job completion (by closing).
    done_rx: mpsc::Receiver<()>,
}

impl ActiveJob {
    /// Cancels (by dropping the ack channel) and waits for the worker to
    /// finish its final frames.
    fn cancel_and_wait(self) {
        drop(self.ack_tx);
        let _ = self.done_rx.recv();
    }
}

type SharedWriter = Arc<Mutex<BufWriter<TcpStream>>>;

fn send_response(writer: &SharedWriter, response: &Response) -> Result<(), ServeError> {
    let payload = response.encode();
    let mut w = writer.lock().unwrap_or_else(PoisonError::into_inner);
    // The per-connection writer mutex exists precisely to serialize
    // whole frames onto the socket; blocking on a slow client here IS
    // the backpressure, and only that client's worker is behind it.
    // lint: allow(L013, per-connection writer mutex serializes frames; blocking on the client socket is the intended backpressure)
    write_frame(&mut *w, &payload)?;
    // lint: allow(L013, same frame-serialization mutex; flush completes the frame before the lock is released)
    w.flush()?;
    Ok(())
}

fn send_error(
    shared: &Shared,
    writer: &SharedWriter,
    code: ErrorCode,
    message: String,
) -> Result<(), ServeError> {
    let m = &shared.metrics;
    m.errors_total.fetch_add(1, Ordering::SeqCst);
    match code {
        ErrorCode::Busy => {
            m.busy_rejections_total.fetch_add(1, Ordering::SeqCst);
        }
        ErrorCode::DeadlineExceeded => {
            m.deadline_exceeded_total.fetch_add(1, Ordering::SeqCst);
        }
        _ => {}
    }
    send_response(writer, &Response::Error { code, message })
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) -> Result<(), ServeError> {
    let _ = stream.set_nodelay(true);
    let writer: SharedWriter = Arc::new(Mutex::new(BufWriter::new(stream.try_clone()?)));
    let mut reader = BufReader::new(stream);
    let max_len = shared.config.max_frame_len;

    // Handshake: the first frame must be a version-compatible Hello.
    match read_frame(&mut reader, max_len)? {
        None => return Ok(()),
        Some(payload) => match Request::decode(&payload) {
            Ok(Request::Hello { version }) if version == PROTOCOL_VERSION => {
                send_response(
                    &writer,
                    &Response::HelloOk {
                        version: PROTOCOL_VERSION,
                    },
                )?;
            }
            Ok(Request::Hello { version }) => {
                return send_error(
                    shared,
                    &writer,
                    ErrorCode::UnsupportedVersion,
                    format!("protocol version {version} not supported (server speaks {PROTOCOL_VERSION})"),
                );
            }
            Ok(other) => {
                return send_error(
                    shared,
                    &writer,
                    ErrorCode::Malformed,
                    format!("expected hello, got {other:?}"),
                );
            }
            Err(e) => {
                return send_error(shared, &writer, ErrorCode::Malformed, e.to_string());
            }
        },
    }

    let mut active: Option<ActiveJob> = None;
    loop {
        let payload = match read_frame(&mut reader, max_len) {
            Ok(Some(payload)) => payload,
            Ok(None) => {
                // Client closed; cancel any in-flight stream and finish.
                if let Some(job) = active.take() {
                    job.cancel_and_wait();
                }
                return Ok(());
            }
            Err(ServeError::Frame(msg)) => {
                // Frame sync is lost; answer with a typed error frame and
                // close — the contract is "typed error, never a silent
                // drop", not "resynchronize a corrupt stream".
                if let Some(job) = active.take() {
                    job.cancel_and_wait();
                }
                let code = if msg.contains("exceeds maximum") {
                    ErrorCode::LimitExceeded
                } else {
                    ErrorCode::Malformed
                };
                return send_error(shared, &writer, code, msg);
            }
            Err(e) => {
                if let Some(job) = active.take() {
                    job.cancel_and_wait();
                }
                return Err(e);
            }
        };
        let request = match Request::decode(&payload) {
            Ok(request) => request,
            Err(e) => {
                // The frame boundary held, so the stream is still in
                // sync; report and keep serving.
                send_error(shared, &writer, ErrorCode::Malformed, e.to_string())?;
                continue;
            }
        };
        match request {
            Request::Ack => {
                if let Some(job) = &active {
                    // A send failure only means the job already finished.
                    let _ = job.ack_tx.send(());
                } else {
                    send_error(
                        shared,
                        &writer,
                        ErrorCode::Malformed,
                        "ack with no stream in progress".into(),
                    )?;
                }
            }
            Request::Cancel => {
                if let Some(job) = active.take() {
                    job.cancel_and_wait();
                } else {
                    send_error(
                        shared,
                        &writer,
                        ErrorCode::Malformed,
                        "cancel with no stream in progress".into(),
                    )?;
                }
            }
            other => {
                // A new request implicitly ends any finished stream; an
                // unfinished one is cancelled (the protocol requires the
                // client to wait for SynthEnd before its next request).
                if let Some(job) = active.take() {
                    job.cancel_and_wait();
                }
                active = dispatch(shared, &writer, other)?;
            }
        }
    }
}

/// Routes one non-stream-control request. Returns the new in-flight
/// streaming job, if the request started one.
fn dispatch(
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    request: Request,
) -> Result<Option<ActiveJob>, ServeError> {
    let metrics = &shared.metrics;
    metrics.requests_total.fetch_add(1, Ordering::SeqCst);
    match request {
        Request::Hello { .. } => {
            send_error(
                shared,
                writer,
                ErrorCode::Malformed,
                "duplicate hello".into(),
            )?;
            Ok(None)
        }
        Request::Metricsz => {
            metrics
                .metricsz_requests_total
                .fetch_add(1, Ordering::SeqCst);
            let text = metrics.render(shared.clock.now_micros());
            send_response(writer, &Response::MetricsText { text })?;
            Ok(None)
        }
        Request::Shutdown => {
            shared.shutting_down.store(true, Ordering::SeqCst);
            send_response(writer, &Response::ShutdownOk)?;
            // Wake the accept loop so it observes the flag.
            let _ = TcpStream::connect(shared.addr);
            Ok(None)
        }
        Request::Compact => {
            let Some(store) = shared.store.as_ref() else {
                send_error(
                    shared,
                    writer,
                    ErrorCode::NotFound,
                    "server has no store configured".into(),
                )?;
                return Ok(None);
            };
            let compacted = {
                let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
                let stats = store.compact();
                if stats.is_ok() {
                    shared.sync_store_metrics(&store);
                }
                (stats, store.generation())
            };
            match compacted {
                (Err(e), _) => {
                    send_error(shared, writer, ErrorCode::Internal, e.to_string())?;
                }
                (Ok(stats), generation) => {
                    metrics
                        .store_checkpoints_total
                        .fetch_add(1, Ordering::SeqCst);
                    metrics
                        .store_last_checkpoint_micros
                        .store(shared.clock.now_micros(), Ordering::SeqCst);
                    send_response(
                        writer,
                        &Response::CompactOk {
                            generation,
                            profiles: stats.profiles,
                            checkpoint_bytes: stats.checkpoint_bytes,
                            wal_bytes_dropped: stats.wal_bytes_dropped,
                        },
                    )?;
                }
            }
            Ok(None)
        }
        Request::FitProfile {
            cycles,
            trace_bytes,
        } => {
            submit_job(shared, writer, move |shared, writer| {
                fit_job(shared, writer, cycles, &trace_bytes)
            })?;
            Ok(None)
        }
        Request::Synthesize {
            seed,
            chunk_len,
            source,
        } => {
            let (ack_tx, ack_rx) = mpsc::channel();
            let (done_tx, done_rx) = mpsc::channel();
            let admitted = submit_streaming_job(shared, writer, move |shared, writer| {
                let result = synth_job(shared, writer, seed, chunk_len, &source, &ack_rx);
                drop(done_tx);
                result
            })?;
            Ok(admitted.then_some(ActiveJob { ack_tx, done_rx }))
        }
        Request::Stats { source } => {
            submit_job(shared, writer, move |shared, writer| {
                stats_job(shared, writer, &source)
            })?;
            Ok(None)
        }
        Request::Ack | Request::Cancel => unreachable!("handled by the caller"), // lint: allow(L001, serve_connection routes these before dispatch)
    }
}

/// Submits a compute job and blocks the connection thread until it
/// finishes, translating pool refusal into `Busy`/`ShuttingDown` frames.
fn submit_job<F>(shared: &Arc<Shared>, writer: &SharedWriter, job: F) -> Result<(), ServeError>
where
    F: FnOnce(&Shared, &SharedWriter) -> Result<(), ServeError> + Send + 'static,
{
    let (done_tx, done_rx) = mpsc::channel::<()>();
    let admitted = submit_streaming_job(shared, writer, move |shared, writer| {
        let result = job(shared, writer);
        drop(done_tx);
        result
    })?;
    if admitted {
        let _ = done_rx.recv();
    }
    Ok(())
}

/// Submits a job to the pool; `false` means it was refused (and the
/// refusal already answered with a typed error frame).
fn submit_streaming_job<F>(
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    job: F,
) -> Result<bool, ServeError>
where
    F: FnOnce(&Shared, &SharedWriter) -> Result<(), ServeError> + Send + 'static,
{
    if shared.shutting_down.load(Ordering::SeqCst) {
        send_error(
            shared,
            writer,
            ErrorCode::ShuttingDown,
            "server is draining".into(),
        )?;
        return Ok(false);
    }
    let job_shared = Arc::clone(shared);
    let job_writer = Arc::clone(writer);
    let submitted_micros = shared.clock.now_micros();
    let submitted = shared.pool.submit(move || {
        let waited = job_shared
            .clock
            .now_micros()
            .saturating_sub(submitted_micros);
        job_shared.metrics.queue_wait_micros.observe(waited);
        if waited > job_shared.config.deadline_micros {
            let _ = send_error(
                &job_shared,
                &job_writer,
                ErrorCode::DeadlineExceeded,
                format!(
                    "queued {waited} µs, deadline {} µs",
                    job_shared.config.deadline_micros
                ),
            );
            return;
        }
        // The job's own failure paths answer on the connection; a
        // transport failure here means the client is gone, which the
        // connection thread notices on its next read.
        let _ = job(&job_shared, &job_writer);
    });
    match submitted {
        Ok(()) => Ok(true),
        Err(SubmitError::QueueFull { cap }) => {
            send_error(
                shared,
                writer,
                ErrorCode::Busy,
                format!("worker queue full (cap {cap}); retry later"),
            )?;
            Ok(false)
        }
        Err(SubmitError::ShuttingDown) => {
            send_error(
                shared,
                writer,
                ErrorCode::ShuttingDown,
                "server is draining".into(),
            )?;
            Ok(false)
        }
    }
}

/// Maps a trace decode failure onto a wire error code.
fn trace_error_frame(e: &TraceError) -> (ErrorCode, String) {
    match e {
        TraceError::LimitExceeded { .. } => (ErrorCode::LimitExceeded, e.to_string()),
        _ => (ErrorCode::Malformed, format!("trace decode: {e}")),
    }
}

/// Maps a profile decode failure onto a wire error code.
fn profile_error_frame(e: &ProfileError) -> (ErrorCode, String) {
    match e {
        ProfileError::Codec(TraceError::LimitExceeded { .. }) => {
            (ErrorCode::LimitExceeded, e.to_string())
        }
        _ => (ErrorCode::Malformed, format!("profile decode: {e}")),
    }
}

/// Worker-side body of `FitProfile`.
fn fit_job(
    shared: &Shared,
    writer: &SharedWriter,
    cycles: u64,
    trace_bytes: &[u8],
) -> Result<(), ServeError> {
    let metrics = &shared.metrics;
    metrics.fit_requests_total.fetch_add(1, Ordering::SeqCst);
    let started = shared.clock.now_micros();
    let config = match fit_config(cycles) {
        Ok(config) => config,
        Err(msg) => {
            return send_error(
                shared,
                writer,
                ErrorCode::Malformed,
                format!("cycles: {msg}"),
            )
        }
    };
    let key = fit_key(fnv1a(trace_bytes), &config);
    let now = shared.clock.now_micros();
    let cached = {
        let mut cache = shared.cache();
        let hit = cache.get_by_fit_key(key, now);
        shared.sync_cache_metrics(&cache);
        hit
    };
    let (fingerprint, profile, cache_hit) = match cached {
        Some((fingerprint, profile)) => {
            metrics.cache_hits_total.fetch_add(1, Ordering::SeqCst);
            (fingerprint, profile, true)
        }
        None => {
            metrics.cache_misses_total.fetch_add(1, Ordering::SeqCst);
            let trace = match mocktails_trace::codec::read_trace_with(
                &mut { trace_bytes },
                &shared.config.decode,
            ) {
                Ok(trace) => trace,
                Err(e) => {
                    let (code, msg) = trace_error_frame(&e);
                    return send_error(shared, writer, code, msg);
                }
            };
            // Workers fit sequentially: concurrency comes from the pool,
            // and the result is bit-identical either way (PR 3 invariant).
            let profile = Arc::new(Profile::fit_with(
                &trace,
                &config,
                Parallelism::sequential(),
            ));
            let fingerprint = profile.content_fingerprint();
            let now = shared.clock.now_micros();
            let mut cache = shared.cache();
            cache.insert(fingerprint, Arc::clone(&profile), Some(key), now);
            shared.sync_cache_metrics(&cache);
            drop(cache);
            (fingerprint, profile, false)
        }
    };
    // Durability before acknowledgement: a freshly fitted record must be
    // in the write-ahead log (fsynced) before the FitResult goes out, so
    // a crash after the ack can always replay it.
    if !cache_hit {
        if let Some(store) = shared.store.as_ref() {
            let persisted = {
                let mut store = store.lock().unwrap_or_else(PoisonError::into_inner);
                let result = store.put_profile(&profile, Some(key)); // lint: allow(L013, the WAL append must serialize under the store lock — durability-before-ack is the point)
                if result.is_ok() {
                    shared.sync_store_metrics(&store);
                }
                result
            };
            if let Err(e) = persisted {
                return send_error(
                    shared,
                    writer,
                    ErrorCode::Internal,
                    format!("profile store: {e}"),
                );
            }
            metrics
                .store_wal_appends_total
                .fetch_add(1, Ordering::SeqCst);
        }
    }
    let mut profile_bytes = Vec::new();
    if let Err(e) = profile.write(&mut profile_bytes) {
        return send_error(shared, writer, ErrorCode::Internal, e.to_string());
    }
    metrics
        .fit_latency_micros
        .observe(shared.clock.now_micros().saturating_sub(started));
    send_response(
        writer,
        &Response::FitResult {
            fingerprint,
            cache_hit,
            profile_bytes,
        },
    )
}

/// Resolves a request's profile source against the cache or an inline
/// upload (which is validated, then cached under its content fingerprint
/// so repeats hit).
fn resolve_profile(
    shared: &Shared,
    source: &ProfileSource,
) -> Result<Arc<Profile>, (ErrorCode, String)> {
    match source {
        ProfileSource::Fingerprint(fp) => {
            let now = shared.clock.now_micros();
            let mut cache = shared.cache();
            let found = cache.get(*fp, now);
            shared.sync_cache_metrics(&cache);
            drop(cache);
            match found {
                Some(profile) => {
                    shared
                        .metrics
                        .cache_hits_total
                        .fetch_add(1, Ordering::SeqCst);
                    Ok(profile)
                }
                None => {
                    shared
                        .metrics
                        .cache_misses_total
                        .fetch_add(1, Ordering::SeqCst);
                    Err((
                        ErrorCode::NotFound,
                        format!("no cached profile with fingerprint {fp:#018x}"),
                    ))
                }
            }
        }
        ProfileSource::Inline(bytes) => {
            let profile = Profile::read(&mut bytes.as_slice(), &shared.config.decode)
                .map_err(|e| profile_error_frame(&e))?;
            let profile = Arc::new(profile);
            let fingerprint = fnv1a(bytes);
            let now = shared.clock.now_micros();
            let mut cache = shared.cache();
            cache.insert(fingerprint, Arc::clone(&profile), None, now);
            shared.sync_cache_metrics(&cache);
            Ok(profile)
        }
    }
}

/// Worker-side body of `Synthesize`: stream chunks under client acks.
fn synth_job(
    shared: &Shared,
    writer: &SharedWriter,
    seed: u64,
    chunk_len: u32,
    source: &ProfileSource,
    ack_rx: &mpsc::Receiver<()>,
) -> Result<(), ServeError> {
    let metrics = &shared.metrics;
    metrics.synth_requests_total.fetch_add(1, Ordering::SeqCst);
    let started = shared.clock.now_micros();
    if chunk_len == 0 {
        return send_error(
            shared,
            writer,
            ErrorCode::Malformed,
            "chunk_len must be positive".into(),
        );
    }
    let profile = match resolve_profile(shared, source) {
        Ok(profile) => profile,
        Err((code, msg)) => return send_error(shared, writer, code, msg),
    };
    if let Err(e) = profile.validate() {
        return send_error(shared, writer, ErrorCode::Malformed, e.to_string());
    }
    let mut synth = profile.synthesizer(seed);
    send_response(
        writer,
        &Response::SynthStart {
            total_requests: synth.remaining(),
        },
    )?;
    let ack_timeout = Duration::from_micros(shared.config.deadline_micros);
    let mut encoder = RecordEncoder::new();
    let mut fingerprinter = Fingerprinter::new();
    let mut first = true;
    loop {
        if !first {
            // Client-driven backpressure: the next chunk is not even
            // encoded until the previous one is acknowledged, so the
            // end-of-stream totals always reflect what was actually sent.
            match ack_rx.recv_timeout(ack_timeout) {
                Ok(()) => {}
                Err(RecvTimeoutError::Timeout) => {
                    return send_error(
                        shared,
                        writer,
                        ErrorCode::DeadlineExceeded,
                        format!("no ack within {} µs", shared.config.deadline_micros),
                    );
                }
                Err(RecvTimeoutError::Disconnected) => {
                    // Cancelled (or client gone): end the stream cleanly
                    // with what was actually sent.
                    break;
                }
            }
        }
        let mut records = Vec::new();
        let mut count: u32 = 0;
        while count < chunk_len {
            let Some(request) = synth.next_request() else {
                break;
            };
            if let Err(e) = encoder.encode(&mut records, &request) {
                return send_error(shared, writer, ErrorCode::Internal, e.to_string());
            }
            fingerprinter.push(&request);
            count += 1;
        }
        if count == 0 {
            break;
        }
        first = false;
        metrics
            .streamed_bytes_total
            .fetch_add(records.len() as u64, Ordering::SeqCst);
        metrics
            .streamed_requests_total
            .fetch_add(u64::from(count), Ordering::SeqCst);
        send_response(writer, &Response::SynthChunk { count, records })?;
    }
    metrics
        .synth_latency_micros
        .observe(shared.clock.now_micros().saturating_sub(started));
    send_response(
        writer,
        &Response::SynthEnd {
            total_requests: fingerprinter.count(),
            fingerprint: fingerprinter.digest(),
        },
    )
}

/// Worker-side body of `Stats`.
fn stats_job(
    shared: &Shared,
    writer: &SharedWriter,
    source: &ProfileSource,
) -> Result<(), ServeError> {
    shared
        .metrics
        .stats_requests_total
        .fetch_add(1, Ordering::SeqCst);
    let profile = match resolve_profile(shared, source) {
        Ok(profile) => profile,
        Err((code, msg)) => return send_error(shared, writer, code, msg),
    };
    let summary = profile.summary();
    let text = format!(
        "{summary}\nfingerprint {:#018x}\nmetadata_bytes {}\n",
        profile.content_fingerprint(),
        profile.metadata_size(),
    );
    send_response(writer, &Response::StatsText { text })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_config_matches_cli_phase_config_shape() {
        let config = fit_config(500_000).unwrap();
        assert_eq!(
            config.layers(),
            &[
                LayerSpec::TemporalCycleCount(500_000),
                LayerSpec::SpatialDynamic
            ]
        );
        assert!(fit_config(0).is_err(), "zero cycles must be rejected");
    }

    #[test]
    fn default_config_is_sane() {
        let config = ServerConfig::default();
        assert!(config.workers >= 1);
        assert!(config.max_frame_len >= 1 << 20);
        assert!(config.deadline_micros > 0);
    }
}
