//! Length-prefixed framing: the lowest layer of the wire protocol.
//!
//! ```text
//! +----------------+---------------------+
//! | len: u32 LE    | payload (len bytes) |
//! +----------------+---------------------+
//! ```
//!
//! A frame is a length prefix followed by exactly that many payload
//! bytes; the payload's first byte is the protocol message tag (see
//! [`crate::protocol`]). Framing guarantees:
//!
//! * **Clean EOF is distinguishable from truncation.** EOF *before* any
//!   prefix byte is a closed stream ([`read_frame`] returns `Ok(None)`);
//!   EOF *inside* the prefix or payload is a truncated frame and a typed
//!   error.
//! * **A hostile length cannot force an allocation.** Payload buffers
//!   grow chunk-by-chunk with the bytes actually read, and a prefix above
//!   `max_len` is rejected before reading the body.

use std::io::{Read, Write};

use crate::error::ServeError;

/// Allocation granularity for payload reads; memory tracks bytes actually
/// received, never the declared length alone.
const READ_CHUNK: usize = 1 << 16;

/// Writes one frame: length prefix plus payload.
///
/// # Errors
///
/// [`ServeError::Frame`] if `payload` exceeds `u32::MAX` bytes, otherwise
/// I/O errors from the writer.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ServeError> {
    let len = u32::try_from(payload.len())
        .map_err(|_| ServeError::Frame("payload exceeds u32 length prefix".into()))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one frame, enforcing `max_len` on the declared payload length.
///
/// Returns `Ok(None)` on clean EOF (the peer closed between frames).
///
/// # Errors
///
/// [`ServeError::Frame`] for a truncated length prefix, a declared length
/// above `max_len`, or a payload cut short; [`ServeError::Io`] for other
/// I/O failures.
pub fn read_frame<R: Read>(r: &mut R, max_len: usize) -> Result<Option<Vec<u8>>, ServeError> {
    let mut prefix = [0u8; 4];
    let mut filled = 0;
    while filled < prefix.len() {
        match r.read(&mut prefix[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(ServeError::Frame(format!(
                    "truncated length prefix ({filled} of 4 bytes)"
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ServeError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max_len {
        return Err(ServeError::Frame(format!(
            "frame length {len} exceeds maximum {max_len}"
        )));
    }
    let mut payload = Vec::with_capacity(len.min(READ_CHUNK));
    let mut taken = r.take(len as u64);
    let read = taken.read_to_end(&mut payload)?;
    if read < len {
        return Err(ServeError::Frame(format!(
            "truncated frame payload ({read} of {len} bytes)"
        )));
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn clean_eof_is_none_not_error() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }, 1024).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_is_typed_error() {
        for cut in 1..4 {
            let mut buf = Vec::new();
            write_frame(&mut buf, b"payload").unwrap();
            buf.truncate(cut);
            let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
            assert!(
                matches!(&err, ServeError::Frame(m) if m.contains("truncated length prefix")),
                "cut={cut}: {err}"
            );
        }
    }

    #[test]
    fn truncated_payload_is_typed_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"payload").unwrap();
        buf.truncate(buf.len() - 3);
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert!(
            matches!(&err, ServeError::Frame(m) if m.contains("truncated frame payload")),
            "{err}"
        );
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_reading() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        // No payload behind the hostile prefix — must fail on the prefix,
        // not attempt a 4 GiB read.
        let err = read_frame(&mut buf.as_slice(), 1 << 20).unwrap_err();
        assert!(
            matches!(&err, ServeError::Frame(m) if m.contains("exceeds maximum")),
            "{err}"
        );
    }

    #[test]
    fn max_len_boundary_is_inclusive() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[7u8; 16]).unwrap();
        assert!(read_frame(&mut buf.as_slice(), 16).unwrap().is_some());
        let err = read_frame(&mut buf.as_slice(), 15).unwrap_err();
        assert!(matches!(err, ServeError::Frame(_)));
    }
}
