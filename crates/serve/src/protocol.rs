//! Versioned request/response messages carried in frame payloads.
//!
//! Every payload is `tag u8` followed by tag-specific fields. Fixed-width
//! integers are little-endian; the *final* variable-length field of a
//! message is the remainder of the payload, so no message carries a
//! redundant inner length that could disagree with the frame's.
//!
//! ```text
//! requests                              responses
//! 1 Hello      { version u32 }          1 HelloOk    { version u32 }
//! 2 FitProfile { cycles u64,            2 FitResult  { fingerprint u64,
//!                clusters u32,                         cache_hit u8,
//!                trace bytes* }                        profile bytes* }
//! 3 Synthesize { seed u64,              3 SynthStart { total u64 }
//!                chunk_len u32,         4 SynthChunk { count u32, records* }
//!                source }               5 SynthEnd   { total u64,
//! 4 Stats      { source }                              fingerprint u64 }
//! 5 Metricsz                            6 StatsText  { text* }
//! 6 Shutdown                            7 MetricsText{ text* }
//! 7 Ack                                 8 ShutdownOk
//! 8 Cancel                              9 Error      { code u8, message* }
//! 9 Compact                            10 CompactOk  { generation u64,
//! 10 CoupledSynthesize                                 profiles u64,
//!              { seed u64,                             checkpoint_bytes u64,
//!                chunk_len u32,                        wal_bytes_dropped u64 }
//!                source }              11 CoupledChunk { count u32,
//!                                                       simulated_cycles u64,
//!                                                       stall_cycles u64,
//!                                                       records* }
//! ```
//!
//! `source` is `0` + fingerprint u64 (cache reference) or `1` + profile
//! bytes to end of payload (inline upload). Decoding is pure — no I/O, no
//! allocation proportional to declared-but-absent bytes — which makes the
//! whole parser directly fuzzable (see `tests/fuzz_frames.rs`).

use crate::error::{ErrorCode, ServeError};

/// Version of the message set defined in this module; negotiated by
/// `Hello`/`HelloOk` before anything else is processed.
pub const PROTOCOL_VERSION: u32 = 3;

/// Where a `Synthesize`/`Stats` request finds its profile.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileSource {
    /// A profile already resident in the server's cache, addressed by the
    /// content fingerprint a previous `FitResult` reported.
    Fingerprint(u64),
    /// An encoded profile uploaded inline with the request.
    Inline(Vec<u8>),
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Protocol handshake; must be the first frame on a connection.
    Hello {
        /// The client's protocol version.
        version: u32,
    },
    /// Upload encoded trace bytes, fit a profile, get the encoding back.
    FitProfile {
        /// Temporal window (cycles) for the hierarchy's first layer.
        cycles: u64,
        /// Cluster count for a sampled-fidelity fit (`mocktails-sample`),
        /// or `0` for a full fit of every leaf partition.
        clusters: u32,
        /// The encoded trace (`mocktails_trace::codec` format).
        trace_bytes: Vec<u8>,
    },
    /// Stream a synthesized trace, chunk by acknowledged chunk.
    Synthesize {
        /// Synthesis seed.
        seed: u64,
        /// Requests per `SynthChunk` frame (0 is rejected).
        chunk_len: u32,
        /// The profile to synthesize from.
        source: ProfileSource,
    },
    /// Render a profile's composition summary as text.
    Stats {
        /// The profile to summarize.
        source: ProfileSource,
    },
    /// Render the server's metrics registry as text.
    Metricsz,
    /// Begin graceful shutdown: drain in-flight work, then exit.
    Shutdown,
    /// Client-driven backpressure: release the next `SynthChunk`.
    Ack,
    /// Abandon the in-flight streaming request on this connection.
    Cancel,
    /// Admin: checkpoint the persistent store and truncate its
    /// write-ahead log. Answered `CompactOk`, or `NotFound` when the
    /// server runs without a store.
    Compact,
    /// Stream a synthesized trace with the generator coupled to the DRAM
    /// simulator (the paper's Fig. 1 Option B): the server injects every
    /// request into `mocktails-dram` as it is synthesized, feeds stalls
    /// back into the generator's timestamps, and each chunk reports the
    /// simulated time reached.
    CoupledSynthesize {
        /// Synthesis seed.
        seed: u64,
        /// Requests per `CoupledChunk` frame (0 is rejected).
        chunk_len: u32,
        /// The profile to synthesize from.
        source: ProfileSource,
    },
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Handshake accepted.
    HelloOk {
        /// The server's protocol version.
        version: u32,
    },
    /// A completed fit.
    FitResult {
        /// Content fingerprint of the profile (cache key for later
        /// `Synthesize { source: Fingerprint }` requests).
        fingerprint: u64,
        /// Whether the fit was served from the profile cache.
        cache_hit: bool,
        /// The encoded profile.
        profile_bytes: Vec<u8>,
    },
    /// Stream opening: the exact number of requests that will follow.
    SynthStart {
        /// Total requests across all chunks.
        total_requests: u64,
    },
    /// One chunk of encoded trace records (no header; concatenating all
    /// chunks yields the record section of a whole-trace encoding).
    SynthChunk {
        /// Requests encoded in this chunk.
        count: u32,
        /// The records, `mocktails_trace::codec::RecordEncoder` format.
        records: Vec<u8>,
    },
    /// Clean end of stream.
    SynthEnd {
        /// Total requests streamed.
        total_requests: u64,
        /// Order-sensitive fingerprint of the streamed requests, for
        /// client-side integrity verification.
        fingerprint: u64,
    },
    /// Profile summary text.
    StatsText {
        /// Human-readable summary.
        text: String,
    },
    /// Metrics registry rendering.
    MetricsText {
        /// Deterministic text rendering of every metric.
        text: String,
    },
    /// Shutdown acknowledged; the server is draining.
    ShutdownOk,
    /// A completed store compaction.
    CompactOk {
        /// The store's new checkpoint/log generation.
        generation: u64,
        /// Profiles snapshotted into the checkpoint.
        profiles: u64,
        /// Size of the new checkpoint file in bytes.
        checkpoint_bytes: u64,
        /// Write-ahead-log payload bytes dropped by the truncation.
        wal_bytes_dropped: u64,
    },
    /// A typed failure; the connection stays usable unless the transport
    /// itself broke.
    Error {
        /// Machine-readable code.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// One chunk of a coupled (Option B) stream: the records plus the
    /// simulated-time backpressure the DRAM model exerted on them.
    CoupledChunk {
        /// Requests encoded in this chunk.
        count: u32,
        /// Simulated cycle count reached by the last request in the
        /// chunk (its issue timestamp including fed-back stalls).
        simulated_cycles: u64,
        /// Cumulative stall cycles the generator has absorbed so far.
        stall_cycles: u64,
        /// The records, `mocktails_trace::codec::RecordEncoder` format.
        records: Vec<u8>,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// A zero-copy cursor over a payload slice.
struct Cursor<'a> {
    bytes: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes }
    }

    fn u8(&mut self, what: &str) -> Result<u8, ServeError> {
        let (&b, rest) = self
            .bytes
            .split_first()
            .ok_or_else(|| ServeError::Protocol(format!("payload ends before {what}")))?;
        self.bytes = rest;
        Ok(b)
    }

    fn u32(&mut self, what: &str) -> Result<u32, ServeError> {
        Ok(u32::from_le_bytes(self.array(what)?))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ServeError> {
        Ok(u64::from_le_bytes(self.array(what)?))
    }

    fn array<const N: usize>(&mut self, what: &str) -> Result<[u8; N], ServeError> {
        if self.bytes.len() < N {
            return Err(ServeError::Protocol(format!(
                "payload ends before {what} ({} of {N} bytes)",
                self.bytes.len()
            )));
        }
        let (head, rest) = self.bytes.split_at(N);
        self.bytes = rest;
        let mut out = [0u8; N];
        out.copy_from_slice(head);
        Ok(out)
    }

    /// Consumes the remainder of the payload (the final variable field).
    fn rest(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.bytes).to_vec()
    }

    fn rest_utf8(&mut self, what: &str) -> Result<String, ServeError> {
        String::from_utf8(self.rest())
            .map_err(|_| ServeError::Protocol(format!("{what} is not valid UTF-8")))
    }

    fn finish(&self, what: &str) -> Result<(), ServeError> {
        if self.bytes.is_empty() {
            Ok(())
        } else {
            Err(ServeError::Protocol(format!(
                "{} trailing bytes after {what}",
                self.bytes.len()
            )))
        }
    }
}

impl ProfileSource {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            Self::Fingerprint(fp) => {
                buf.push(0);
                put_u64(buf, *fp);
            }
            Self::Inline(bytes) => {
                buf.push(1);
                buf.extend_from_slice(bytes);
            }
        }
    }

    fn decode_from(cursor: &mut Cursor<'_>) -> Result<Self, ServeError> {
        match cursor.u8("profile source kind")? {
            0 => Ok(Self::Fingerprint(cursor.u64("profile fingerprint")?)),
            1 => Ok(Self::Inline(cursor.rest())),
            k => Err(ServeError::Protocol(format!(
                "unknown profile source kind {k}"
            ))),
        }
    }
}

impl Request {
    /// Encodes the request as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::Hello { version } => {
                buf.push(1);
                put_u32(&mut buf, *version);
            }
            Self::FitProfile {
                cycles,
                clusters,
                trace_bytes,
            } => {
                buf.push(2);
                put_u64(&mut buf, *cycles);
                put_u32(&mut buf, *clusters);
                buf.extend_from_slice(trace_bytes);
            }
            Self::Synthesize {
                seed,
                chunk_len,
                source,
            } => {
                buf.push(3);
                put_u64(&mut buf, *seed);
                put_u32(&mut buf, *chunk_len);
                source.encode_into(&mut buf);
            }
            Self::Stats { source } => {
                buf.push(4);
                source.encode_into(&mut buf);
            }
            Self::Metricsz => buf.push(5),
            Self::Shutdown => buf.push(6),
            Self::Ack => buf.push(7),
            Self::Cancel => buf.push(8),
            Self::Compact => buf.push(9),
            Self::CoupledSynthesize {
                seed,
                chunk_len,
                source,
            } => {
                buf.push(10);
                put_u64(&mut buf, *seed);
                put_u32(&mut buf, *chunk_len);
                source.encode_into(&mut buf);
            }
        }
        buf
    }

    /// Decodes a frame payload as a request.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for an empty payload, unknown tag, short
    /// body, or trailing bytes after a fixed-size message.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let tag = c.u8("request tag")?;
        let request = match tag {
            1 => {
                let version = c.u32("hello version")?;
                c.finish("hello")?;
                Self::Hello { version }
            }
            2 => Self::FitProfile {
                cycles: c.u64("fit cycles")?,
                clusters: c.u32("fit cluster count")?,
                trace_bytes: c.rest(),
            },
            3 => Self::Synthesize {
                seed: c.u64("synthesize seed")?,
                chunk_len: c.u32("synthesize chunk length")?,
                source: ProfileSource::decode_from(&mut c)?,
            },
            4 => Self::Stats {
                source: ProfileSource::decode_from(&mut c)?,
            },
            5 => {
                c.finish("metricsz")?;
                Self::Metricsz
            }
            6 => {
                c.finish("shutdown")?;
                Self::Shutdown
            }
            7 => {
                c.finish("ack")?;
                Self::Ack
            }
            8 => {
                c.finish("cancel")?;
                Self::Cancel
            }
            9 => {
                c.finish("compact")?;
                Self::Compact
            }
            10 => Self::CoupledSynthesize {
                seed: c.u64("coupled seed")?,
                chunk_len: c.u32("coupled chunk length")?,
                source: ProfileSource::decode_from(&mut c)?,
            },
            t => return Err(ServeError::Protocol(format!("unknown request tag {t}"))),
        };
        Ok(request)
    }
}

impl Response {
    /// Encodes the response as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Self::HelloOk { version } => {
                buf.push(1);
                put_u32(&mut buf, *version);
            }
            Self::FitResult {
                fingerprint,
                cache_hit,
                profile_bytes,
            } => {
                buf.push(2);
                put_u64(&mut buf, *fingerprint);
                buf.push(u8::from(*cache_hit));
                buf.extend_from_slice(profile_bytes);
            }
            Self::SynthStart { total_requests } => {
                buf.push(3);
                put_u64(&mut buf, *total_requests);
            }
            Self::SynthChunk { count, records } => {
                buf.push(4);
                put_u32(&mut buf, *count);
                buf.extend_from_slice(records);
            }
            Self::SynthEnd {
                total_requests,
                fingerprint,
            } => {
                buf.push(5);
                put_u64(&mut buf, *total_requests);
                put_u64(&mut buf, *fingerprint);
            }
            Self::StatsText { text } => {
                buf.push(6);
                buf.extend_from_slice(text.as_bytes());
            }
            Self::MetricsText { text } => {
                buf.push(7);
                buf.extend_from_slice(text.as_bytes());
            }
            Self::ShutdownOk => buf.push(8),
            Self::Error { code, message } => {
                buf.push(9);
                buf.push(code.as_byte());
                buf.extend_from_slice(message.as_bytes());
            }
            Self::CompactOk {
                generation,
                profiles,
                checkpoint_bytes,
                wal_bytes_dropped,
            } => {
                buf.push(10);
                put_u64(&mut buf, *generation);
                put_u64(&mut buf, *profiles);
                put_u64(&mut buf, *checkpoint_bytes);
                put_u64(&mut buf, *wal_bytes_dropped);
            }
            Self::CoupledChunk {
                count,
                simulated_cycles,
                stall_cycles,
                records,
            } => {
                buf.push(11);
                put_u32(&mut buf, *count);
                put_u64(&mut buf, *simulated_cycles);
                put_u64(&mut buf, *stall_cycles);
                buf.extend_from_slice(records);
            }
        }
        buf
    }

    /// Decodes a frame payload as a response.
    ///
    /// # Errors
    ///
    /// [`ServeError::Protocol`] for an empty payload, unknown tag, short
    /// body, unknown error code, or trailing bytes after a fixed-size
    /// message.
    pub fn decode(payload: &[u8]) -> Result<Self, ServeError> {
        let mut c = Cursor::new(payload);
        let tag = c.u8("response tag")?;
        let response = match tag {
            1 => {
                let version = c.u32("hello version")?;
                c.finish("hello-ok")?;
                Self::HelloOk { version }
            }
            2 => Self::FitResult {
                fingerprint: c.u64("fit fingerprint")?,
                cache_hit: c.u8("fit cache-hit flag")? != 0,
                profile_bytes: c.rest(),
            },
            3 => {
                let total_requests = c.u64("synth total")?;
                c.finish("synth-start")?;
                Self::SynthStart { total_requests }
            }
            4 => Self::SynthChunk {
                count: c.u32("chunk count")?,
                records: c.rest(),
            },
            5 => {
                let total_requests = c.u64("synth total")?;
                let fingerprint = c.u64("synth fingerprint")?;
                c.finish("synth-end")?;
                Self::SynthEnd {
                    total_requests,
                    fingerprint,
                }
            }
            6 => Self::StatsText {
                text: c.rest_utf8("stats text")?,
            },
            7 => Self::MetricsText {
                text: c.rest_utf8("metrics text")?,
            },
            8 => {
                c.finish("shutdown-ok")?;
                Self::ShutdownOk
            }
            9 => {
                let byte = c.u8("error code")?;
                let code = ErrorCode::from_byte(byte)
                    .ok_or_else(|| ServeError::Protocol(format!("unknown error code {byte}")))?;
                Self::Error {
                    code,
                    message: c.rest_utf8("error message")?,
                }
            }
            10 => {
                let generation = c.u64("compact generation")?;
                let profiles = c.u64("compact profile count")?;
                let checkpoint_bytes = c.u64("compact checkpoint bytes")?;
                let wal_bytes_dropped = c.u64("compact dropped bytes")?;
                c.finish("compact-ok")?;
                Self::CompactOk {
                    generation,
                    profiles,
                    checkpoint_bytes,
                    wal_bytes_dropped,
                }
            }
            11 => Self::CoupledChunk {
                count: c.u32("coupled chunk count")?,
                simulated_cycles: c.u64("coupled simulated cycles")?,
                stall_cycles: c.u64("coupled stall cycles")?,
                records: c.rest(),
            },
            t => return Err(ServeError::Protocol(format!("unknown response tag {t}"))),
        };
        Ok(response)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request_corpus() -> Vec<Request> {
        vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::FitProfile {
                cycles: 500_000,
                clusters: 0,
                trace_bytes: vec![1, 2, 3, 4, 5],
            },
            Request::FitProfile {
                cycles: 0,
                clusters: 16,
                trace_bytes: Vec::new(),
            },
            Request::Synthesize {
                seed: 42,
                chunk_len: 4096,
                source: ProfileSource::Fingerprint(0xdead_beef),
            },
            Request::Synthesize {
                seed: u64::MAX,
                chunk_len: 1,
                source: ProfileSource::Inline(vec![9; 64]),
            },
            Request::Stats {
                source: ProfileSource::Fingerprint(7),
            },
            Request::Stats {
                source: ProfileSource::Inline(Vec::new()),
            },
            Request::Metricsz,
            Request::Shutdown,
            Request::Ack,
            Request::Cancel,
            Request::Compact,
            Request::CoupledSynthesize {
                seed: 11,
                chunk_len: 256,
                source: ProfileSource::Fingerprint(0xfeed),
            },
            Request::CoupledSynthesize {
                seed: 0,
                chunk_len: u32::MAX,
                source: ProfileSource::Inline(vec![3; 12]),
            },
        ]
    }

    fn response_corpus() -> Vec<Response> {
        vec![
            Response::HelloOk {
                version: PROTOCOL_VERSION,
            },
            Response::FitResult {
                fingerprint: 0x0123_4567_89ab_cdef,
                cache_hit: true,
                profile_bytes: vec![77; 9],
            },
            Response::SynthStart { total_requests: 12 },
            Response::SynthChunk {
                count: 3,
                records: vec![1, 2, 3],
            },
            Response::SynthEnd {
                total_requests: 12,
                fingerprint: 99,
            },
            Response::StatsText {
                text: "leaves: 4".into(),
            },
            Response::MetricsText {
                text: "requests_total 7\n".into(),
            },
            Response::ShutdownOk,
            Response::Error {
                code: ErrorCode::Busy,
                message: "queue full".into(),
            },
            Response::CompactOk {
                generation: 2,
                profiles: 5,
                checkpoint_bytes: 4096,
                wal_bytes_dropped: 1024,
            },
            Response::CoupledChunk {
                count: 3,
                simulated_cycles: 70_000,
                stall_cycles: 1200,
                records: vec![4, 5, 6],
            },
            Response::CoupledChunk {
                count: 0,
                simulated_cycles: 0,
                stall_cycles: 0,
                records: Vec::new(),
            },
        ]
    }

    #[test]
    fn requests_round_trip() {
        for req in request_corpus() {
            let back = Request::decode(&req.encode()).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn responses_round_trip() {
        for resp in response_corpus() {
            let back = Response::decode(&resp.encode()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn empty_payload_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Response::decode(&[]).is_err());
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(
            Request::decode(&[0]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Request::decode(&[250]),
            Err(ServeError::Protocol(_))
        ));
        assert!(matches!(
            Response::decode(&[0]),
            Err(ServeError::Protocol(_))
        ));
    }

    #[test]
    fn trailing_bytes_after_fixed_messages_rejected() {
        for fixed in [
            Request::Metricsz,
            Request::Shutdown,
            Request::Ack,
            Request::Cancel,
            Request::Compact,
        ] {
            let mut payload = fixed.encode();
            payload.push(0);
            assert!(Request::decode(&payload).is_err(), "{fixed:?}");
        }
        let mut payload = Response::ShutdownOk.encode();
        payload.push(1);
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn short_bodies_rejected() {
        // Synthesize cut inside the seed.
        assert!(Request::decode(&[3, 1, 2]).is_err());
        // Stats with a fingerprint source cut inside the fingerprint.
        assert!(Request::decode(&[4, 0, 1, 2, 3]).is_err());
        // FitProfile cut inside the cluster count.
        assert!(Request::decode(&[2, 0, 0, 0, 0, 0, 0, 0, 0, 9]).is_err());
        // CoupledSynthesize cut inside the seed.
        assert!(Request::decode(&[10, 1, 2]).is_err());
        // CoupledChunk cut inside the simulated-cycle counter.
        assert!(Response::decode(&[11, 1, 0, 0, 0, 5]).is_err());
        // Error response with an unknown code byte.
        assert!(Response::decode(&[9, 0]).is_err());
    }

    #[test]
    fn non_utf8_text_rejected() {
        let mut payload = vec![6u8];
        payload.extend_from_slice(&[0xff, 0xfe]);
        assert!(Response::decode(&payload).is_err());
    }
}
