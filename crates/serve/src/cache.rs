//! Content-fingerprint-keyed LRU profile cache with optional TTL.
//!
//! Two lookups hit the same cache:
//!
//! * **By content fingerprint** — a `Synthesize`/`Stats` request names a
//!   profile by the fingerprint a `FitResult` reported.
//! * **By fit key** — a repeat `FitProfile` upload (same trace bytes,
//!   same config) maps through an alias to the profile it produced last
//!   time, so refitting is skipped entirely. This is sound because
//!   fitting is deterministic: equal inputs produce bit-identical
//!   profiles (the workspace invariant PR 3 pinned).
//!
//! Eviction is least-recently-*used* under a capacity bound; expiry is
//! age-since-insert against an optional TTL, checked lazily on access and
//! eagerly on insert. Time comes from the caller (the server's
//! [`crate::metrics::Clock`]), never from the cache itself, keeping
//! expiry testable with a frozen clock.

use std::collections::BTreeMap;
use std::sync::Arc;

use mocktails_core::Profile;

/// One resident profile.
#[derive(Debug)]
struct Entry {
    profile: Arc<Profile>,
    inserted_micros: u64,
    /// Recency stamp; key into the recency index.
    last_tick: u64,
    /// The fit key aliased to this profile, if it arrived via a fit.
    fit_key: Option<u64>,
}

/// A bounded LRU + TTL cache of fitted profiles.
#[derive(Debug)]
pub struct ProfileCache {
    capacity: usize,
    /// 0 disables expiry.
    ttl_micros: u64,
    entries: BTreeMap<u64, Entry>,
    /// tick → fingerprint, ordered oldest-first for LRU eviction.
    recency: BTreeMap<u64, u64>,
    /// fit key → fingerprint.
    aliases: BTreeMap<u64, u64>,
    tick: u64,
    evictions: u64,
    expirations: u64,
}

impl ProfileCache {
    /// A cache holding at most `capacity` profiles, each expiring
    /// `ttl_micros` after insertion (0 = never).
    pub fn new(capacity: usize, ttl_micros: u64) -> Self {
        Self {
            capacity,
            ttl_micros,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            aliases: BTreeMap::new(),
            tick: 0,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Profiles currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Profiles evicted by capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Profiles dropped by TTL expiry so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Looks up a profile by content fingerprint, refreshing its recency.
    pub fn get(&mut self, fingerprint: u64, now_micros: u64) -> Option<Arc<Profile>> {
        if self.expire_if_stale(fingerprint, now_micros) {
            return None;
        }
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&fingerprint)?;
        self.recency.remove(&entry.last_tick);
        entry.last_tick = tick;
        self.recency.insert(tick, fingerprint);
        Some(Arc::clone(&entry.profile))
    }

    /// Looks up a profile by fit key (trace bytes + config digest),
    /// returning its content fingerprint alongside it.
    pub fn get_by_fit_key(&mut self, fit_key: u64, now_micros: u64) -> Option<(u64, Arc<Profile>)> {
        let fingerprint = *self.aliases.get(&fit_key)?;
        let profile = self.get(fingerprint, now_micros)?;
        Some((fingerprint, profile))
    }

    /// Inserts a profile under its content fingerprint, optionally
    /// aliasing `fit_key` to it, evicting the least recently used entry
    /// if the cache is full. Re-inserting an existing fingerprint
    /// refreshes its recency, insertion time, and alias.
    pub fn insert(
        &mut self,
        fingerprint: u64,
        profile: Arc<Profile>,
        fit_key: Option<u64>,
        now_micros: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        // A re-insert without a fit key (e.g. the same profile arriving
        // inline) must not sever an existing fit-key alias.
        let fit_key = fit_key.or_else(|| {
            self.entries
                .get(&fingerprint)
                .and_then(|entry| entry.fit_key)
        });
        self.remove(fingerprint);
        while self.entries.len() >= self.capacity {
            // Oldest tick = least recently used.
            let Some((&tick, &victim)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&tick);
            self.drop_entry(victim);
            self.evictions += 1;
        }
        let tick = self.next_tick();
        if let Some(key) = fit_key {
            self.aliases.insert(key, fingerprint);
        }
        self.recency.insert(tick, fingerprint);
        self.entries.insert(
            fingerprint,
            Entry {
                profile,
                inserted_micros: now_micros,
                last_tick: tick,
                fit_key,
            },
        );
    }

    /// Removes `fingerprint` if resident (not counted as an eviction).
    pub fn remove(&mut self, fingerprint: u64) {
        if let Some(entry) = self.entries.get(&fingerprint) {
            self.recency.remove(&entry.last_tick);
            self.drop_entry(fingerprint);
        }
    }

    fn drop_entry(&mut self, fingerprint: u64) {
        if let Some(entry) = self.entries.remove(&fingerprint) {
            if let Some(key) = entry.fit_key {
                // Only clear the alias if it still points here.
                if self.aliases.get(&key) == Some(&fingerprint) {
                    self.aliases.remove(&key);
                }
            }
        }
    }

    /// Drops `fingerprint` if its TTL lapsed; true when it did.
    fn expire_if_stale(&mut self, fingerprint: u64, now_micros: u64) -> bool {
        if self.ttl_micros == 0 {
            return false;
        }
        let Some(entry) = self.entries.get(&fingerprint) else {
            return false;
        };
        if now_micros.saturating_sub(entry.inserted_micros) <= self.ttl_micros {
            return false;
        }
        self.recency.remove(&entry.last_tick);
        self.drop_entry(fingerprint);
        self.expirations += 1;
        true
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_core::HierarchyConfig;
    use mocktails_trace::{Request, Trace};

    fn profile(n: u64) -> Arc<Profile> {
        let trace = Trace::from_requests(
            (0..50u64)
                .map(|i| Request::read(i * 3 + n, 0x1000 + (i % 8) * 64, 64))
                .collect(),
        );
        Arc::new(Profile::fit(&trace, &HierarchyConfig::two_level_ts(100)))
    }

    #[test]
    fn get_returns_inserted_profile() {
        let mut cache = ProfileCache::new(4, 0);
        let p = profile(1);
        cache.insert(11, Arc::clone(&p), None, 0);
        assert_eq!(cache.get(11, 0).as_deref(), Some(p.as_ref()));
        assert!(cache.get(99, 0).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ProfileCache::new(2, 0);
        cache.insert(1, profile(1), None, 0);
        cache.insert(2, profile(2), None, 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, 0).is_some());
        cache.insert(3, profile(3), None, 0);
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(2, 0).is_none(), "2 was LRU and must be gone");
        assert!(cache.get(3, 0).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ttl_expires_on_access() {
        let mut cache = ProfileCache::new(4, 1000);
        cache.insert(1, profile(1), None, 0);
        assert!(cache.get(1, 1000).is_some(), "at the TTL bound: alive");
        assert!(cache.get(1, 1001).is_none(), "past the bound: expired");
        assert_eq!(cache.expirations(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn fit_key_alias_finds_profile_and_dies_with_it() {
        let mut cache = ProfileCache::new(1, 0);
        cache.insert(10, profile(1), Some(777), 0);
        let (fp, _) = cache.get_by_fit_key(777, 0).unwrap();
        assert_eq!(fp, 10);
        // Evict by inserting another profile into the 1-slot cache.
        cache.insert(20, profile(2), Some(888), 0);
        assert!(cache.get_by_fit_key(777, 0).is_none());
        assert!(cache.get_by_fit_key(888, 0).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = ProfileCache::new(0, 0);
        cache.insert(1, profile(1), Some(2), 0);
        assert!(cache.is_empty());
        assert!(cache.get(1, 0).is_none());
        assert!(cache.get_by_fit_key(2, 0).is_none());
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut cache = ProfileCache::new(4, 1000);
        cache.insert(1, profile(1), None, 0);
        cache.insert(1, profile(1), None, 900);
        assert!(cache.get(1, 1500).is_some(), "age restarts at reinsert");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut cache = ProfileCache::new(4, 0);
        cache.insert(1, profile(1), Some(5), 0);
        cache.remove(1);
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get_by_fit_key(5, 0).is_none());
    }
}
