//! Content-fingerprint-keyed LRU profile cache with optional TTL.
//!
//! Two lookups hit the same cache:
//!
//! * **By content fingerprint** — a `Synthesize`/`Stats` request names a
//!   profile by the fingerprint a `FitResult` reported.
//! * **By fit key** — a repeat `FitProfile` upload (same trace bytes,
//!   same config) maps through an alias to the profile it produced last
//!   time, so refitting is skipped entirely. This is sound because
//!   fitting is deterministic: equal inputs produce bit-identical
//!   profiles (the workspace invariant PR 3 pinned).
//!
//! Eviction is least-recently-*used* under a capacity bound; expiry is
//! age-since-insert against an optional TTL, checked lazily on access and
//! eagerly on insert. Time comes from the caller (the server's
//! [`crate::metrics::Clock`]), never from the cache itself, keeping
//! expiry testable with a frozen clock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use mocktails_core::Profile;

/// One resident profile.
#[derive(Debug)]
struct Entry {
    profile: Arc<Profile>,
    inserted_micros: u64,
    /// Recency stamp; key into the recency index.
    last_tick: u64,
    /// The fit key aliased to this profile, if it arrived via a fit.
    fit_key: Option<u64>,
}

/// A bounded LRU + TTL cache of fitted profiles.
#[derive(Debug)]
pub struct ProfileCache {
    capacity: usize,
    /// 0 disables expiry.
    ttl_micros: u64,
    entries: BTreeMap<u64, Entry>,
    /// tick → fingerprint, ordered oldest-first for LRU eviction.
    recency: BTreeMap<u64, u64>,
    /// fit key → fingerprint.
    aliases: BTreeMap<u64, u64>,
    tick: u64,
    evictions: u64,
    expirations: u64,
}

impl ProfileCache {
    /// A cache holding at most `capacity` profiles, each expiring
    /// `ttl_micros` after insertion (0 = never).
    pub fn new(capacity: usize, ttl_micros: u64) -> Self {
        Self {
            capacity,
            ttl_micros,
            entries: BTreeMap::new(),
            recency: BTreeMap::new(),
            aliases: BTreeMap::new(),
            tick: 0,
            evictions: 0,
            expirations: 0,
        }
    }

    /// Profiles currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Profiles evicted by capacity pressure so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Profiles dropped by TTL expiry so far.
    pub fn expirations(&self) -> u64 {
        self.expirations
    }

    /// Looks up a profile by content fingerprint, refreshing its recency.
    pub fn get(&mut self, fingerprint: u64, now_micros: u64) -> Option<Arc<Profile>> {
        if self.expire_if_stale(fingerprint, now_micros) {
            return None;
        }
        let tick = self.next_tick();
        let entry = self.entries.get_mut(&fingerprint)?;
        self.recency.remove(&entry.last_tick);
        entry.last_tick = tick;
        self.recency.insert(tick, fingerprint);
        Some(Arc::clone(&entry.profile))
    }

    /// Looks up a profile by fit key (trace bytes + config digest),
    /// returning its content fingerprint alongside it.
    pub fn get_by_fit_key(&mut self, fit_key: u64, now_micros: u64) -> Option<(u64, Arc<Profile>)> {
        let fingerprint = *self.aliases.get(&fit_key)?;
        let profile = self.get(fingerprint, now_micros)?;
        Some((fingerprint, profile))
    }

    /// Inserts a profile under its content fingerprint, optionally
    /// aliasing `fit_key` to it, evicting the least recently used entry
    /// if the cache is full. Re-inserting an existing fingerprint
    /// refreshes its recency, insertion time, and alias.
    pub fn insert(
        &mut self,
        fingerprint: u64,
        profile: Arc<Profile>,
        fit_key: Option<u64>,
        now_micros: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        // A re-insert without a fit key (e.g. the same profile arriving
        // inline) must not sever an existing fit-key alias.
        let fit_key = fit_key.or_else(|| {
            self.entries
                .get(&fingerprint)
                .and_then(|entry| entry.fit_key)
        });
        self.remove(fingerprint);
        while self.entries.len() >= self.capacity {
            // Oldest tick = least recently used.
            let Some((&tick, &victim)) = self.recency.iter().next() else {
                break;
            };
            self.recency.remove(&tick);
            self.drop_entry(victim);
            self.evictions += 1;
        }
        let tick = self.next_tick();
        if let Some(key) = fit_key {
            self.aliases.insert(key, fingerprint);
        }
        self.recency.insert(tick, fingerprint);
        self.entries.insert(
            fingerprint,
            Entry {
                profile,
                inserted_micros: now_micros,
                last_tick: tick,
                fit_key,
            },
        );
    }

    /// Removes `fingerprint` if resident (not counted as an eviction).
    pub fn remove(&mut self, fingerprint: u64) {
        if let Some(entry) = self.entries.get(&fingerprint) {
            self.recency.remove(&entry.last_tick);
            self.drop_entry(fingerprint);
        }
    }

    fn drop_entry(&mut self, fingerprint: u64) {
        if let Some(entry) = self.entries.remove(&fingerprint) {
            if let Some(key) = entry.fit_key {
                // Only clear the alias if it still points here.
                if self.aliases.get(&key) == Some(&fingerprint) {
                    self.aliases.remove(&key);
                }
            }
        }
    }

    /// Drops `fingerprint` if its TTL lapsed; true when it did.
    fn expire_if_stale(&mut self, fingerprint: u64, now_micros: u64) -> bool {
        if self.ttl_micros == 0 {
            return false;
        }
        let Some(entry) = self.entries.get(&fingerprint) else {
            return false;
        };
        if now_micros.saturating_sub(entry.inserted_micros) <= self.ttl_micros {
            return false;
        }
        self.recency.remove(&entry.last_tick);
        self.drop_entry(fingerprint);
        self.expirations += 1;
        true
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Aggregate tallies across every shard of a [`ShardedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Profiles currently resident (all shards).
    pub entries: u64,
    /// Capacity evictions so far (all shards).
    pub evictions: u64,
    /// TTL expirations so far (all shards).
    pub expirations: u64,
}

/// [`ProfileCache`] sharded N ways by content fingerprint, one lock per
/// shard, so concurrent lookups on different profiles never contend.
///
/// Fingerprints route to entry shards by `fingerprint % shards`; fit-key
/// aliases live in their own shard array keyed by `fit_key % shards`
/// (the alias's fingerprint may live in any entry shard). No operation
/// ever holds two shard locks at once: alias resolution copies the
/// fingerprint out, releases the alias shard, then takes the entry
/// shard. The price is that an alias can briefly outlive its entry —
/// stale aliases are dropped lazily on lookup and bounded by a
/// deterministic per-shard cap.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<ProfileCache>>,
    aliases: Vec<Mutex<BTreeMap<u64, u64>>>,
    /// Fit-key aliases one alias shard retains at most (oldest key
    /// evicted first — deterministic, not LRU).
    alias_cap: usize,
}

impl ShardedCache {
    /// A cache of `capacity` profiles total, split over `shards` locks
    /// (clamped to at least 1), each entry expiring `ttl_micros` after
    /// insertion (0 = never).
    pub fn new(shards: usize, capacity: usize, ttl_micros: u64) -> Self {
        let shards = shards.max(1);
        let per_shard = capacity.div_ceil(shards);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(ProfileCache::new(per_shard, ttl_micros)))
                .collect(),
            aliases: (0..shards).map(|_| Mutex::new(BTreeMap::new())).collect(),
            alias_cap: (per_shard * 4).max(16),
        }
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The entry shard `fingerprint` routes to.
    pub fn shard_of(&self, fingerprint: u64) -> usize {
        (fingerprint % self.shards.len() as u64) as usize
    }

    fn shard(&self, fingerprint: u64) -> MutexGuard<'_, ProfileCache> {
        let shard = &self.shards[self.shard_of(fingerprint)];
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn alias_shard(&self, fit_key: u64) -> MutexGuard<'_, BTreeMap<u64, u64>> {
        let alias = &self.aliases[(fit_key % self.aliases.len() as u64) as usize];
        alias.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up a profile by content fingerprint, refreshing its recency
    /// within its shard.
    pub fn get(&self, fingerprint: u64, now_micros: u64) -> Option<Arc<Profile>> {
        let mut shard = self.shard(fingerprint);
        shard.get(fingerprint, now_micros)
    }

    /// Looks up a profile by fit key. A stale alias (its profile was
    /// evicted or expired) is removed and reported as a miss.
    pub fn get_by_fit_key(&self, fit_key: u64, now_micros: u64) -> Option<(u64, Arc<Profile>)> {
        let fingerprint = {
            let alias = self.alias_shard(fit_key);
            *alias.get(&fit_key)?
        };
        let found = {
            let mut shard = self.shard(fingerprint);
            shard.get(fingerprint, now_micros)
        };
        match found {
            Some(profile) => Some((fingerprint, profile)),
            None => {
                let mut alias = self.alias_shard(fit_key);
                // Only clear the alias if it still points at the entry
                // that just missed (an insert may have raced it forward).
                if alias.get(&fit_key) == Some(&fingerprint) {
                    alias.remove(&fit_key);
                }
                None
            }
        }
    }

    /// Inserts a profile under its content fingerprint, optionally
    /// aliasing `fit_key` to it.
    pub fn insert(
        &self,
        fingerprint: u64,
        profile: Arc<Profile>,
        fit_key: Option<u64>,
        now_micros: u64,
    ) {
        {
            let mut shard = self.shard(fingerprint);
            // Aliases are managed at this level; the per-shard cache
            // never sees fit keys.
            shard.insert(fingerprint, profile, None, now_micros);
        }
        if let Some(key) = fit_key {
            let mut alias = self.alias_shard(key);
            // One insert adds at most one entry, so one eviction keeps
            // the map at its cap — no loop, no guard held across one.
            if alias.len() >= self.alias_cap && !alias.contains_key(&key) {
                alias.pop_first();
            }
            alias.insert(key, fingerprint);
        }
    }

    /// Profiles currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate entry/eviction/expiration tallies, summed shard by
    /// shard (one lock at a time).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats {
            entries: 0,
            evictions: 0,
            expirations: 0,
        };
        for locked in &self.shards {
            let shard = locked.lock().unwrap_or_else(PoisonError::into_inner);
            stats.entries += shard.len() as u64;
            stats.evictions += shard.evictions();
            stats.expirations += shard.expirations();
        }
        stats
    }
}

/// Per-shard admission budget: a fixed number of in-flight requests per
/// shard, acquired lock-free. Holding a [`ShardSlot`] is holding the
/// budget; dropping it releases the slot.
#[derive(Debug)]
pub(crate) struct ShardAdmission {
    counters: Arc<Vec<AtomicU64>>,
    budget: u64,
}

impl ShardAdmission {
    pub(crate) fn new(shards: usize, budget: usize) -> Self {
        let shards = shards.max(1);
        Self {
            counters: Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect()),
            budget: budget as u64,
        }
    }

    /// The shard an admission key routes to (same modulus as the cache).
    pub(crate) fn shard_of(&self, key: u64) -> usize {
        (key % self.counters.len() as u64) as usize
    }

    /// Tries to take one slot on `key`'s shard; `None` means the shard
    /// is at budget and the request must be shed with `Busy`.
    pub(crate) fn try_acquire(&self, key: u64) -> Option<ShardSlot> {
        let shard = self.shard_of(key);
        // lint: allow(L016, shard_of reduces the key modulo counters.len, so the index is always in range)
        let counter = &self.counters[shard];
        let mut current = counter.load(Ordering::SeqCst);
        loop {
            if current >= self.budget {
                return None;
            }
            match counter.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => {
                    return Some(ShardSlot {
                        counters: Arc::clone(&self.counters),
                        shard,
                    })
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Requests currently admitted across all shards.
    pub(crate) fn total_inflight(&self) -> u64 {
        self.counters.iter().map(|c| c.load(Ordering::SeqCst)).sum()
    }
}

/// One admitted request's slot in its shard budget; releases on drop.
#[derive(Debug)]
pub(crate) struct ShardSlot {
    counters: Arc<Vec<AtomicU64>>,
    shard: usize,
}

impl Drop for ShardSlot {
    fn drop(&mut self) {
        self.counters[self.shard].fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_core::HierarchyConfig;
    use mocktails_trace::{Request, Trace};

    fn profile(n: u64) -> Arc<Profile> {
        let trace = Trace::from_requests(
            (0..50u64)
                .map(|i| Request::read(i * 3 + n, 0x1000 + (i % 8) * 64, 64))
                .collect(),
        );
        Arc::new(Profile::fit(&trace, &HierarchyConfig::two_level_ts(100)))
    }

    #[test]
    fn get_returns_inserted_profile() {
        let mut cache = ProfileCache::new(4, 0);
        let p = profile(1);
        cache.insert(11, Arc::clone(&p), None, 0);
        assert_eq!(cache.get(11, 0).as_deref(), Some(p.as_ref()));
        assert!(cache.get(99, 0).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ProfileCache::new(2, 0);
        cache.insert(1, profile(1), None, 0);
        cache.insert(2, profile(2), None, 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1, 0).is_some());
        cache.insert(3, profile(3), None, 0);
        assert!(cache.get(1, 0).is_some());
        assert!(cache.get(2, 0).is_none(), "2 was LRU and must be gone");
        assert!(cache.get(3, 0).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn ttl_expires_on_access() {
        let mut cache = ProfileCache::new(4, 1000);
        cache.insert(1, profile(1), None, 0);
        assert!(cache.get(1, 1000).is_some(), "at the TTL bound: alive");
        assert!(cache.get(1, 1001).is_none(), "past the bound: expired");
        assert_eq!(cache.expirations(), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn fit_key_alias_finds_profile_and_dies_with_it() {
        let mut cache = ProfileCache::new(1, 0);
        cache.insert(10, profile(1), Some(777), 0);
        let (fp, _) = cache.get_by_fit_key(777, 0).unwrap();
        assert_eq!(fp, 10);
        // Evict by inserting another profile into the 1-slot cache.
        cache.insert(20, profile(2), Some(888), 0);
        assert!(cache.get_by_fit_key(777, 0).is_none());
        assert!(cache.get_by_fit_key(888, 0).is_some());
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let mut cache = ProfileCache::new(0, 0);
        cache.insert(1, profile(1), Some(2), 0);
        assert!(cache.is_empty());
        assert!(cache.get(1, 0).is_none());
        assert!(cache.get_by_fit_key(2, 0).is_none());
    }

    #[test]
    fn reinsert_refreshes_age() {
        let mut cache = ProfileCache::new(4, 1000);
        cache.insert(1, profile(1), None, 0);
        cache.insert(1, profile(1), None, 900);
        assert!(cache.get(1, 1500).is_some(), "age restarts at reinsert");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn remove_is_not_an_eviction() {
        let mut cache = ProfileCache::new(4, 0);
        cache.insert(1, profile(1), Some(5), 0);
        cache.remove(1);
        assert!(cache.is_empty());
        assert_eq!(cache.evictions(), 0);
        assert!(cache.get_by_fit_key(5, 0).is_none());
    }

    #[test]
    fn sharded_fingerprints_distribute_by_modulus() {
        let cache = ShardedCache::new(8, 64, 0);
        assert_eq!(cache.shards(), 8);
        let mut hit = [false; 8];
        for fp in 0..64u64 {
            let shard = cache.shard_of(fp);
            assert_eq!(shard, (fp % 8) as usize);
            hit[shard] = true;
        }
        assert!(hit.iter().all(|&h| h), "every shard must receive keys");
        // Zero shards is clamped, not a panic.
        assert_eq!(ShardedCache::new(0, 4, 0).shards(), 1);
    }

    #[test]
    fn sharded_get_and_fit_key_alias_cross_shards() {
        let cache = ShardedCache::new(4, 16, 0);
        let p = profile(1);
        // Fingerprint 6 lives in shard 2; alias key 9 lives in alias
        // shard 1 — the lookup must bridge them.
        cache.insert(6, Arc::clone(&p), Some(9), 0);
        assert_eq!(cache.get(6, 0).as_deref(), Some(p.as_ref()));
        let (fp, _) = cache.get_by_fit_key(9, 0).unwrap();
        assert_eq!(fp, 6);
        assert!(cache.get(7, 0).is_none());
        assert!(cache.get_by_fit_key(10, 0).is_none());
    }

    #[test]
    fn sharded_ttl_expires_per_shard_under_manual_clock() {
        use crate::metrics::{Clock, ManualClock};
        let clock = ManualClock::new();
        let cache = ShardedCache::new(4, 16, 1000);
        cache.insert(0, profile(1), None, clock.now_micros()); // shard 0
        clock.advance(600);
        cache.insert(1, profile(2), None, clock.now_micros()); // shard 1
        clock.advance(600); // now 1200: entry 0 is 1200 old, entry 1 is 600 old
        assert!(
            cache.get(0, clock.now_micros()).is_none(),
            "shard 0 expired"
        );
        assert!(cache.get(1, clock.now_micros()).is_some(), "shard 1 alive");
        let stats = cache.stats();
        assert_eq!(stats.expirations, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn sharded_stale_alias_is_dropped_on_miss() {
        let cache = ShardedCache::new(2, 2, 1000);
        cache.insert(4, profile(1), Some(8), 0);
        // Let the entry expire; the alias briefly outlives it.
        assert!(cache.get_by_fit_key(8, 5000).is_none());
        // A second lookup misses in the alias map itself.
        assert!(cache.get_by_fit_key(8, 0).is_none());
    }

    #[test]
    fn sharded_stats_are_deterministic_at_any_thread_count() {
        // The same disjoint work split over 1, 2 and 8 threads must
        // leave identical aggregate stats: shard state only depends on
        // which keys hit which shard, never on interleaving.
        let run = |threads: usize| {
            let cache = Arc::new(ShardedCache::new(8, 16, 1000));
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let cache = Arc::clone(&cache);
                    scope.spawn(move || {
                        for key in (t as u64..64).step_by(threads) {
                            cache.insert(key, profile(key), Some(key + 1000), 0);
                            assert!(cache.get(key, 0).is_some());
                        }
                    });
                }
            });
            // Everything inserted at t=0 expires at once.
            for key in 0..64u64 {
                let _ = cache.get(key, 5000);
            }
            cache.stats()
        };
        let baseline = run(1);
        assert_eq!(run(2), baseline);
        assert_eq!(run(8), baseline);
        assert_eq!(baseline.entries, 0, "all expired or evicted");
        assert_eq!(
            baseline.evictions + baseline.expirations,
            64,
            "every inserted profile left by eviction or expiry"
        );
    }

    /// The eviction boundary where TTL expiry and LRU eviction race on a
    /// full shard: expiry is lazy (charged on the access that discovers
    /// it), so a stale entry that capacity pressure claims first is
    /// counted as an *eviction*, never double-counted as both.
    #[test]
    fn ttl_expiry_races_lru_eviction_at_the_shard_boundary() {
        use crate::metrics::{Clock, ManualClock};
        let clock = ManualClock::new();
        // 2 shards × 2 slots; even fingerprints route to shard 0.
        let cache = ShardedCache::new(2, 4, 1_000);
        cache.insert(0, profile(1), None, clock.now_micros());
        cache.insert(2, profile(2), None, clock.now_micros());
        cache.insert(1, profile(3), None, clock.now_micros());
        clock.advance(1_500); // every entry is now past its TTL

        // Access discovers expiry: entry 0 leaves as an expiration,
        // freeing its slot before any capacity pressure.
        assert!(cache.get(0, clock.now_micros()).is_none());

        // Refill shard 0. The first insert lands in the freed slot; the
        // second finds the shard full and LRU-evicts the *stale* entry 2
        // — capacity got there before any access could expire it.
        cache.insert(4, profile(4), None, clock.now_micros());
        cache.insert(6, profile(5), None, clock.now_micros());
        assert!(cache.get(4, clock.now_micros()).is_some());
        assert!(cache.get(6, clock.now_micros()).is_some());

        // Per-shard tallies under the manual clock: shard 0 saw exactly
        // one expiration and one eviction; untouched shard 1 saw
        // neither, and still counts its stale entry as resident because
        // nothing has looked at it yet.
        let shard0 = cache.shards[0].lock().unwrap();
        assert_eq!(shard0.expirations(), 1, "entry 0, charged on access");
        assert_eq!(shard0.evictions(), 1, "entry 2, claimed by capacity");
        assert_eq!(shard0.len(), 2);
        drop(shard0);
        let shard1 = cache.shards[1].lock().unwrap();
        assert_eq!(shard1.expirations(), 0);
        assert_eq!(shard1.evictions(), 0);
        assert_eq!(shard1.len(), 1, "stale entry 1 is resident until read");
        drop(shard1);
        assert_eq!(
            cache.stats(),
            CacheStats {
                entries: 3,
                evictions: 1,
                expirations: 1
            }
        );

        // Touching shard 1 finally charges its expiration there.
        assert!(cache.get(1, clock.now_micros()).is_none());
        let shard1 = cache.shards[1].lock().unwrap();
        assert_eq!(shard1.expirations(), 1);
        assert_eq!(shard1.len(), 0);
    }

    /// A `get` that lands exactly at the TTL bound refreshes recency
    /// without expiring, which redirects the following capacity eviction
    /// to the other resident — the refresh and the eviction race in
    /// recency order, not insertion order.
    #[test]
    fn boundary_get_refreshes_recency_and_redirects_the_eviction() {
        use crate::metrics::{Clock, ManualClock};
        let clock = ManualClock::new();
        // One shard, two slots: a pure LRU boundary.
        let cache = ShardedCache::new(1, 2, 1_000);
        cache.insert(10, profile(1), Some(100), clock.now_micros());
        clock.advance(500);
        cache.insert(20, profile(2), Some(200), clock.now_micros());
        clock.advance(500);
        // Entry 10 is exactly 1000 old — at the bound is alive, and the
        // hit makes the *younger* entry 20 the LRU victim.
        assert!(cache.get(10, clock.now_micros()).is_some());
        cache.insert(30, profile(3), Some(300), clock.now_micros());
        assert!(cache.get(10, clock.now_micros()).is_some());
        assert!(cache.get(30, clock.now_micros()).is_some());
        assert!(cache.get(20, clock.now_micros()).is_none());
        // The evicted entry's fit-key alias dies with it (reported as a
        // miss and dropped); the survivors' aliases still resolve.
        assert!(cache.get_by_fit_key(200, clock.now_micros()).is_none());
        assert!(cache.get_by_fit_key(100, clock.now_micros()).is_some());
        assert!(cache.get_by_fit_key(300, clock.now_micros()).is_some());
        assert_eq!(
            cache.stats(),
            CacheStats {
                entries: 2,
                evictions: 1,
                expirations: 0
            }
        );
    }

    #[test]
    fn admission_budget_is_per_shard_and_released_on_drop() {
        let admission = ShardAdmission::new(2, 1);
        let slot = admission.try_acquire(0).unwrap();
        assert!(admission.try_acquire(2).is_none(), "same shard: at budget");
        assert!(admission.try_acquire(1).is_some(), "other shard: admitted");
        assert_eq!(admission.total_inflight(), 1, "shard 1 slot was dropped");
        drop(slot);
        assert!(admission.try_acquire(0).is_some(), "released on drop");
    }
}
