//! Shared plumbing for the experiment benches.
//!
//! Every `benches/figNN_*.rs` target regenerates one table or figure of
//! the paper. Set `MOCKTAILS_QUICK=1` to run on truncated traces (a smoke
//! run); the default regenerates the full-size experiment recorded in
//! EXPERIMENTS.md.

#![warn(missing_docs)]

use mocktails_sim::harness::{CacheEvalOptions, EvalOptions};

/// Returns `true` when `MOCKTAILS_QUICK` requests a reduced-size run.
pub fn quick_mode() -> bool {
    std::env::var("MOCKTAILS_QUICK")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// DRAM evaluation options honouring [`quick_mode`].
pub fn eval_options() -> EvalOptions {
    if quick_mode() {
        EvalOptions::quick()
    } else {
        EvalOptions::default()
    }
}

/// Cache evaluation options honouring [`quick_mode`].
pub fn cache_options() -> CacheEvalOptions {
    if quick_mode() {
        CacheEvalOptions::quick()
    } else {
        CacheEvalOptions::default()
    }
}

/// Prints an experiment header with timing, runs it, prints the report.
pub fn run_experiment(name: &str, f: impl FnOnce() -> String) {
    let mode = if quick_mode() { "quick" } else { "full" };
    eprintln!("== {name} ({mode} mode) ==");
    let start = std::time::Instant::now();
    let report = f();
    println!("{report}");
    eprintln!("== {name} done in {:.1?} ==", start.elapsed());
}
