//! Criterion micro-benchmarks of the Mocktails pipeline stages:
//! partitioning, model fitting, synthesis and DRAM simulation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mocktails_core::partition::spatial;
use mocktails_core::{HierarchyConfig, Profile};
use mocktails_dram::{DramConfig, MemorySystem};
use mocktails_workloads::catalog;

fn pipeline_benches(c: &mut Criterion) {
    let trace = catalog::by_name("FBC-Linear1")
        .expect("catalog trace")
        .generate()
        .truncate_to(20_000);
    let config = HierarchyConfig::two_level_ts(500_000);
    let profile = Profile::fit(&trace, &config);

    c.bench_function("dynamic_spatial_partitioning_20k", |b| {
        b.iter(|| spatial::dynamic(trace.requests(), true))
    });

    c.bench_function("profile_fit_20k", |b| {
        b.iter(|| Profile::fit(&trace, &config))
    });

    c.bench_function("synthesize_20k", |b| b.iter(|| profile.synthesize(1)));

    c.bench_function("dram_replay_20k", |b| {
        b.iter_batched(
            || MemorySystem::new(DramConfig::default()),
            |mut system| system.run_trace(&trace),
            BatchSize::SmallInput,
        )
    });

    let mut buf = Vec::new();
    profile.write(&mut buf).expect("profile encodes");
    c.bench_function("profile_decode", |b| {
        b.iter(|| Profile::read(&mut buf.as_slice()).expect("round trip"))
    });
}

criterion_group!(benches, pipeline_benches);
criterion_main!(benches);
