//! Micro-benchmarks of the Mocktails pipeline stages: partitioning,
//! model fitting, synthesis and DRAM simulation.
//!
//! Hand-rolled harness (no external bench crate, so the workspace builds
//! hermetically): each stage runs for a fixed number of timed iterations
//! after a short warm-up and reports the mean wall time per iteration.

use std::hint::black_box;
use std::time::Instant;

use mocktails_core::partition::spatial;
use mocktails_core::{HierarchyConfig, Profile};
use mocktails_dram::{DramConfig, MemorySystem};
use mocktails_trace::DecodeOptions;
use mocktails_workloads::catalog;

const WARMUP_ITERS: u32 = 3;
const TIMED_ITERS: u32 = 20;

fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    for _ in 0..WARMUP_ITERS {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..TIMED_ITERS {
        black_box(f());
    }
    let per_iter = start.elapsed() / TIMED_ITERS;
    println!("{name:<40} {per_iter:>12.2?}/iter ({TIMED_ITERS} iters)");
}

fn main() {
    let trace = catalog::by_name("FBC-Linear1")
        .expect("catalog trace")
        .generate()
        .truncate_to(20_000);
    let config = HierarchyConfig::two_level_ts(500_000);
    let profile = Profile::fit(&trace, &config);

    bench("dynamic_spatial_partitioning_20k", || {
        spatial::dynamic(trace.requests(), true)
    });

    bench("profile_fit_20k", || Profile::fit(&trace, &config));

    bench("synthesize_20k", || profile.synthesize(1));

    bench("dram_replay_20k", || {
        MemorySystem::new(DramConfig::default()).run_trace(&trace)
    });

    let mut buf = Vec::new();
    profile.write(&mut buf).expect("profile encodes");
    bench("profile_decode", || {
        Profile::read(&mut buf.as_slice(), &DecodeOptions::trusted()).expect("round trip")
    });
}
