//! Ablation: lonely-request merging on/off.

use mocktails_sim::experiments::ablation;

fn main() {
    mocktails_bench::run_experiment("Ablation: lonely requests", || {
        let rows = ablation::lonely(&mocktails_bench::eval_options());
        ablation::report("Lonely-request merging", &rows)
    });
}
