//! Regenerates Fig. 16: L1 write-backs vs associativity for six
//! benchmarks.

fn main() {
    mocktails_bench::run_experiment("Fig. 16", || {
        mocktails_sim::experiments::cache::fig16_report(&mocktails_bench::cache_options())
    });
}
