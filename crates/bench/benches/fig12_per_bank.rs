//! Regenerates Fig. 12: read/write bursts per bank per channel,
//! FBC-Linear1.

fn main() {
    mocktails_bench::run_experiment("Fig. 12", || {
        mocktails_sim::experiments::dram::fig12_report(&mocktails_bench::eval_options())
    });
}
