//! Regenerates Fig. 6: geometric-mean error of read/write DRAM bursts per
//! device, 2L-TS (McC) vs 2L-TS (STM).

fn main() {
    mocktails_bench::run_experiment("Fig. 6", || {
        mocktails_sim::experiments::dram::fig06_report(&mocktails_bench::eval_options())
    });
}
