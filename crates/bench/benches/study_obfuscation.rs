//! Obfuscation study: distributional fidelity vs sequence leakage.

fn main() {
    mocktails_bench::run_experiment("Obfuscation study", || {
        mocktails_sim::experiments::meta::obfuscation_report(&mocktails_bench::eval_options())
    });
}
