//! Regenerates Fig. 8: per-channel write-queue-length distributions seen
//! by arriving requests, T-Rex1.

fn main() {
    mocktails_bench::run_experiment("Fig. 8", || {
        mocktails_sim::experiments::dram::fig08_report(&mocktails_bench::eval_options())
    });
}
