//! §VI design-space study: controller page/scheduling policies explored
//! through Mocktails profiles, with conclusion-preservation checking.

fn main() {
    mocktails_bench::run_experiment("Policy study", || {
        mocktails_sim::experiments::policy::report(&mocktails_bench::eval_options())
    });
}
