//! Regenerates Fig. 9: geometric-mean error of read/write row hits per
//! device.

fn main() {
    mocktails_bench::run_experiment("Fig. 9", || {
        mocktails_sim::experiments::dram::fig09_report(&mocktails_bench::eval_options())
    });
}
