//! Regenerates Fig. 11: average reads per read→write turnaround per
//! channel for the DPU frame-buffer traces.

fn main() {
    mocktails_bench::run_experiment("Fig. 11", || {
        mocktails_sim::experiments::dram::fig11_report(&mocktails_bench::eval_options())
    });
}
