//! Ablation: hierarchy shapes (1L-T, 1L-S, 2L-TS, 2L-ST).

use mocktails_sim::experiments::ablation;

fn main() {
    mocktails_bench::run_experiment("Ablation: hierarchy", || {
        let rows = ablation::hierarchy(&mocktails_bench::eval_options());
        ablation::report("Hierarchy shape", &rows)
    });
}
