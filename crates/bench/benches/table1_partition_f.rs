//! Regenerates Table I: partition F's stride/size sequences under one vs.
//! two temporal partitions.

fn main() {
    mocktails_bench::run_experiment("Table I", || {
        mocktails_sim::experiments::meta::table1_report()
    });
}
