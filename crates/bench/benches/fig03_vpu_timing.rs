//! Regenerates Fig. 3: the burst/idle injection timing of HEVC1.

fn main() {
    mocktails_bench::run_experiment("Fig. 3", || {
        mocktails_sim::experiments::meta::fig03_report()
    });
}
