//! Regenerates Fig. 15: L1 miss rate vs associativity for six benchmarks.

fn main() {
    mocktails_bench::run_experiment("Fig. 15", || {
        mocktails_sim::experiments::cache::fig15_report(&mocktails_bench::cache_options())
    });
}
