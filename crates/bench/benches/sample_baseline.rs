//! The pinned sampled-fidelity baseline: measures `mocktails-sample`'s
//! clustering and fit costs against the full fit, plus the closed-loop
//! coupled-stream tail through a live server, and writes `BENCH_4.json`
//! at the repository root alongside `BENCH_1.json` (compute),
//! `BENCH_2.json` (store), and `BENCH_3.json` (serving).
//!
//! Three figures are pinned:
//!
//! * clustering time — behaviour vectors + seeded k-means over every leaf
//!   partition, the overhead sampling adds before it saves anything;
//! * sampled-vs-full fit cost — the deterministic requests-modeled
//!   reduction from the frontier report (the gated figure; the wall-clock
//!   speedup is recorded alongside as an informational number) and the
//!   member-weighted similarity error it costs;
//! * coupled-stream p50/p99 — `CoupledSynthesize` round trips against a
//!   live server pacing every chunk through the DRAM model, reassembled
//!   bytes compared across runs for determinism.
//!
//! Hand-rolled harness like the other benches (no external bench crate,
//! so the workspace builds hermetically); medians over a fixed iteration
//! count keep single-run noise out of the pinned file.

use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

use mocktails_core::partition::hierarchy;
use mocktails_core::{HierarchyConfig, LayerSpec, Profile};
use mocktails_pool::Parallelism;
use mocktails_sample::{kmeans, sampled_fit, vector, BehaviourVector, SampleConfig};
use mocktails_serve::{Client, MonotonicClock, ProfileSource, Server, ServerConfig};
use mocktails_trace::codec::write_trace;
use mocktails_trace::Trace;
use mocktails_workloads::catalog;

const TIMED_ITERS: usize = 5;
const CYCLES: u64 = 50_000;
const CLUSTERS: usize = 16;
const SAMPLE_SEED: u64 = 0;
const COUPLE_SEED: u64 = 0xbe7c;
const COUPLE_CHUNK: u32 = 512;
const COUPLE_STREAMS: usize = 12;

/// Median wall-clock seconds of `f` over [`TIMED_ITERS`] runs, after one
/// warm-up run.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn trace_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(&mut bytes, trace).expect("encoding to memory");
    bytes
}

fn offline_config() -> HierarchyConfig {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(CYCLES))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .expect("valid config")
}

fn main() {
    let trace = catalog::by_name("HEVC1").expect("catalog trace").generate();
    let config = offline_config();
    let sample = SampleConfig {
        clusters: CLUSTERS,
        seed: SAMPLE_SEED,
    };

    // Clustering time: vectors + k-means only, the pure sampling overhead.
    let partitions = hierarchy::partition(&trace, &config);
    let cluster_secs = median_secs(|| {
        let vectors = Parallelism::sequential().map(&partitions, BehaviourVector::of);
        let points = vector::normalized(&vectors);
        kmeans::cluster(&points, CLUSTERS, SAMPLE_SEED, Parallelism::sequential())
    });

    // Fit cost: the gated figure is the deterministic requests-modeled
    // reduction; wall-clock speedup rides along informationally (it is
    // machine-dependent and bounded below the cost reduction because
    // partitioning and assembly are paid either way).
    let full_secs = median_secs(|| Profile::fit_with(&trace, &config, Parallelism::sequential()));
    let sampled_secs =
        median_secs(|| sampled_fit(&trace, &config, &sample, Parallelism::sequential()));
    let fit = sampled_fit(&trace, &config, &sample, Parallelism::sequential());
    let report = &fit.report;
    assert!(
        report.cost_reduction() >= 5.0,
        "sampled fit must model at least 5x fewer requests (got {:.2}x)",
        report.cost_reduction(),
    );

    // Coupled-stream tail: a live server paces every chunk through the
    // DRAM model; reassembled bytes must agree across streams.
    let server_config = ServerConfig::builder()
        .workers(2)
        .queue_cap(64)
        .cache_capacity(16)
        .deadline_micros(120_000_000)
        .build()
        .expect("valid bench config");
    let server = Server::bind(
        "127.0.0.1:0",
        server_config,
        Arc::new(MonotonicClock::new()),
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let mut client = Client::connect(&addr).expect("connect");
    let fingerprint = client
        .fit_clustered(CYCLES, CLUSTERS as u32, trace_bytes(&trace))
        .expect("sampled fit over the wire")
        .fingerprint;

    let mut reference: Option<Vec<u8>> = None;
    let mut latencies: Vec<Duration> = (0..COUPLE_STREAMS)
        .map(|_| {
            let started = Instant::now();
            let outcome = client
                .couple(
                    COUPLE_SEED,
                    COUPLE_CHUNK,
                    ProfileSource::Fingerprint(fingerprint),
                )
                .expect("coupled stream");
            let elapsed = started.elapsed();
            match &reference {
                Some(bytes) => assert_eq!(
                    &outcome.trace_bytes, bytes,
                    "coupled stream diverged between runs"
                ),
                None => reference = Some(outcome.trace_bytes),
            }
            elapsed
        })
        .collect();
    latencies.sort();
    let coupled_p50 = latencies[latencies.len() / 2];
    let coupled_p99 = latencies[(latencies.len() * 99) / 100];

    client.shutdown().expect("shutdown");
    server_thread.join().expect("server exits cleanly");

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"sample_baseline\",\n  \
         \"timed_iters\": {TIMED_ITERS},\n  \"clustering\": {{\n    \
         \"partitions\": {},\n    \"clusters\": {},\n    \
         \"seconds\": {cluster_secs:.6}\n  }},\n  \"fit\": {{\n    \
         \"full_seconds\": {full_secs:.6},\n    \
         \"sampled_seconds\": {sampled_secs:.6},\n    \
         \"wall_speedup\": {:.2},\n    \
         \"fit_cost_reduction\": {:.2},\n    \
         \"mean_error\": {:.4},\n    \
         \"max_error\": {:.4}\n  }},\n  \"coupled\": {{\n    \
         \"streams\": {COUPLE_STREAMS},\n    \
         \"chunk_len\": {COUPLE_CHUNK},\n    \
         \"paced_p50_micros\": {},\n    \
         \"paced_p99_micros\": {}\n  }}\n}}\n",
        report.partitions(),
        report.clusters().len(),
        full_secs / sampled_secs,
        report.cost_reduction(),
        report.mean_error(),
        report.max_error(),
        coupled_p50.as_micros(),
        coupled_p99.as_micros(),
    );
    print!("{json}");

    let crates_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let out = crates_root.join("..").join("BENCH_4.json");
    std::fs::write(&out, &json).expect("write BENCH_4.json");
    println!("wrote {}", out.display());
}
