//! Regenerates Table II: the trace catalog.

fn main() {
    mocktails_bench::run_experiment("Table II", || {
        format!(
            "{}\n{}",
            mocktails_sim::experiments::meta::table2_report(),
            mocktails_sim::experiments::meta::table3_report()
        )
    });
}
