//! Regenerates Fig. 2: requests in the busiest 4 KiB region of the HEVC1
//! workload, grouped by dynamic spatial partition.

fn main() {
    mocktails_bench::run_experiment("Fig. 2", || {
        mocktails_sim::experiments::meta::fig02_report()
    });
}
