//! The pinned store baseline: measures the durable-store hot paths and
//! writes `BENCH_2.json` at the repository root, alongside the existing
//! `BENCH_1.json` perf numbers.
//!
//! Two figures are pinned:
//!
//! * WAL append throughput (MB/s) — the fsync-bound cost every
//!   `FitProfile` pays before its ack;
//! * cold-start replay time — opening a store whose log holds the full
//!   record set, which bounds how long a restarted server stays cold.
//!
//! Hand-rolled harness like the other benches (no external bench crate,
//! so the workspace builds hermetically); medians over a fixed iteration
//! count keep single-run noise out of the pinned file.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use mocktails_core::{HierarchyConfig, Profile, ProfileRecord};
use mocktails_store::ProfileStore;
use mocktails_workloads::catalog;

const TIMED_ITERS: usize = 5;
const PROFILES: usize = 8;

/// Median wall-clock seconds of `f` over [`TIMED_ITERS`] runs, after one
/// warm-up run.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mocktails-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn main() {
    // Distinct profiles (truncation length varies) so appends and replay
    // exercise real record diversity rather than the dedup path.
    let trace = catalog::by_name("FBC-Linear1")
        .expect("catalog trace")
        .generate();
    let config = HierarchyConfig::two_level_ts(500_000);
    let profiles: Vec<Arc<Profile>> = (0..PROFILES)
        .map(|i| {
            let cut = trace.len() - i * 512;
            Arc::new(Profile::fit(&trace.truncate_to(cut), &config))
        })
        .collect();
    let record_bytes: usize = profiles
        .iter()
        .map(|p| {
            ProfileRecord::from_profile(p, None)
                .expect("encodable profile")
                .encode()
                .len()
        })
        .sum();
    let mb = record_bytes as f64 / (1024.0 * 1024.0);

    // WAL append MB/s: a fresh store absorbing every record, fsync per
    // append — the exact durability-before-ack path the server runs.
    let append_dir = temp_dir("append");
    let append_secs = median_secs(|| {
        let _ = std::fs::remove_dir_all(&append_dir);
        std::fs::create_dir_all(&append_dir).expect("recreate bench dir");
        let mut store = ProfileStore::open(&append_dir).expect("open fresh store");
        for (i, profile) in profiles.iter().enumerate() {
            store
                .put_profile(profile, Some(i as u64))
                .expect("durable append");
        }
        store
    });
    let append_mb_per_sec = mb / append_secs;

    // Cold-start replay: open a store whose log holds all the records.
    let replay_dir = temp_dir("replay");
    {
        let mut store = ProfileStore::open(&replay_dir).expect("open for seeding");
        for (i, profile) in profiles.iter().enumerate() {
            store
                .put_profile(profile, Some(i as u64))
                .expect("seed append");
        }
    }
    let replay_secs = median_secs(|| {
        let store = ProfileStore::open(&replay_dir).expect("replay open");
        assert_eq!(store.len(), PROFILES, "replay must load every record");
        store
    });

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"store_baseline\",\n  \
         \"timed_iters\": {TIMED_ITERS},\n  \"wal_append\": {{\n    \
         \"profiles\": {PROFILES},\n    \"record_bytes\": {record_bytes},\n    \
         \"seconds\": {append_secs:.6},\n    \
         \"mb_per_sec\": {append_mb_per_sec:.1}\n  }},\n  \"cold_start\": {{\n    \
         \"profiles\": {PROFILES},\n    \"replay_seconds\": {replay_secs:.6}\n  }}\n}}\n",
    );
    print!("{json}");

    let crates_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let out = crates_root.join("..").join("BENCH_2.json");
    std::fs::write(&out, &json).expect("write BENCH_2.json");
    println!("wrote {}", out.display());

    let _ = std::fs::remove_dir_all(&append_dir);
    let _ = std::fs::remove_dir_all(&replay_dir);
}
