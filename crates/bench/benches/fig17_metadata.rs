//! Regenerates Fig. 17: encoded trace sizes vs Mocktails profile sizes.

fn main() {
    mocktails_bench::run_experiment("Fig. 17", || {
        mocktails_sim::experiments::meta::fig17_report(&mocktails_bench::cache_options())
    });
}
