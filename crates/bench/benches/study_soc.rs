//! SoC composition study: VPU + DPU + CPU profiles sharing one memory
//! system, with per-device attribution.

fn main() {
    mocktails_bench::run_experiment("SoC composition study", || {
        mocktails_sim::experiments::soc::report(&mocktails_bench::eval_options())
    });
}
