//! The pinned perf baseline: measures the hot paths the ROADMAP's speed
//! campaign will optimize and writes `BENCH_1.json` at the repository
//! root, so every future optimization PR has a number to move.
//!
//! Three figures are pinned:
//!
//! * synthesis throughput (records/sec) — the paper's core loop;
//! * trace codec throughput (encode and decode MB/s);
//! * lint wall-clock over the workspace, at three rule-set generations:
//!   the signature-only v2 set (L001–L011), the v3 set with the
//!   body-level lock rules (L001–L015), and the full v4 run with the
//!   interprocedural effect summaries (L016–L019). Two ratios are
//!   asserted — v3 under 2× v2 (the CFG/lock-pass budget) and v4 under
//!   1.5× v3 (the effect-summary budget: one SCC pass over an already
//!   built call graph must not dominate).
//!
//! Hand-rolled harness like the other benches (no external bench crate,
//! so the workspace builds hermetically); medians over a fixed iteration
//! count keep single-run noise out of the pinned file.

use std::collections::BTreeSet;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use mocktails_core::{HierarchyConfig, Profile};
use mocktails_lint::{run_with, RunOptions};
use mocktails_trace::codec::{read_trace, write_trace};
use mocktails_workloads::catalog;

const TIMED_ITERS: usize = 5;

/// Median wall-clock seconds of `f` over [`TIMED_ITERS`] runs, after one
/// warm-up run.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let trace = catalog::by_name("FBC-Linear1")
        .expect("catalog trace")
        .generate()
        .truncate_to(20_000);
    let config = HierarchyConfig::two_level_ts(500_000);
    let profile = Profile::fit(&trace, &config);

    // Synthesis records/sec.
    let records = profile.synthesize(1).len();
    let synth_secs = median_secs(|| profile.synthesize(1));
    let records_per_sec = records as f64 / synth_secs;

    // Codec MB/s over the generated trace's encoded form.
    let mut encoded = Vec::new();
    write_trace(&mut encoded, &trace).expect("encoding to memory");
    let mb = encoded.len() as f64 / (1024.0 * 1024.0);
    let encode_secs = median_secs(|| {
        let mut buf = Vec::with_capacity(encoded.len());
        write_trace(&mut buf, &trace).expect("encoding to memory");
        buf
    });
    let decode_secs = median_secs(|| read_trace(&mut encoded.as_slice()).expect("round trip"));

    // Lint wall-clock at the three rule-set generations: v2 (signature
    // level only, skips CFG construction and the lock pass), v3 (adds
    // the body-level lock rules), and v4 (adds the interprocedural
    // effect-summary pass), the last being the default run.
    let crates_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let v2_rules: BTreeSet<String> = (1..=11).map(|n| format!("L{n:03}")).collect();
    let v3_rules: BTreeSet<String> = (1..=15).map(|n| format!("L{n:03}")).collect();
    let files_checked = run_with(&crates_root, &RunOptions::default())
        .expect("workspace is readable")
        .files_checked;
    let timed_rules = |rules: &BTreeSet<String>| {
        let options = RunOptions {
            rules: Some(rules.clone()),
            ..RunOptions::default()
        };
        run_with(&crates_root, &options).expect("workspace is readable")
    };
    let lint_v2_secs = median_secs(|| timed_rules(&v2_rules));
    let lint_v3_secs = median_secs(|| timed_rules(&v3_rules));
    let lint_v4_secs = median_secs(|| {
        run_with(&crates_root, &RunOptions::default()).expect("workspace is readable")
    });
    let ratio = lint_v3_secs / lint_v2_secs;
    let v4_ratio = lint_v4_secs / lint_v3_secs;

    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"perf_baseline\",\n  \
         \"timed_iters\": {TIMED_ITERS},\n  \"synthesis\": {{\n    \
         \"records\": {records},\n    \"seconds\": {synth_secs:.6},\n    \
         \"records_per_sec\": {records_per_sec:.0}\n  }},\n  \"codec\": {{\n    \
         \"encoded_bytes\": {},\n    \"encode_mb_per_sec\": {:.1},\n    \
         \"decode_mb_per_sec\": {:.1}\n  }},\n  \"lint\": {{\n    \
         \"files_checked\": {files_checked},\n    \"v2_seconds\": {lint_v2_secs:.4},\n    \
         \"v3_seconds\": {lint_v3_secs:.4},\n    \"v3_over_v2\": {ratio:.3},\n    \
         \"v4_seconds\": {lint_v4_secs:.4},\n    \"v4_over_v3\": {v4_ratio:.3}\n  }}\n}}\n",
        encoded.len(),
        mb / encode_secs,
        mb / decode_secs,
    );
    print!("{json}");

    let out = crates_root.join("..").join("BENCH_1.json");
    std::fs::write(&out, &json).expect("write BENCH_1.json");
    println!("wrote {}", out.display());

    assert!(
        ratio < 2.0,
        "lint v3 ({lint_v3_secs:.4}s) must stay under 2x v2 ({lint_v2_secs:.4}s); got {ratio:.3}x"
    );
    assert!(
        v4_ratio < 1.5,
        "lint v4 ({lint_v4_secs:.4}s) must stay under 1.5x v3 ({lint_v3_secs:.4}s); got {v4_ratio:.3}x"
    );
}
