//! The pinned serving-layer baseline: measures the event-driven reactor's
//! connection setup rate and streaming latency tail at several worker
//! counts, and writes `BENCH_3.json` at the repository root alongside
//! `BENCH_1.json` (compute) and `BENCH_2.json` (store).
//!
//! Two figures are pinned per worker count (1, 2, 8):
//!
//! * connections/sec — sequential connect+handshake+drop cycles, the
//!   reactor's accept/teardown path with no compute involved;
//! * streaming p50/p99 — concurrent clients synthesizing by fingerprint,
//!   every reassembled stream byte-compared against the offline pipeline.
//!
//! Hand-rolled harness like the other benches (no external bench crate,
//! so the workspace builds hermetically); medians over a fixed iteration
//! count keep single-run noise out of the pinned file.

use std::hint::black_box;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use mocktails_core::{HierarchyConfig, LayerSpec, Profile};
use mocktails_pool::Parallelism;
use mocktails_serve::{
    retry_busy, Client, MonotonicClock, ProfileSource, RetryPolicy, Server, ServerConfig,
};
use mocktails_trace::codec::write_trace;
use mocktails_trace::Trace;
use mocktails_workloads::spec::generate_n;

const TIMED_ITERS: usize = 5;
const CYCLES: u64 = 50_000;
const RECORDS: usize = 300;
const SEED: u64 = 0xbe7c;
const CONNS_PER_ITER: usize = 64;
const STREAM_CLIENTS: usize = 16;
const STREAMS_PER_CLIENT: usize = 3;
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Median wall-clock seconds of `f` over [`TIMED_ITERS`] runs, after one
/// warm-up run.
fn median_secs<T>(mut f: impl FnMut() -> T) -> f64 {
    black_box(f());
    let mut samples: Vec<f64> = (0..TIMED_ITERS)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn trace_bytes(trace: &Trace) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(&mut bytes, trace).expect("encoding to memory");
    bytes
}

fn offline_config() -> HierarchyConfig {
    HierarchyConfig::builder()
        .layer(LayerSpec::TemporalCycleCount(CYCLES))
        .layer(LayerSpec::SpatialDynamic)
        .build()
        .expect("valid config")
}

struct ScalePoint {
    workers: usize,
    conns_per_sec: f64,
    stream_p50: Duration,
    stream_p99: Duration,
}

fn measure_workers(workers: usize, upload: &[u8], expected: &[u8]) -> ScalePoint {
    let config = ServerConfig::builder()
        .workers(workers)
        .queue_cap(256)
        .cache_capacity(64)
        .shards(8)
        .shard_budget(512)
        .max_conns(1024)
        .deadline_micros(120_000_000)
        .build()
        .expect("valid bench config");
    let server =
        Server::bind("127.0.0.1:0", config, Arc::new(MonotonicClock::new())).expect("bind");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run().expect("server run"));

    let fingerprint = {
        let mut primer = Client::connect(&addr).expect("primer connect");
        primer
            .fit(CYCLES, upload.to_vec())
            .expect("prime fit")
            .fingerprint
    };

    // Connection setup rate: connect + handshake + drop, no compute.
    let conn_secs = median_secs(|| {
        for _ in 0..CONNS_PER_ITER {
            drop(Client::connect(&addr).expect("bench connect"));
        }
    });
    let conns_per_sec = CONNS_PER_ITER as f64 / conn_secs;

    // Streaming tail: concurrent clients, one warm-up stream each, then
    // timed streams, every byte checked against the offline reference.
    let barrier = Arc::new(Barrier::new(STREAM_CLIENTS));
    let clients: Vec<_> = (0..STREAM_CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            let barrier = Arc::clone(&barrier);
            let expected = expected.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("stream connect");
                let policy = RetryPolicy {
                    max_retries: 64,
                    jitter_seed: i as u64,
                    ..RetryPolicy::default()
                };
                let chunk_len = 64 + (i % 5) as u32 * 37;
                barrier.wait();
                (0..STREAMS_PER_CLIENT)
                    .map(|_| {
                        let started = Instant::now();
                        let outcome = retry_busy(
                            &policy,
                            |micros| std::thread::sleep(Duration::from_micros(micros)),
                            || {
                                client.synthesize(
                                    SEED,
                                    chunk_len,
                                    ProfileSource::Fingerprint(fingerprint),
                                )
                            },
                        )
                        .unwrap_or_else(|e| panic!("stream client {i}: {e}"));
                        let elapsed = started.elapsed();
                        assert_eq!(
                            outcome.trace_bytes, expected,
                            "client {i}: stream diverged from offline synthesis"
                        );
                        elapsed
                    })
                    .collect::<Vec<Duration>>()
            })
        })
        .collect();
    let mut latencies: Vec<Duration> = clients
        .into_iter()
        .flat_map(|c| c.join().expect("stream client panicked"))
        .collect();
    latencies.sort();
    let stream_p50 = latencies[latencies.len() / 2];
    let stream_p99 = latencies[(latencies.len() * 99) / 100];

    let mut closer = Client::connect(&addr).expect("closer connect");
    closer.shutdown().expect("shutdown");
    server_thread.join().expect("server exits cleanly");

    ScalePoint {
        workers,
        conns_per_sec,
        stream_p50,
        stream_p99,
    }
}

fn main() {
    let trace = generate_n("gobmk", 100, RECORDS).expect("known benchmark");
    let profile = Profile::fit_with(&trace, &offline_config(), Parallelism::sequential());
    let upload = trace_bytes(&trace);
    let expected = trace_bytes(&profile.synthesize(SEED));

    let points: Vec<ScalePoint> = WORKER_COUNTS
        .iter()
        .map(|&w| measure_workers(w, &upload, &expected))
        .collect();

    let entries: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\n      \"workers\": {},\n      \
                 \"conns_per_sec\": {:.1},\n      \
                 \"stream_p50_micros\": {},\n      \
                 \"stream_p99_micros\": {}\n    }}",
                p.workers,
                p.conns_per_sec,
                p.stream_p50.as_micros(),
                p.stream_p99.as_micros(),
            )
        })
        .collect();
    // Worker-scaling summary: streaming p50 at 1 worker over p50 at 8
    // workers. Above 1.0 means adding workers helps; the structural gate
    // only requires the field to exist and be positive, because the
    // magnitude is machine- and load-dependent.
    let p50_of = |workers: usize| {
        points
            .iter()
            .find(|p| p.workers == workers)
            .map(|p| p.stream_p50.as_secs_f64())
            .expect("measured worker count")
    };
    let scaling_8_over_1 = p50_of(1) / p50_of(8).max(f64::EPSILON);
    let json = format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"serve_scale\",\n  \
         \"timed_iters\": {TIMED_ITERS},\n  \
         \"conns_per_iter\": {CONNS_PER_ITER},\n  \
         \"stream_clients\": {STREAM_CLIENTS},\n  \
         \"streams_per_client\": {STREAMS_PER_CLIENT},\n  \
         \"scaling_8_over_1\": {scaling_8_over_1:.3},\n  \"points\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    print!("{json}");

    let crates_root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..");
    let out = crates_root.join("..").join("BENCH_3.json");
    std::fs::write(&out, &json).expect("write BENCH_3.json");
    println!("wrote {}", out.display());
}
