//! Regenerates Fig. 7: average read/write queue lengths per device.

fn main() {
    mocktails_bench::run_experiment("Fig. 7", || {
        mocktails_sim::experiments::dram::fig07_report(&mocktails_bench::eval_options())
    });
}
