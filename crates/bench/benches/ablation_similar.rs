//! Ablation: HALO-style similar-region merging on/off.

use mocktails_sim::experiments::ablation;

fn main() {
    mocktails_bench::run_experiment("Ablation: similar-region merging", || {
        let rows = ablation::similar(&mocktails_bench::eval_options());
        ablation::report("HALO-style similar-region merging", &rows)
    });
}
