//! Regenerates Fig. 14: geometric-mean L1/L2 miss rates over the SPEC-like
//! suite for two cache configurations.

fn main() {
    mocktails_bench::run_experiment("Fig. 14", || {
        mocktails_sim::experiments::cache::fig14_report(&mocktails_bench::cache_options())
    });
}
