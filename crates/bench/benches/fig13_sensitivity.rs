//! Regenerates Fig. 13: memory access latency error vs temporal partition
//! size (100 k – 1 M cycles).

use mocktails_sim::experiments::dram;

fn main() {
    mocktails_bench::run_experiment("Fig. 13", || {
        let intervals = if mocktails_bench::quick_mode() {
            vec![100_000, 500_000, 1_000_000]
        } else {
            dram::fig13_intervals()
        };
        dram::fig13_report(&intervals, &mocktails_bench::eval_options())
    });
}
