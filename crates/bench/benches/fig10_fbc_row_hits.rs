//! Regenerates Fig. 10: absolute row-hit counts for FBC-Linear1 vs
//! FBC-Tiled1.

fn main() {
    mocktails_bench::run_experiment("Fig. 10", || {
        mocktails_sim::experiments::dram::fig10_report(&mocktails_bench::eval_options())
    });
}
