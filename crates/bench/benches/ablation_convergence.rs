//! Ablation: strict convergence vs stationary Markov sampling.

use mocktails_sim::experiments::ablation;

fn main() {
    mocktails_bench::run_experiment("Ablation: convergence", || {
        let rows = ablation::convergence(&mocktails_bench::eval_options());
        ablation::report("Strict convergence on/off", &rows)
    });
}
