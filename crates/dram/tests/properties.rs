//! Property-based tests of the DRAM model's structural invariants.

use proptest::prelude::*;

use mocktails_dram::{DramConfig, MemorySystem, PagePolicy, SchedulingPolicy};
use mocktails_trace::{Op, Request, Trace};

fn arb_request() -> impl Strategy<Value = Request> {
    (
        0u64..200_000,
        0u64..0x20_0000,
        any::<bool>(),
        prop_oneof![Just(16u32), Just(32), Just(64), Just(128), Just(256)],
    )
        .prop_map(|(t, addr, write, size)| {
            let op = if write { Op::Write } else { Op::Read };
            Request::new(t, addr & !0xf, op, size)
        })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_request(), 1..150).prop_map(Trace::from_requests)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mapping_decode_is_stable_within_a_burst(addr: u64, offset in 0u64..32) {
        let m = DramConfig::default().mapping();
        let base = (addr >> 1) & !31;
        prop_assert_eq!(m.decode(base), m.decode(base + offset));
    }

    #[test]
    fn bursts_cover_the_request_exactly(addr in 0u64..1_000_000, size in 1u32..4096) {
        let m = DramConfig::default().mapping();
        let bursts = m.bursts(addr, size);
        // First burst contains the start, last contains the final byte.
        prop_assert!(bursts[0] <= addr && addr < bursts[0] + 32);
        let end = addr + u64::from(size) - 1;
        let last = *bursts.last().unwrap();
        prop_assert!(last <= end && end < last + 32);
        // Bursts are consecutive and aligned.
        for w in bursts.windows(2) {
            prop_assert_eq!(w[1] - w[0], 32);
        }
        prop_assert!(bursts.iter().all(|b| b % 32 == 0));
    }

    #[test]
    fn conservation_holds_under_every_policy(trace in arb_trace()) {
        for page in [PagePolicy::OpenAdaptive, PagePolicy::Open, PagePolicy::Closed] {
            for sched in [SchedulingPolicy::FrFcfs, SchedulingPolicy::Fcfs] {
                let config = DramConfig {
                    page_policy: page,
                    scheduling: sched,
                    ..DramConfig::default()
                };
                let expected: u64 = trace
                    .iter()
                    .map(|r| config.mapping().bursts(r.address, r.size).len() as u64)
                    .sum();
                let stats = MemorySystem::new(config).run_trace(&trace);
                prop_assert_eq!(
                    stats.total_read_bursts() + stats.total_write_bursts(),
                    expected
                );
                for ch in stats.channels() {
                    prop_assert_eq!(ch.read_row_hits + ch.read_row_misses, ch.read_bursts);
                    prop_assert_eq!(ch.write_row_hits + ch.write_row_misses, ch.write_bursts);
                    prop_assert_eq!(
                        ch.read_bursts_per_bank.iter().sum::<u64>(),
                        ch.read_bursts
                    );
                }
            }
        }
    }

    #[test]
    fn closed_page_never_hits(trace in arb_trace()) {
        let config = DramConfig {
            page_policy: PagePolicy::Closed,
            ..DramConfig::default()
        };
        let stats = MemorySystem::new(config).run_trace(&trace);
        prop_assert_eq!(stats.total_read_row_hits(), 0);
        prop_assert_eq!(stats.total_write_row_hits(), 0);
    }

    #[test]
    fn open_page_hits_at_least_as_often_as_closed(trace in arb_trace()) {
        let hits = |page: PagePolicy| {
            let config = DramConfig { page_policy: page, ..DramConfig::default() };
            let s = MemorySystem::new(config).run_trace(&trace);
            s.total_read_row_hits() + s.total_write_row_hits()
        };
        prop_assert!(hits(PagePolicy::Open) >= hits(PagePolicy::Closed));
    }

    #[test]
    fn latency_includes_crossbar_minimum(trace in arb_trace()) {
        let config = DramConfig::default();
        let stats = MemorySystem::new(config).run_trace(&trace);
        let floor = (config.xbar_latency + config.timing.t_cl + config.timing.t_burst) as f64;
        prop_assert!(stats.avg_access_latency() >= floor);
    }

    #[test]
    fn replay_is_deterministic(trace in arb_trace()) {
        let a = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let b = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        prop_assert_eq!(a, b);
    }
}
