//! Randomized property tests of the DRAM model's structural invariants,
//! driven by the workspace's deterministic PRNG so the suite builds
//! hermetically.

use mocktails_dram::{DramConfig, MemorySystem, PagePolicy, SchedulingPolicy};
use mocktails_trace::rng::{Prng, Rng};
use mocktails_trace::{Op, Request, Trace};

const CASES: u64 = 48;

fn rand_request(rng: &mut Prng) -> Request {
    let t = rng.gen_range(0..200_000u64);
    let addr = rng.gen_range(0..0x20_0000u64);
    let op = if rng.gen_bool(0.5) {
        Op::Write
    } else {
        Op::Read
    };
    let size = [16u32, 32, 64, 128, 256][rng.gen_range(0..5usize)];
    Request::new(t, addr & !0xf, op, size)
}

fn rand_trace(rng: &mut Prng) -> Trace {
    let n = rng.gen_range(1..150usize);
    Trace::from_requests((0..n).map(|_| rand_request(rng)).collect())
}

#[test]
fn mapping_decode_is_stable_within_a_burst() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0001);
    let m = DramConfig::default().mapping();
    for case in 0..CASES {
        let base = (rng.next_u64() >> 1) & !31;
        let offset = rng.gen_range(0..32u64);
        assert_eq!(m.decode(base), m.decode(base + offset), "case {case}");
    }
}

#[test]
fn bursts_cover_the_request_exactly() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0002);
    let m = DramConfig::default().mapping();
    for case in 0..CASES {
        let addr = rng.gen_range(0..1_000_000u64);
        let size = rng.gen_range(1..4096u32);
        let bursts = m.bursts(addr, size);
        // First burst contains the start, last contains the final byte.
        assert!(bursts[0] <= addr && addr < bursts[0] + 32, "case {case}");
        let end = addr + u64::from(size) - 1;
        let last = *bursts.last().unwrap();
        assert!(last <= end && end < last + 32, "case {case}");
        // Bursts are consecutive and aligned.
        for w in bursts.windows(2) {
            assert_eq!(w[1] - w[0], 32, "case {case}");
        }
        assert!(bursts.iter().all(|b| b % 32 == 0), "case {case}");
    }
}

#[test]
fn conservation_holds_under_every_policy() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0003);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng);
        for page in [
            PagePolicy::OpenAdaptive,
            PagePolicy::Open,
            PagePolicy::Closed,
        ] {
            for sched in [SchedulingPolicy::FrFcfs, SchedulingPolicy::Fcfs] {
                let config = DramConfig {
                    page_policy: page,
                    scheduling: sched,
                    ..DramConfig::default()
                };
                let expected: u64 = trace
                    .iter()
                    .map(|r| config.mapping().bursts(r.address, r.size).len() as u64)
                    .sum();
                let stats = MemorySystem::new(config).run_trace(&trace);
                assert_eq!(
                    stats.total_read_bursts() + stats.total_write_bursts(),
                    expected,
                    "case {case}"
                );
                for ch in stats.channels() {
                    assert_eq!(ch.read_row_hits + ch.read_row_misses, ch.read_bursts);
                    assert_eq!(ch.write_row_hits + ch.write_row_misses, ch.write_bursts);
                    assert_eq!(ch.read_bursts_per_bank.iter().sum::<u64>(), ch.read_bursts);
                }
            }
        }
    }
}

#[test]
fn closed_page_never_hits() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0004);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng);
        let config = DramConfig {
            page_policy: PagePolicy::Closed,
            ..DramConfig::default()
        };
        let stats = MemorySystem::new(config).run_trace(&trace);
        assert_eq!(stats.total_read_row_hits(), 0, "case {case}");
        assert_eq!(stats.total_write_row_hits(), 0, "case {case}");
    }
}

#[test]
fn open_page_hits_at_least_as_often_as_closed() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0005);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng);
        let hits = |page: PagePolicy| {
            let config = DramConfig {
                page_policy: page,
                ..DramConfig::default()
            };
            let s = MemorySystem::new(config).run_trace(&trace);
            s.total_read_row_hits() + s.total_write_row_hits()
        };
        assert!(
            hits(PagePolicy::Open) >= hits(PagePolicy::Closed),
            "case {case}"
        );
    }
}

#[test]
fn latency_includes_crossbar_minimum() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0006);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng);
        let config = DramConfig::default();
        let stats = MemorySystem::new(config).run_trace(&trace);
        let floor = (config.xbar_latency + config.timing.t_cl + config.timing.t_burst) as f64;
        assert!(stats.avg_access_latency() >= floor, "case {case}");
    }
}

#[test]
fn replay_is_deterministic() {
    let mut rng = Prng::seed_from_u64(0xD4A1_0007);
    for case in 0..CASES {
        let trace = rand_trace(&mut rng);
        let a = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let b = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert_eq!(a, b, "case {case}");
    }
}
