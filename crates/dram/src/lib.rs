//! An event-driven DRAM memory controller + crossbar simulator.
//!
//! The paper validates Mocktails by replaying traces into gem5's DRAM
//! controller model (Hansson et al., ISPASS 2014) behind a crossbar. gem5
//! itself is out of scope for a Rust workspace, so this crate reimplements
//! the controller model the paper relies on:
//!
//! * per-channel **read and write queues** sized in DRAM bursts (Table III:
//!   32 / 64), with backpressure to the injector when full;
//! * requests split into **32 B bursts** matched to the DRAM interface;
//! * **FR-FCFS** scheduling (row hits first, then oldest);
//! * an **open-adaptive page policy** (keep rows open while hits are
//!   pending, precharge early when only conflicts remain);
//! * a **write-drain** mode with high/low thresholds (85 % / 50 %) and
//!   read→write turnaround tracking.
//!
//! Every metric of the paper's §IV evaluation is a first-class output of
//! [`DramStats`]: DRAM bursts per op, queue lengths seen by arriving
//! requests (average and full distribution), row hits per op, reads per
//! turnaround, per-bank burst counts and memory access latency.
//!
//! # Example
//!
//! ```
//! use mocktails_dram::{DramConfig, MemorySystem};
//! use mocktails_trace::{Request, Trace};
//!
//! let trace = Trace::from_requests(
//!     (0..1000u64).map(|i| Request::read(i * 8, 0x1000 + i * 64, 64)).collect(),
//! );
//! let mut system = MemorySystem::new(DramConfig::default());
//! let stats = system.run_trace(&trace);
//! assert_eq!(stats.total_read_bursts(), 2000); // 64 B = two 32 B bursts
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod channel;
mod config;
mod stats;
mod system;

pub use config::{AddressMapping, DramConfig, DramTiming, PagePolicy, SchedulingPolicy};
pub use stats::{ChannelStats, DramStats, Histogram, PortStats};
pub use system::MemorySystem;
