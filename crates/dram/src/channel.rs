//! One memory channel: queues, banks, FR-FCFS scheduling, page policy and
//! write drain.

use std::collections::VecDeque;

use mocktails_trace::Op;

use crate::config::DramConfig;
use crate::stats::ChannelStats;

/// One DRAM burst in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Packet {
    /// Cycle the burst reached the controller.
    pub arrival: u64,
    /// Cycle the originating request left the device (for latency).
    pub injected: u64,
    pub op: Op,
    pub bank: usize,
    pub row: u64,
    /// Injecting device port (0 for single-device runs).
    pub port: u16,
}

/// Per-bank state.
#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: u64,
}

/// The scheduling state of one memory channel.
#[derive(Debug)]
pub(crate) struct Channel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    read_q: VecDeque<Packet>,
    write_q: VecDeque<Packet>,
    /// Decision clock: the time of the last scheduling decision.
    now: u64,
    /// When the data bus frees up.
    bus_free_at: u64,
    draining_writes: bool,
    writes_this_drain: usize,
    /// Reads serviced since the last switch to reads.
    reads_this_turn: u64,
    last_op: Option<Op>,
    /// Next all-bank refresh deadline (tREFI cadence).
    next_refresh: u64,
    pub(crate) stats: ChannelStats,
}

impl Channel {
    pub(crate) fn new(cfg: DramConfig) -> Self {
        let banks = vec![Bank::default(); cfg.banks];
        let stats = ChannelStats::new(cfg.banks, cfg.read_queue, cfg.write_queue);
        Self {
            cfg,
            banks,
            read_q: VecDeque::new(),
            write_q: VecDeque::new(),
            now: 0,
            bus_free_at: 0,
            draining_writes: false,
            writes_this_drain: 0,
            reads_this_turn: 0,
            last_op: None,
            next_refresh: cfg.timing.t_refi,
            stats,
        }
    }

    /// Applies any refreshes due by `now`: every bank precharges and is
    /// unavailable for tRFC after each refresh point. Long idle spans are
    /// collapsed into the last missed refresh.
    fn refresh_due(&mut self, now: u64) {
        let t = self.cfg.timing;
        if t.t_refi == 0 || now < self.next_refresh {
            return;
        }
        let missed = (now - self.next_refresh) / t.t_refi + 1;
        let last = self.next_refresh + (missed - 1) * t.t_refi;
        for bank in &mut self.banks {
            bank.open_row = None;
            bank.ready_at = bank.ready_at.max(last + t.t_rfc);
        }
        self.next_refresh = last + t.t_refi;
        self.stats.refreshes += missed;
    }

    /// Services queued bursts whose scheduling decision happens strictly
    /// before `t` (the controller cannot anticipate future arrivals).
    pub(crate) fn advance_to(&mut self, t: u64) {
        while !self.read_q.is_empty() || !self.write_q.is_empty() {
            let start = self.now.max(self.bus_free_at);
            if start >= t {
                break;
            }
            self.service_one(start);
        }
        self.now = self.now.max(t);
    }

    /// Enqueues a burst arriving at `packet.arrival`, stalling (servicing
    /// in place) while the target queue is full. Returns the stall in
    /// cycles, which the injector must absorb as backpressure.
    pub(crate) fn enqueue(&mut self, mut packet: Packet) -> u64 {
        self.advance_to(packet.arrival);
        let capacity = match packet.op {
            Op::Read => self.cfg.read_queue,
            Op::Write => self.cfg.write_queue,
        };
        let mut stall = 0u64;
        while self.queue_len(packet.op) >= capacity {
            let start = self.now.max(self.bus_free_at);
            self.service_one(start);
            // The freeing service happened at `start`; time has moved.
            stall = self.now.saturating_sub(packet.arrival);
        }
        if stall > 0 {
            packet.arrival += stall;
            self.now = self.now.max(packet.arrival);
        }
        // Observe queue occupancy as seen by the arriving burst (Fig. 8).
        self.stats
            .observe_queues(packet.op, self.read_q.len(), self.write_q.len());
        match packet.op {
            Op::Read => self.read_q.push_back(packet),
            Op::Write => self.write_q.push_back(packet),
        }
        stall
    }

    /// Services everything still queued.
    pub(crate) fn drain(&mut self) {
        while !self.read_q.is_empty() || !self.write_q.is_empty() {
            let start = self.now.max(self.bus_free_at);
            self.service_one(start);
        }
    }

    fn queue_len(&self, op: Op) -> usize {
        match op {
            Op::Read => self.read_q.len(),
            Op::Write => self.write_q.len(),
        }
    }

    /// Picks a direction per the write-drain policy, selects a burst with
    /// FR-FCFS, models its timing, updates page state and records stats.
    fn service_one(&mut self, start: u64) {
        debug_assert!(!self.read_q.is_empty() || !self.write_q.is_empty());
        self.refresh_due(start);

        // Write-drain policy (gem5-style): start draining at the high mark
        // or when there is nothing else to do; stop at the low mark once
        // the minimum writes per switch are done.
        if self.draining_writes {
            let below_low = self.write_q.len() <= self.cfg.write_low_mark();
            if self.write_q.is_empty()
                || (below_low
                    && self.writes_this_drain >= self.cfg.min_writes_per_switch
                    && !self.read_q.is_empty())
            {
                self.draining_writes = false;
            }
        }
        if !self.draining_writes {
            let must_drain = self.write_q.len() >= self.cfg.write_high_mark()
                || (self.read_q.is_empty() && !self.write_q.is_empty());
            if must_drain {
                self.draining_writes = true;
                self.writes_this_drain = 0;
            }
        }
        let op = if self.draining_writes {
            Op::Write
        } else {
            Op::Read
        };
        // Fall back if the chosen queue is empty (can occur mid-policy).
        let op = match op {
            Op::Read if self.read_q.is_empty() => Op::Write,
            Op::Write if self.write_q.is_empty() => Op::Read,
            other => other,
        };

        // Scheduling: FR-FCFS pulls the first row hit forward; FCFS takes
        // strict arrival order.
        let queue = match op {
            Op::Read => &self.read_q,
            Op::Write => &self.write_q,
        };
        let idx = match self.cfg.scheduling {
            crate::config::SchedulingPolicy::FrFcfs => queue
                .iter()
                .position(|p| self.banks[p.bank].open_row == Some(p.row))
                .unwrap_or(0),
            crate::config::SchedulingPolicy::Fcfs => 0,
        };
        let packet = match op {
            Op::Read => self.read_q.remove(idx).expect("index valid"), // lint: allow(L001, idx was produced by scanning this very queue)
            Op::Write => self.write_q.remove(idx).expect("index valid"), // lint: allow(L001, idx was produced by scanning this very queue)
        };

        // Timing.
        let bank = &mut self.banks[packet.bank];
        let t = self.cfg.timing;
        let row_hit = bank.open_row == Some(packet.row);
        let access = if row_hit {
            t.t_cl
        } else if bank.open_row.is_some() {
            t.t_rp + t.t_rcd + t.t_cl
        } else {
            t.t_rcd + t.t_cl
        };
        let switch = match self.last_op {
            Some(prev) if prev != packet.op => t.t_switch,
            _ => 0,
        };
        let begin = start.max(bank.ready_at);
        let completion = begin + switch + access + t.t_burst;
        bank.open_row = Some(packet.row);
        bank.ready_at = completion;
        self.bus_free_at = completion;
        self.now = start;

        // Page policy: decide whether to leave the row open.
        let precharge = match self.cfg.page_policy {
            crate::config::PagePolicy::Open => false,
            crate::config::PagePolicy::Closed => true,
            crate::config::PagePolicy::OpenAdaptive => {
                // Precharge early when no queued burst hits this row but
                // one conflicts with it.
                let same_bank: Vec<&Packet> = self
                    .read_q
                    .iter()
                    .chain(self.write_q.iter())
                    .filter(|p| p.bank == packet.bank)
                    .collect();
                let any_hit = same_bank.iter().any(|p| p.row == packet.row);
                let any_conflict = same_bank.iter().any(|p| p.row != packet.row);
                !any_hit && any_conflict
            }
        };
        if precharge {
            let bank = &mut self.banks[packet.bank];
            bank.open_row = None;
            bank.ready_at = completion + t.t_rp;
        }

        // Turnaround accounting (Fig. 11): reads serviced before each
        // switch to writes.
        match packet.op {
            Op::Read => {
                if self.last_op == Some(Op::Write) {
                    self.reads_this_turn = 0;
                }
                self.reads_this_turn += 1;
            }
            Op::Write => {
                if self.last_op == Some(Op::Read) {
                    self.stats.record_turnaround(self.reads_this_turn);
                }
                self.writes_this_drain += 1;
            }
        }
        self.last_op = Some(packet.op);

        self.stats.record_service(
            packet.op,
            packet.bank,
            row_hit,
            completion - packet.injected,
            packet.port,
        );
    }

    #[cfg(test)]
    pub(crate) fn queue_lens(&self) -> (usize, usize) {
        (self.read_q.len(), self.write_q.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::default()
    }

    fn read_packet(arrival: u64, bank: usize, row: u64) -> Packet {
        Packet {
            arrival,
            injected: arrival,
            op: Op::Read,
            bank,
            row,
            port: 0,
        }
    }

    fn write_packet(arrival: u64, bank: usize, row: u64) -> Packet {
        Packet {
            arrival,
            injected: arrival,
            op: Op::Write,
            bank,
            row,
            port: 0,
        }
    }

    #[test]
    fn services_everything_on_drain() {
        let mut ch = Channel::new(cfg());
        for i in 0..10 {
            ch.enqueue(read_packet(i, 0, 0));
        }
        ch.drain();
        assert_eq!(ch.queue_lens(), (0, 0));
        assert_eq!(ch.stats.read_bursts, 10);
    }

    #[test]
    fn row_hits_for_same_row_stream() {
        let mut ch = Channel::new(cfg());
        for i in 0..20 {
            ch.enqueue(read_packet(i, 2, 7));
        }
        ch.drain();
        // First access opens the row; the rest hit.
        assert_eq!(ch.stats.read_row_hits, 19);
        assert_eq!(ch.stats.read_row_misses, 1);
    }

    #[test]
    fn row_conflicts_for_alternating_rows() {
        let mut ch = Channel::new(cfg());
        for i in 0..20 {
            ch.enqueue(read_packet(i, 0, i % 2));
        }
        ch.drain();
        // FR-FCFS reorders hits together: far better than zero hits, but
        // conflicts still occur between the two groups.
        assert!(ch.stats.read_row_hits > 10);
        assert!(ch.stats.read_row_misses >= 2);
    }

    #[test]
    fn fr_fcfs_prefers_row_hits() {
        let mut ch = Channel::new(cfg());
        // First a row-0 access, then a conflicting row-1, then another
        // row-0 which FR-FCFS should pull forward.
        ch.enqueue(read_packet(0, 0, 0));
        ch.enqueue(read_packet(0, 0, 1));
        ch.enqueue(read_packet(0, 0, 0));
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 1, "second row-0 jumped the queue");
    }

    #[test]
    fn write_drain_waits_for_high_mark() {
        let mut ch = Channel::new(cfg());
        // A few writes below the high mark plus a steady read stream: the
        // reads should be serviced first while writes sit in their queue.
        for i in 0..4 {
            ch.enqueue(write_packet(i, 0, 0));
        }
        for i in 4..12 {
            ch.enqueue(read_packet(i, 1, 0));
        }
        ch.advance_to(100_000);
        // Reads done, writes drained only after the read queue emptied.
        assert_eq!(ch.stats.read_bursts, 8);
        assert_eq!(ch.stats.write_bursts, 4);
    }

    #[test]
    fn turnarounds_record_reads_per_switch() {
        let mut ch = Channel::new(cfg());
        for i in 0..6 {
            ch.enqueue(read_packet(i, 0, 0));
        }
        ch.drain(); // services 6 reads
        for i in 100..104 {
            ch.enqueue(write_packet(i, 0, 0));
        }
        ch.drain(); // forced drain: switch read -> write
        assert_eq!(ch.stats.turnarounds, vec![6]);
    }

    #[test]
    fn backpressure_stalls_when_read_queue_full() {
        let mut ch = Channel::new(cfg());
        // Flood with same-cycle arrivals beyond the queue capacity.
        let mut total_stall = 0;
        for _ in 0..40 {
            total_stall += ch.enqueue(read_packet(0, 0, 0));
        }
        assert!(total_stall > 0, "33rd+ packet must stall");
        ch.drain();
        assert_eq!(ch.stats.read_bursts, 40);
    }

    #[test]
    fn queue_observation_sees_prior_occupancy() {
        let mut ch = Channel::new(cfg());
        for _ in 0..5 {
            ch.enqueue(read_packet(0, 0, 0));
        }
        // Five same-cycle arrivals: the fifth sees 4 queued.
        assert_eq!(ch.stats.read_queue_seen.mean(), 10.0 / 5.0);
    }

    #[test]
    fn latency_is_positive_and_grows_under_congestion() {
        let sparse = {
            let mut ch = Channel::new(cfg());
            for i in 0..50u64 {
                ch.enqueue(read_packet(i * 1000, 0, i)); // all conflicts, but idle
            }
            ch.drain();
            ch.stats.read_latency_sum as f64 / ch.stats.read_bursts as f64
        };
        let congested = {
            let mut ch = Channel::new(cfg());
            for i in 0..50u64 {
                ch.enqueue(read_packet(i, 0, i));
            }
            ch.drain();
            ch.stats.read_latency_sum as f64 / ch.stats.read_bursts as f64
        };
        assert!(sparse > 0.0);
        assert!(congested > sparse, "{congested} vs {sparse}");
    }

    #[test]
    fn adaptive_policy_precharges_on_pending_conflict() {
        let mut ch = Channel::new(cfg());
        // Service a row-0 burst while a row-1 burst waits on the same bank:
        // the controller should close row 0 eagerly; the row-1 access then
        // pays activation but not an extra full precharge at access time.
        ch.enqueue(read_packet(0, 0, 0));
        ch.enqueue(read_packet(0, 0, 1));
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 0);
        assert_eq!(ch.stats.read_row_misses, 2);
    }

    #[test]
    fn fcfs_services_in_arrival_order() {
        use crate::config::SchedulingPolicy;
        let mut cfg = cfg();
        cfg.scheduling = SchedulingPolicy::Fcfs;
        let mut ch = Channel::new(cfg);
        // Under FCFS the later row-0 request cannot jump the row-1 one.
        ch.enqueue(read_packet(0, 0, 0));
        ch.enqueue(read_packet(0, 0, 1));
        ch.enqueue(read_packet(0, 0, 0));
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 0, "no reordering allowed");
    }

    #[test]
    fn closed_page_policy_kills_row_hits() {
        use crate::config::PagePolicy;
        let mut cfg = cfg();
        cfg.page_policy = PagePolicy::Closed;
        let mut ch = Channel::new(cfg);
        for i in 0..20 {
            ch.enqueue(read_packet(i, 2, 7));
        }
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 0);
    }

    #[test]
    fn open_page_policy_never_precharges_early() {
        use crate::config::PagePolicy;
        let mut cfg = cfg();
        cfg.page_policy = PagePolicy::Open;
        let mut ch = Channel::new(cfg);
        // Same single-conflict scenario as the adaptive test: with a plain
        // open policy the row stays open, so the second access pays a
        // conflict (precharge + activate) rather than a pre-cleared bank,
        // but the hit/miss counts are the same; distinguish via timing.
        ch.enqueue(read_packet(0, 0, 0));
        ch.enqueue(read_packet(0, 0, 1));
        ch.enqueue(read_packet(1_000, 0, 1)); // row 1 again: a hit now
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 1);
    }

    #[test]
    fn decision_clock_never_sees_future_arrivals() {
        // Disable refresh so the row genuinely stays open across the gap.
        let mut cfg = cfg();
        cfg.timing.t_refi = 0;
        let mut ch = Channel::new(cfg);
        ch.enqueue(read_packet(0, 0, 0));
        ch.enqueue(read_packet(1_000_000, 0, 0));
        ch.drain();
        // Both service fine; the second is a hit only if the row stayed
        // open (no conflicting traffic), which it did.
        assert_eq!(ch.stats.read_row_hits, 1);
    }

    #[test]
    fn refresh_closes_rows_and_is_counted() {
        let mut ch = Channel::new(cfg());
        ch.enqueue(read_packet(0, 0, 7));
        ch.drain();
        // Next access lands after several refresh intervals: row closed.
        ch.enqueue(read_packet(20_000, 0, 7));
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 0);
        assert_eq!(ch.stats.read_row_misses, 2);
        // Idle spans collapse into one catch-up application, but every
        // missed interval is counted.
        assert!(ch.stats.refreshes >= 5, "refreshes {}", ch.stats.refreshes);
    }

    #[test]
    fn refresh_disabled_keeps_rows_open() {
        let mut cfg = cfg();
        cfg.timing.t_refi = 0;
        let mut ch = Channel::new(cfg);
        ch.enqueue(read_packet(0, 0, 7));
        ch.enqueue(read_packet(20_000, 0, 7));
        ch.drain();
        assert_eq!(ch.stats.read_row_hits, 1);
        assert_eq!(ch.stats.refreshes, 0);
    }
}
