//! Metric collection for the memory system.

use mocktails_trace::Op;

/// A bounded histogram of non-negative integer observations.
///
/// Used for the queue-length-seen-per-request distributions of Fig. 8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u64,
}

impl Histogram {
    /// Creates a histogram with bins `0..=max`.
    pub fn new(max: usize) -> Self {
        Self {
            counts: vec![0; max + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation (clamped to the last bin).
    pub fn record(&mut self, value: usize) {
        let idx = value.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u64;
    }

    /// Count per bin.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }
}

/// Per-injecting-device counters (SoC runs tag each request with a port).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Read bursts serviced for this port.
    pub read_bursts: u64,
    /// Write bursts serviced for this port.
    pub write_bursts: u64,
    /// Sum of burst latencies for this port.
    pub latency_sum: u64,
}

impl PortStats {
    /// Mean burst latency for this port (0 with no bursts).
    pub fn avg_latency(&self) -> f64 {
        let bursts = self.read_bursts + self.write_bursts;
        if bursts == 0 {
            0.0
        } else {
            self.latency_sum as f64 / bursts as f64
        }
    }
}

/// Metrics collected by one memory channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Read bursts serviced.
    pub read_bursts: u64,
    /// Write bursts serviced.
    pub write_bursts: u64,
    /// Read bursts serviced per bank.
    pub read_bursts_per_bank: Vec<u64>,
    /// Write bursts serviced per bank.
    pub write_bursts_per_bank: Vec<u64>,
    /// Read row hits / misses.
    pub read_row_hits: u64,
    /// Read row misses (activations or conflicts).
    pub read_row_misses: u64,
    /// Write row hits.
    pub write_row_hits: u64,
    /// Write row misses.
    pub write_row_misses: u64,
    /// Read-queue length seen by each arriving read burst.
    pub read_queue_seen: Histogram,
    /// Write-queue length seen by each arriving write burst.
    pub write_queue_seen: Histogram,
    /// Reads serviced before each read→write switch.
    pub turnarounds: Vec<u64>,
    /// Sum of read burst latencies (completion − injection).
    pub read_latency_sum: u64,
    /// Sum of write burst latencies.
    pub write_latency_sum: u64,
    /// Per-port counters, keyed by the injecting device's port id.
    pub ports: std::collections::BTreeMap<u16, PortStats>,
    /// All-bank refreshes performed (tREFI cadence).
    pub refreshes: u64,
}

impl ChannelStats {
    pub(crate) fn new(banks: usize, read_queue: usize, write_queue: usize) -> Self {
        Self {
            read_bursts: 0,
            write_bursts: 0,
            read_bursts_per_bank: vec![0; banks],
            write_bursts_per_bank: vec![0; banks],
            read_row_hits: 0,
            read_row_misses: 0,
            write_row_hits: 0,
            write_row_misses: 0,
            read_queue_seen: Histogram::new(read_queue),
            write_queue_seen: Histogram::new(write_queue),
            turnarounds: Vec::new(),
            read_latency_sum: 0,
            write_latency_sum: 0,
            ports: std::collections::BTreeMap::new(),
            refreshes: 0,
        }
    }

    pub(crate) fn observe_queues(&mut self, op: Op, read_len: usize, write_len: usize) {
        match op {
            Op::Read => self.read_queue_seen.record(read_len),
            Op::Write => self.write_queue_seen.record(write_len),
        }
    }

    pub(crate) fn record_turnaround(&mut self, reads: u64) {
        self.turnarounds.push(reads);
    }

    pub(crate) fn record_service(
        &mut self,
        op: Op,
        bank: usize,
        row_hit: bool,
        latency: u64,
        port: u16,
    ) {
        let port_stats = self.ports.entry(port).or_default();
        match op {
            Op::Read => port_stats.read_bursts += 1,
            Op::Write => port_stats.write_bursts += 1,
        }
        port_stats.latency_sum += latency;
        match op {
            Op::Read => {
                self.read_bursts += 1;
                self.read_bursts_per_bank[bank] += 1;
                if row_hit {
                    self.read_row_hits += 1;
                } else {
                    self.read_row_misses += 1;
                }
                self.read_latency_sum += latency;
            }
            Op::Write => {
                self.write_bursts += 1;
                self.write_bursts_per_bank[bank] += 1;
                if row_hit {
                    self.write_row_hits += 1;
                } else {
                    self.write_row_misses += 1;
                }
                self.write_latency_sum += latency;
            }
        }
    }

    /// Mean reads per read→write turnaround (0 when no switch occurred).
    pub fn avg_reads_per_turnaround(&self) -> f64 {
        if self.turnarounds.is_empty() {
            0.0
        } else {
            self.turnarounds.iter().sum::<u64>() as f64 / self.turnarounds.len() as f64
        }
    }
}

/// Metrics for the whole memory system (one [`ChannelStats`] per channel).
#[derive(Debug, Clone, PartialEq)]
pub struct DramStats {
    channels: Vec<ChannelStats>,
    /// Total injector stall cycles caused by full queues.
    pub stall_cycles: u64,
}

impl DramStats {
    pub(crate) fn new(channels: Vec<ChannelStats>, stall_cycles: u64) -> Self {
        Self {
            channels,
            stall_cycles,
        }
    }

    /// Per-channel statistics.
    pub fn channels(&self) -> &[ChannelStats] {
        &self.channels
    }

    /// Total read bursts across channels (Fig. 6).
    pub fn total_read_bursts(&self) -> u64 {
        self.channels.iter().map(|c| c.read_bursts).sum()
    }

    /// Total write bursts across channels (Fig. 6).
    pub fn total_write_bursts(&self) -> u64 {
        self.channels.iter().map(|c| c.write_bursts).sum()
    }

    /// Total read row hits (Figs. 9–10).
    pub fn total_read_row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.read_row_hits).sum()
    }

    /// Total write row hits (Figs. 9–10).
    pub fn total_write_row_hits(&self) -> u64 {
        self.channels.iter().map(|c| c.write_row_hits).sum()
    }

    /// Mean read-queue length observed by arriving reads (Fig. 7).
    pub fn avg_read_queue_len(&self) -> f64 {
        weighted_mean(
            self.channels
                .iter()
                .map(|c| (c.read_queue_seen.mean(), c.read_queue_seen.total())),
        )
    }

    /// Mean write-queue length observed by arriving writes (Fig. 7).
    pub fn avg_write_queue_len(&self) -> f64 {
        weighted_mean(
            self.channels
                .iter()
                .map(|c| (c.write_queue_seen.mean(), c.write_queue_seen.total())),
        )
    }

    /// Mean burst latency, reads and writes combined (Fig. 13).
    pub fn avg_access_latency(&self) -> f64 {
        let bursts: u64 = self.total_read_bursts() + self.total_write_bursts();
        if bursts == 0 {
            return 0.0;
        }
        let sum: u64 = self
            .channels
            .iter()
            .map(|c| c.read_latency_sum + c.write_latency_sum)
            .sum();
        sum as f64 / bursts as f64
    }

    /// Aggregated per-port counters across channels (empty for untagged
    /// runs, which use port 0 throughout).
    pub fn port_stats(&self) -> std::collections::BTreeMap<u16, PortStats> {
        let mut out: std::collections::BTreeMap<u16, PortStats> = Default::default();
        for ch in &self.channels {
            for (&port, s) in &ch.ports {
                let agg = out.entry(port).or_default();
                agg.read_bursts += s.read_bursts;
                agg.write_bursts += s.write_bursts;
                agg.latency_sum += s.latency_sum;
            }
        }
        out
    }

    /// Mean read latency in cycles.
    pub fn avg_read_latency(&self) -> f64 {
        let bursts = self.total_read_bursts();
        if bursts == 0 {
            return 0.0;
        }
        self.channels
            .iter()
            .map(|c| c.read_latency_sum)
            .sum::<u64>() as f64
            / bursts as f64
    }
}

fn weighted_mean(parts: impl Iterator<Item = (f64, u64)>) -> f64 {
    let mut sum = 0.0;
    let mut weight = 0u64;
    for (mean, w) in parts {
        sum += mean * w as f64;
        weight += w;
    }
    if weight == 0 {
        0.0
    } else {
        sum / weight as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new(4);
        for v in [0, 1, 1, 2, 10] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[1, 2, 1, 0, 1]); // 10 clamps into the last bin
        assert_eq!(h.total(), 5);
        assert_eq!(h.mean(), 14.0 / 5.0);
    }

    #[test]
    fn histogram_empty_mean_is_zero() {
        assert_eq!(Histogram::new(4).mean(), 0.0);
    }

    #[test]
    fn channel_stats_record_per_bank() {
        let mut s = ChannelStats::new(8, 32, 64);
        s.record_service(Op::Read, 3, true, 10, 0);
        s.record_service(Op::Write, 3, false, 20, 0);
        s.record_service(Op::Read, 0, false, 30, 1);
        assert_eq!(s.read_bursts, 2);
        assert_eq!(s.write_bursts, 1);
        assert_eq!(s.read_bursts_per_bank[3], 1);
        assert_eq!(s.write_bursts_per_bank[3], 1);
        assert_eq!(s.read_row_hits, 1);
        assert_eq!(s.read_row_misses, 1);
        assert_eq!(s.write_row_misses, 1);
        assert_eq!(s.read_latency_sum, 40);
    }

    #[test]
    fn turnaround_average() {
        let mut s = ChannelStats::new(1, 1, 1);
        assert_eq!(s.avg_reads_per_turnaround(), 0.0);
        s.record_turnaround(10);
        s.record_turnaround(20);
        assert_eq!(s.avg_reads_per_turnaround(), 15.0);
    }

    #[test]
    fn dram_stats_aggregate() {
        let mut a = ChannelStats::new(2, 4, 4);
        a.record_service(Op::Read, 0, true, 100, 0);
        let mut b = ChannelStats::new(2, 4, 4);
        b.record_service(Op::Read, 1, false, 200, 0);
        b.record_service(Op::Write, 1, true, 50, 1);
        let stats = DramStats::new(vec![a, b], 7);
        assert_eq!(stats.total_read_bursts(), 2);
        assert_eq!(stats.total_write_bursts(), 1);
        assert_eq!(stats.total_read_row_hits(), 1);
        assert_eq!(stats.total_write_row_hits(), 1);
        assert_eq!(stats.avg_read_latency(), 150.0);
        assert!((stats.avg_access_latency() - 350.0 / 3.0).abs() < 1e-9);
        assert_eq!(stats.stall_cycles, 7);
    }

    #[test]
    fn queue_means_weighted_across_channels() {
        let mut a = ChannelStats::new(1, 8, 8);
        a.observe_queues(Op::Read, 4, 0);
        let mut b = ChannelStats::new(1, 8, 8);
        b.observe_queues(Op::Read, 2, 0);
        b.observe_queues(Op::Read, 2, 0);
        b.observe_queues(Op::Read, 2, 0);
        let stats = DramStats::new(vec![a, b], 0);
        assert!((stats.avg_read_queue_len() - 2.5).abs() < 1e-9);
        assert_eq!(stats.avg_write_queue_len(), 0.0);
    }
}
