//! The full memory system: crossbar + per-channel controllers, with replay
//! (Option A) and coupled-synthesizer (Option B) front-ends.

use mocktails_core::{InjectionFeedback, Synthesizer};
use mocktails_trace::{Request, Trace};

use crate::channel::{Channel, Packet};
use crate::config::DramConfig;
use crate::stats::DramStats;

/// A multi-channel memory system behind a crossbar.
///
/// Requests are split into DRAM bursts, routed by the address mapping and
/// queued at their channel. Full queues exert backpressure: in trace replay
/// the injector simply stalls; when driven by a [`Synthesizer`] the stall
/// is reported through [`InjectionFeedback`] so pending synthetic requests
/// shift in time, exactly as §III-C describes.
#[derive(Debug)]
pub struct MemorySystem {
    cfg: DramConfig,
    channels: Vec<Channel>,
    stall_cycles: u64,
    /// Per-port link occupancy: when each device's link frees up.
    link_free_at: Vec<u64>,
}

impl MemorySystem {
    /// Creates a memory system with the given configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let channels = (0..cfg.channels).map(|_| Channel::new(cfg)).collect();
        Self {
            cfg,
            channels,
            stall_cycles: 0,
            link_free_at: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Injects one request from `port`; returns the backpressure stall in
    /// cycles.
    fn inject_from(&mut self, request: &Request, port: u16) -> u64 {
        let mapping = self.cfg.mapping();
        // Link serialization: the request occupies its device's link for
        // size / bandwidth cycles before crossing the crossbar.
        if self.link_free_at.len() <= usize::from(port) {
            self.link_free_at.resize(usize::from(port) + 1, 0);
        }
        let link = &mut self.link_free_at[usize::from(port)];
        let link_start = request.timestamp.max(*link);
        let link_wait = link_start - request.timestamp;
        let occupancy = if self.cfg.link_bytes_per_cycle == 0 {
            0
        } else {
            u64::from(request.size).div_ceil(self.cfg.link_bytes_per_cycle)
        };
        *link = link_start + occupancy;
        let at_xbar = link_start + occupancy;

        let mut stall_total = 0u64;
        for burst_addr in mapping.bursts(request.address, request.size) {
            let (channel, bank, row) = mapping.decode(burst_addr);
            let packet = Packet {
                arrival: at_xbar + self.cfg.xbar_latency + stall_total,
                injected: request.timestamp,
                op: request.op,
                bank,
                row,
                port,
            };
            stall_total += self.channels[channel].enqueue(packet);
        }
        self.stall_cycles += stall_total;
        // Queue backpressure also holds the link.
        self.link_free_at[usize::from(port)] += stall_total;
        stall_total + link_wait
    }

    /// Injects one untagged request (port 0); returns the backpressure
    /// stall in cycles.
    ///
    /// This is the incremental entry point for closed-loop drivers that
    /// interleave synthesis and injection themselves (e.g. a serving
    /// stream pacing chunks against simulator occupancy). Batch callers
    /// should prefer [`MemorySystem::run_trace`] /
    /// [`MemorySystem::run_synthesizer`], which also drain the queues and
    /// extract statistics.
    pub fn inject(&mut self, request: &Request) -> u64 {
        self.inject_from(request, 0)
    }

    /// Total backpressure stall cycles accumulated so far across all
    /// injected requests.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Replays a complete trace (Fig. 1, Option A) and returns the final
    /// statistics. Consumes the system's accumulated state.
    pub fn run_trace(&mut self, trace: &Trace) -> DramStats {
        for request in trace.iter() {
            self.inject(request);
        }
        self.finish()
    }

    /// Replays several devices' traces into the shared memory system,
    /// tagging each with its index as the port id so
    /// [`DramStats::port_stats`] attributes service per device — the
    /// heterogeneous-SoC scenario of the paper's introduction.
    ///
    /// Requests are interleaved globally by timestamp (stable across
    /// equal cycles, in argument order).
    pub fn run_traces(&mut self, traces: &[&Trace]) -> DramStats {
        let mut cursors: Vec<std::iter::Peekable<std::slice::Iter<'_, Request>>> = traces
            .iter()
            .map(|t| t.requests().iter().peekable())
            .collect();
        loop {
            let next = cursors
                .iter_mut()
                .enumerate()
                .filter_map(|(port, c)| c.peek().map(|r| (r.timestamp, port)))
                .min();
            let Some((_, port)) = next else { break };
            let request = *cursors[port].next().expect("peeked"); // lint: allow(L001, peek on this cursor just returned Some)
            self.inject_from(&request, port as u16);
        }
        self.finish()
    }

    /// Runs a coupled synthesizer (Fig. 1, Option B): every stall is fed
    /// back so pending synthetic requests shift in time.
    pub fn run_synthesizer(&mut self, synth: &mut Synthesizer) -> DramStats {
        while let Some(request) = synth.next_request() {
            let stall = self.inject(&request);
            if stall > 0 {
                synth.add_delay(stall);
            }
        }
        self.finish()
    }

    /// Drains all queues and extracts the statistics.
    fn finish(&mut self) -> DramStats {
        for ch in &mut self.channels {
            ch.drain();
        }
        let stats = self
            .channels
            .iter()
            .map(|c| c.stats.clone())
            .collect::<Vec<_>>();
        DramStats::new(stats, self.stall_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_core::{HierarchyConfig, Profile};
    use mocktails_trace::Op;

    fn linear_trace(n: u64, gap: u64, size: u32) -> Trace {
        Trace::from_requests(
            (0..n)
                .map(|i| Request::read(i * gap, i * u64::from(size), size))
                .collect(),
        )
    }

    #[test]
    fn burst_conservation() {
        // 64 B requests = 2 bursts each; all serviced.
        let trace = linear_trace(500, 10, 64);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert_eq!(stats.total_read_bursts(), 1000);
        assert_eq!(stats.total_write_bursts(), 0);
    }

    #[test]
    fn bursts_spread_across_channels() {
        let trace = linear_trace(400, 10, 128);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        for ch in stats.channels() {
            assert_eq!(ch.read_bursts, 400, "channel imbalance");
        }
    }

    #[test]
    fn linear_stream_enjoys_row_hits() {
        let trace = linear_trace(1000, 10, 64);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let hits = stats.total_read_row_hits();
        let total = stats.total_read_bursts();
        assert!(
            hits as f64 / total as f64 > 0.9,
            "hit rate {}",
            hits as f64 / total as f64
        );
    }

    #[test]
    fn random_rows_mostly_conflict() {
        use mocktails_trace::rng::{Prng, Rng};
        let mut rng = Prng::seed_from_u64(0);
        let trace = Trace::from_requests(
            (0..1000u64)
                .map(|i| Request::read(i * 10, rng.gen_range(0..1u64 << 30) & !31, 32))
                .collect(),
        );
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let hits = stats.total_read_row_hits();
        let total = stats.total_read_bursts();
        assert!(
            (hits as f64 / total as f64) < 0.3,
            "hit rate {}",
            hits as f64 / total as f64
        );
    }

    #[test]
    fn writes_accumulate_then_drain() {
        let trace = Trace::from_requests(
            (0..2000u64)
                .map(|i| {
                    if i % 2 == 0 {
                        Request::read(i * 4, i * 64, 64)
                    } else {
                        Request::write(i * 4, 0x100_0000 + i * 64, 64)
                    }
                })
                .collect(),
        );
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert_eq!(stats.total_write_bursts(), 2000);
        // Write queue runs long (write drain defers writes), read queue short.
        assert!(stats.avg_write_queue_len() > stats.avg_read_queue_len());
    }

    #[test]
    fn saturation_creates_backpressure() {
        // Requests every cycle: far beyond service rate.
        let trace =
            Trace::from_requests((0..5000u64).map(|i| Request::read(i, i * 32, 32)).collect());
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert!(stats.stall_cycles > 0);
        assert_eq!(stats.total_read_bursts(), 5000);
    }

    #[test]
    fn idle_trace_has_low_latency_and_no_stall() {
        let trace = linear_trace(100, 10_000, 32);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert_eq!(stats.stall_cycles, 0);
        let t = DramConfig::default().timing;
        let min = (t.t_cl + t.t_burst + DramConfig::default().xbar_latency) as f64;
        assert!(stats.avg_access_latency() >= min);
        assert!(stats.avg_access_latency() < min + 40.0);
    }

    #[test]
    fn synthesizer_coupling_applies_feedback() {
        // A profile of a saturating trace: coupled mode must finish and
        // accumulate delay in the synthesizer.
        let trace = Trace::from_requests(
            (0..3000u64)
                .map(|i| Request::read(i, (i % 512) * 32, 32))
                .collect(),
        );
        let profile = Profile::fit(&trace, &HierarchyConfig::two_level_ts(100_000));
        let mut synth = profile.synthesizer(1);
        let stats = MemorySystem::new(DramConfig::default()).run_synthesizer(&mut synth);
        assert_eq!(stats.total_read_bursts(), 3000);
        assert!(synth.accumulated_delay() > 0);
    }

    #[test]
    fn incremental_inject_matches_run_synthesizer() {
        // The public per-request API, driven by hand with the same
        // feedback rule, must leave simulator and synthesizer in exactly
        // the state the batch Option B loop produces.
        let trace = Trace::from_requests(
            (0..3000u64)
                .map(|i| Request::read(i, (i % 512) * 32, 32))
                .collect(),
        );
        let profile = Profile::fit(&trace, &HierarchyConfig::two_level_ts(100_000));
        let mut batch_synth = profile.synthesizer(7);
        let batch = MemorySystem::new(DramConfig::default()).run_synthesizer(&mut batch_synth);
        let mut synth = profile.synthesizer(7);
        let mut mem = MemorySystem::new(DramConfig::default());
        while let Some(request) = synth.next_request() {
            let stall = mem.inject(&request);
            if stall > 0 {
                synth.add_delay(stall);
            }
        }
        assert_eq!(mem.stall_cycles(), batch.stall_cycles);
        assert_eq!(synth.accumulated_delay(), batch_synth.accumulated_delay());
        assert!(
            synth.accumulated_delay() > 0,
            "saturating profile must stall"
        );
    }

    #[test]
    fn per_bank_counts_sum_to_totals() {
        let trace = linear_trace(700, 7, 64);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        for ch in stats.channels() {
            assert_eq!(ch.read_bursts_per_bank.iter().sum::<u64>(), ch.read_bursts);
        }
    }

    #[test]
    fn row_hits_plus_misses_equal_bursts() {
        let trace = linear_trace(900, 6, 64);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        for ch in stats.channels() {
            assert_eq!(ch.read_row_hits + ch.read_row_misses, ch.read_bursts);
            assert_eq!(ch.write_row_hits + ch.write_row_misses, ch.write_bursts);
        }
    }

    #[test]
    fn writes_to_small_region_leave_banks_untouched() {
        // The Fig. 12b effect: a write stream confined to one region leaves
        // most banks with zero writes.
        let mut reqs: Vec<Request> = (0..2000u64)
            .map(|i| Request::read(i * 8, i * 64, 64))
            .collect();
        reqs.extend(
            (0..200u64).map(|i| Request::write(i * 80 + 3, 0x2000_0000 + (i % 32) * 64, 64)),
        );
        let trace = Trace::from_requests(reqs);
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let untouched: usize = stats
            .channels()
            .iter()
            .flat_map(|c| c.write_bursts_per_bank.iter())
            .filter(|&&n| n == 0)
            .count();
        assert!(untouched >= 16, "only {untouched} bank slots write-free");
    }

    #[test]
    fn tagged_traces_attribute_per_port() {
        let a = linear_trace(200, 10, 64); // port 0
        let b = Trace::from_requests(
            (0..100u64)
                .map(|i| Request::write(i * 20 + 5, 0x4000_0000 + i * 64, 64))
                .collect(),
        ); // port 1
        let stats = MemorySystem::new(DramConfig::default()).run_traces(&[&a, &b]);
        let ports = stats.port_stats();
        assert_eq!(ports.len(), 2);
        assert_eq!(ports[&0].read_bursts, 400);
        assert_eq!(ports[&0].write_bursts, 0);
        assert_eq!(ports[&1].write_bursts, 200);
        assert!(ports[&0].avg_latency() > 0.0);
        // Port totals reconcile with channel totals.
        let total: u64 = ports.values().map(|p| p.read_bursts + p.write_bursts).sum();
        assert_eq!(
            total,
            stats.total_read_bursts() + stats.total_write_bursts()
        );
    }

    #[test]
    fn run_traces_matches_manual_merge_for_untagged_metrics() {
        let a = linear_trace(150, 9, 64);
        let b = Trace::from_requests(
            (0..150u64)
                .map(|i| Request::read(i * 9 + 4, 0x100_0000 + i * 64, 64))
                .collect(),
        );
        let tagged = MemorySystem::new(DramConfig::default()).run_traces(&[&a, &b]);
        let mut merged: Vec<Request> = a.requests().iter().chain(b.requests()).copied().collect();
        merged.sort_by_key(|r| r.timestamp);
        let manual = MemorySystem::new(DramConfig::default())
            .run_trace(&Trace::from_sorted_requests(merged));
        assert_eq!(tagged.total_read_bursts(), manual.total_read_bursts());
        assert_eq!(tagged.total_read_row_hits(), manual.total_read_row_hits());
    }

    #[test]
    fn same_trace_same_stats() {
        let trace = linear_trace(300, 9, 64);
        let a = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        let b = MemorySystem::new(DramConfig::default()).run_trace(&trace);
        assert_eq!(a, b);
    }

    #[test]
    fn mixed_op_same_region_interleaves() {
        // Read-modify-write to the same lines exercises direction switches.
        let mut reqs = Vec::new();
        for i in 0..500u64 {
            reqs.push(Request::new(i * 20, i * 64, Op::Read, 64));
            reqs.push(Request::new(i * 20 + 10, i * 64, Op::Write, 64));
        }
        let stats = MemorySystem::new(DramConfig::default()).run_trace(&Trace::from_requests(reqs));
        let turnarounds: usize = stats.channels().iter().map(|c| c.turnarounds.len()).sum();
        assert!(turnarounds > 0, "no read/write switches observed");
    }
}
