//! Memory system configuration (paper Table III) and address mapping.

/// DRAM timing parameters, in controller clock cycles.
///
/// These are simplified but representative LPDDR-class numbers; the paper's
/// validation argument needs only that the original and synthetic streams
/// run through *identical* timing, not any particular absolute values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Activate-to-column delay (tRCD).
    pub t_rcd: u64,
    /// Column access latency (tCL).
    pub t_cl: u64,
    /// Precharge latency (tRP).
    pub t_rp: u64,
    /// Data-bus occupancy per burst (tBURST).
    pub t_burst: u64,
    /// Bus turnaround penalty when switching between reads and writes.
    pub t_switch: u64,
    /// Refresh interval (tREFI); all banks refresh this often. `0`
    /// disables refresh.
    pub t_refi: u64,
    /// Refresh cycle time (tRFC): how long a refresh blocks the banks.
    pub t_rfc: u64,
}

impl Default for DramTiming {
    fn default() -> Self {
        Self {
            t_rcd: 14,
            t_cl: 14,
            t_rp: 14,
            t_burst: 4,
            t_switch: 10,
            t_refi: 3_900,
            t_rfc: 140,
        }
    }
}

/// Row-buffer management policy.
///
/// The paper's evaluation uses the open **adaptive** policy and points at
/// policy exploration as a primary Mocktails use case (§VI); the other
/// variants exist for exactly that kind of study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open, but precharge early when only conflicting requests
    /// are pending for the bank (gem5's `open_adaptive`; paper default).
    #[default]
    OpenAdaptive,
    /// Keep rows open until a conflicting access forces a precharge.
    Open,
    /// Precharge after every column access.
    Closed,
}

/// How physical addresses spread across channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingScheme {
    /// Consecutive bursts rotate across channels (fine-grained
    /// interleaving, gem5's multi-channel default; used by the paper's
    /// evaluation here).
    #[default]
    ChannelInterleaved,
    /// Whole rows live in one channel; consecutive rows rotate channels
    /// (coarse-grained interleaving — trades stream parallelism for
    /// longer per-channel row runs).
    RowInterleaved,
}

/// Request scheduling policy within a queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulingPolicy {
    /// First-ready, first-come-first-serve: row hits jump the queue
    /// (paper default).
    #[default]
    FrFcfs,
    /// Strict arrival order.
    Fcfs,
}

/// The memory configuration of the paper's Table III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Number of memory channels (Table III: 4).
    pub channels: usize,
    /// Banks per rank (Table III: 8 banks, 1 rank).
    pub banks: usize,
    /// DRAM burst size in bytes (Table III: 32).
    pub burst_bytes: u64,
    /// Row-buffer size per bank in bytes.
    pub row_bytes: u64,
    /// Read queue capacity in bursts (Table III: 32).
    pub read_queue: usize,
    /// Write queue capacity in bursts (Table III: 64).
    pub write_queue: usize,
    /// Write-drain high threshold as a fraction of the write queue
    /// (Table III: 85 %). Reaching it switches the controller to writes.
    pub write_high_threshold: f64,
    /// Write-drain low threshold (Table III: 50 %). Draining stops here.
    pub write_low_threshold: f64,
    /// Minimum writes serviced per drain episode (gem5's
    /// `min_writes_per_switch`).
    pub min_writes_per_switch: usize,
    /// Crossbar latency from the device to the controller, in cycles.
    pub xbar_latency: u64,
    /// Per-device link bandwidth into the crossbar, in bytes per cycle.
    /// A request occupies its port's link for `size / bandwidth` cycles
    /// before traversing the crossbar; `0` disables link serialization.
    pub link_bytes_per_cycle: u64,
    /// DRAM timing parameters.
    pub timing: DramTiming,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
    /// Queue scheduling policy.
    pub scheduling: SchedulingPolicy,
    /// Channel interleaving scheme.
    pub mapping_scheme: MappingScheme,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 4,
            banks: 8,
            burst_bytes: 32,
            row_bytes: 2048,
            read_queue: 32,
            write_queue: 64,
            write_high_threshold: 0.85,
            write_low_threshold: 0.50,
            min_writes_per_switch: 16,
            xbar_latency: 20,
            link_bytes_per_cycle: 32,
            timing: DramTiming::default(),
            page_policy: PagePolicy::OpenAdaptive,
            scheduling: SchedulingPolicy::FrFcfs,
            mapping_scheme: MappingScheme::ChannelInterleaved,
        }
    }
}

impl DramConfig {
    /// Write-queue occupancy (in bursts) that triggers a drain.
    pub fn write_high_mark(&self) -> usize {
        ((self.write_queue as f64 * self.write_high_threshold).round() as usize)
            .clamp(1, self.write_queue)
    }

    /// Write-queue occupancy at which a drain stops.
    pub fn write_low_mark(&self) -> usize {
        ((self.write_queue as f64 * self.write_low_threshold).round() as usize)
            .min(self.write_high_mark().saturating_sub(1))
    }

    /// The address decoder for this configuration.
    pub fn mapping(&self) -> AddressMapping {
        AddressMapping {
            channels: self.channels as u64,
            banks: self.banks as u64,
            burst_bytes: self.burst_bytes,
            bursts_per_row: self.row_bytes / self.burst_bytes,
            scheme: self.mapping_scheme,
        }
    }

    /// Formats the configuration as the rows of Table III.
    pub fn table3(&self) -> String {
        format!(
            "Number of Channels               {}\n\
             Ranks per Channel & Banks/Rank   1 & {}\n\
             Burst Size                       {} bytes\n\
             Read & Write Queue Size          {} & {} bursts\n\
             High & Low Write Threshold       {:.0}% & {:.0}%",
            self.channels,
            self.banks,
            self.burst_bytes,
            self.read_queue,
            self.write_queue,
            self.write_high_threshold * 100.0,
            self.write_low_threshold * 100.0
        )
    }
}

/// Decodes byte addresses into `(channel, bank, row)` coordinates.
///
/// Bursts interleave across channels at burst granularity (low-order
/// interleaving, gem5's default for multi-channel systems), then walk the
/// columns of a row, then banks, then rows:
///
/// ```text
/// addr / burst_bytes = burst_id
/// burst_id = (((row * banks) + bank) * bursts_per_row + column) * channels + channel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    channels: u64,
    banks: u64,
    burst_bytes: u64,
    bursts_per_row: u64,
    scheme: MappingScheme,
}

impl AddressMapping {
    /// Decodes `addr` to `(channel, bank, row)`.
    pub fn decode(&self, addr: u64) -> (usize, usize, u64) {
        let burst = addr / self.burst_bytes;
        let (channel, x) = match self.scheme {
            MappingScheme::ChannelInterleaved => {
                let channel = (burst % self.channels) as usize;
                (channel, burst / self.channels / self.bursts_per_row)
            }
            MappingScheme::RowInterleaved => {
                let x = burst / self.bursts_per_row; // drop the column
                ((x % self.channels) as usize, x / self.channels)
            }
        };
        let bank = (x % self.banks) as usize;
        let row = x / self.banks;
        (channel, bank, row)
    }

    /// Splits `[addr, addr + size)` into the starting addresses of the
    /// DRAM bursts it touches.
    pub fn bursts(&self, addr: u64, size: u32) -> Vec<u64> {
        let first = addr / self.burst_bytes;
        let last = (addr + u64::from(size) - 1) / self.burst_bytes;
        (first..=last).map(|b| b * self.burst_bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = DramConfig::default();
        assert_eq!(c.channels, 4);
        assert_eq!(c.banks, 8);
        assert_eq!(c.burst_bytes, 32);
        assert_eq!(c.read_queue, 32);
        assert_eq!(c.write_queue, 64);
        assert_eq!(c.write_high_mark(), 54);
        assert_eq!(c.write_low_mark(), 32);
        let t3 = c.table3();
        assert!(t3.contains("85%"));
        assert!(t3.contains("32 & 64"));
    }

    #[test]
    fn consecutive_bursts_interleave_channels() {
        let m = DramConfig::default().mapping();
        let chans: Vec<usize> = (0..8u64).map(|i| m.decode(i * 32).0).collect();
        assert_eq!(chans, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn same_row_for_a_contiguous_region() {
        let m = DramConfig::default().mapping();
        // One row per channel spans row_bytes; across 4 channels a
        // contiguous 8 KiB region maps to one (bank, row) per channel.
        let (_, b0, r0) = m.decode(0);
        for addr in (0..8192u64).step_by(32) {
            let (_, b, r) = m.decode(addr);
            assert_eq!((b, r), (b0, r0), "addr {addr}");
        }
        let (_, b1, r1) = m.decode(8192);
        assert_ne!((b0, r0), (b1, r1));
    }

    #[test]
    fn banks_rotate_before_rows() {
        let m = DramConfig::default().mapping();
        // Stepping by one row's worth of interleaved data (8 KiB) advances
        // the bank; after 8 banks the row advances.
        let mut banks = Vec::new();
        for i in 0..9u64 {
            let (_, b, r) = m.decode(i * 8192);
            banks.push((b, r));
        }
        assert_eq!(banks[0].1, banks[7].1, "first 8 share a row index");
        assert_eq!(banks[8].0, banks[0].0, "bank wraps");
        assert_eq!(banks[8].1, banks[0].1 + 1, "row advances");
    }

    #[test]
    fn burst_splitting() {
        let m = DramConfig::default().mapping();
        assert_eq!(m.bursts(0, 32), vec![0]);
        assert_eq!(m.bursts(0, 64), vec![0, 32]);
        assert_eq!(m.bursts(16, 32), vec![0, 32], "unaligned spans two");
        assert_eq!(m.bursts(0, 1), vec![0]);
        assert_eq!(m.bursts(96, 128), vec![96, 128, 160, 192]);
    }

    #[test]
    fn row_interleaving_keeps_rows_in_one_channel() {
        let cfg = DramConfig {
            mapping_scheme: MappingScheme::RowInterleaved,
            ..DramConfig::default()
        };
        let m = cfg.mapping();
        // The first row's worth of bursts (2 KiB) all land on channel 0.
        let (ch0, bank0, row0) = m.decode(0);
        for addr in (0..2048u64).step_by(32) {
            assert_eq!(m.decode(addr), (ch0, bank0, row0), "addr {addr}");
        }
        // The next row moves to the next channel.
        let (ch1, _, _) = m.decode(2048);
        assert_eq!(ch1, (ch0 + 1) % 4);
    }

    #[test]
    fn schemes_cover_all_channels() {
        for scheme in [
            MappingScheme::ChannelInterleaved,
            MappingScheme::RowInterleaved,
        ] {
            let cfg = DramConfig {
                mapping_scheme: scheme,
                ..DramConfig::default()
            };
            let m = cfg.mapping();
            let channels: std::collections::HashSet<usize> =
                (0..1024u64).map(|i| m.decode(i * 32).0).collect();
            assert_eq!(channels.len(), 4, "{scheme:?}");
        }
    }

    #[test]
    fn decode_is_a_bijection_over_coordinates() {
        // Distinct aligned bursts within one channel+bank+row never alias
        // with other rows: count distinct (ch, bank, row) for a large span.
        let m = DramConfig::default().mapping();
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            seen.insert(m.decode(i * 32));
        }
        // 4096 bursts / (64 bursts per row) = 64 distinct coordinates.
        assert_eq!(seen.len(), 64);
    }
}
