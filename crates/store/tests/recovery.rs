//! Fault-injected recovery proofs: the kill-point sweep.
//!
//! The store's contract is that a crash at *any* write boundary — a torn
//! page, a partial frame, garbage past the durable prefix — recovers to a
//! consistent prefix of acknowledged operations, deterministically at any
//! thread count. These tests prove it exhaustively on a golden log:
//! every byte-boundary truncation, every single-bit flip, and seeded
//! torn-write tails all land in exactly the predicted state.

use std::path::PathBuf;
use std::sync::Arc;

use mocktails_core::{HierarchyConfig, Profile, ProfileRecord};
use mocktails_pool::Parallelism;
use mocktails_store::{wal, ProfileStore, StoreOptions, CHECKPOINT_FILE, WAL_FILE};
use mocktails_trace::rng::{Prng, Rng};
use mocktails_trace::{Request, Trace};

const MAX_RECORD: usize = 1 << 20;
const THREAD_SWEEP: [usize; 3] = [1, 2, 8];

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mocktails-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A deliberately tiny profile so the golden log stays small enough to
/// sweep every byte of.
fn small_profile(salt: u64) -> Arc<Profile> {
    let trace = Trace::from_requests(
        (0..24u64)
            .map(|i| Request::read(i * 5 + salt, 0x8000 + ((i * 7 + salt) % 12) * 64, 64))
            .collect(),
    );
    Arc::new(Profile::fit(&trace, &HierarchyConfig::two_level_ts(48)))
}

/// The acknowledged operations, in append order, as their durable records.
fn golden_records() -> Vec<ProfileRecord> {
    (0..3u64)
        .map(|salt| ProfileRecord::from_profile(&small_profile(salt), Some(0x1000 + salt)).unwrap())
        .collect()
}

/// Builds the golden write-ahead log by running the real append path,
/// and returns its bytes.
fn golden_log(dir: &PathBuf, records: &[ProfileRecord]) -> Vec<u8> {
    let mut store = ProfileStore::open(dir).unwrap();
    for (salt, record) in records.iter().enumerate() {
        let fingerprint = store
            .put_profile(&small_profile(salt as u64), record.fit_key)
            .unwrap();
        assert_eq!(fingerprint, record.fingerprint);
    }
    drop(store);
    std::fs::read(dir.join(WAL_FILE)).unwrap()
}

fn options(threads: usize) -> StoreOptions {
    StoreOptions {
        parallelism: Parallelism::new(threads),
        ..StoreOptions::default()
    }
}

/// Opens a fresh store directory whose log is `bytes`, at `threads`.
fn recover(dir: &PathBuf, bytes: &[u8], threads: usize) -> ProfileStore {
    let _ = std::fs::remove_file(dir.join(WAL_FILE));
    let _ = std::fs::remove_file(dir.join(CHECKPOINT_FILE));
    std::fs::write(dir.join(WAL_FILE), bytes).unwrap();
    ProfileStore::open_with(dir, options(threads)).unwrap()
}

/// Asserts the recovered store holds exactly `expected` — same
/// fingerprints, same fit keys, byte-identical profile encodings.
fn assert_state(store: &ProfileStore, expected: &[&ProfileRecord], context: &str) {
    assert_eq!(store.len(), expected.len(), "{context}");
    for record in expected {
        let entry = store
            .get(record.fingerprint)
            .unwrap_or_else(|| panic!("{context}: fingerprint {:#x} missing", record.fingerprint));
        assert_eq!(entry.fit_key, record.fit_key, "{context}");
        let roundtrip = ProfileRecord::from_profile(&entry.profile, entry.fit_key).unwrap();
        assert_eq!(
            roundtrip.profile_bytes, record.profile_bytes,
            "{context}: recovered profile re-encodes differently"
        );
        assert_eq!(roundtrip.fingerprint, record.fingerprint, "{context}");
    }
}

#[test]
fn kill_point_sweep_recovers_a_consistent_prefix_at_every_byte() {
    let golden_dir = temp_dir("sweep-golden");
    let records = golden_records();
    let log = golden_log(&golden_dir, &records);
    let frames = wal::scan_frames(&log, MAX_RECORD).frames;
    assert_eq!(frames.len(), records.len());
    // Each frame's end offset: a record survives a cut iff it lies wholly
    // below it.
    let ends: Vec<u64> = (0..frames.len())
        .map(|i| frames.get(i + 1).map_or(log.len() as u64, |f| f.offset))
        .collect();

    let dir = temp_dir("sweep-run");
    for cut in 0..=log.len() {
        let survivors: Vec<&ProfileRecord> = records
            .iter()
            .enumerate()
            .filter(|(i, _)| cut >= wal::WAL_HEADER_LEN as usize && ends[*i] <= cut as u64)
            .map(|(_, r)| r)
            .collect();
        // Torn header resets the log to a bare header; otherwise the
        // durable prefix ends where the last surviving record does.
        let expected_len = match survivors.len() {
            0 => wal::WAL_HEADER_LEN,
            n => ends[n - 1],
        };
        for threads in THREAD_SWEEP {
            let store = recover(&dir, &log[..cut], threads);
            assert_state(&store, &survivors, &format!("cut {cut}, {threads} threads"));
            assert_eq!(
                store.wal_bytes(),
                expected_len,
                "cut {cut}, {threads} threads: durable prefix length"
            );
            assert_eq!(store.wal_records(), survivors.len() as u64);
        }
        // The truncation must be physical: a second open sees a clean log.
        let reopened = ProfileStore::open_with(&dir, options(1)).unwrap();
        assert_eq!(reopened.recovery().wal_bytes_truncated, 0, "cut {cut}");
        assert!(!reopened.recovery().wal_reset, "cut {cut}");
    }
    std::fs::remove_dir_all(&golden_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_after_a_kill_still_accepts_new_appends() {
    let golden_dir = temp_dir("resume-golden");
    let records = golden_records();
    let log = golden_log(&golden_dir, &records);
    let frames = wal::scan_frames(&log, MAX_RECORD).frames;
    // Cut mid-way through the second frame.
    let cut = (frames[1].offset + 5) as usize;

    let dir = temp_dir("resume-run");
    let mut store = recover(&dir, &log[..cut], 2);
    assert_state(&store, &[&records[0]], "post-kill");
    let late = small_profile(99);
    let fingerprint = store.put_profile(&late, None).unwrap();
    drop(store);

    let store = ProfileStore::open_with(&dir, options(8)).unwrap();
    assert_eq!(store.len(), 2);
    assert_eq!(store.recovery().wal_records_replayed, 2);
    assert!(store.get(fingerprint).is_some());
    let survivor = store.get(records[0].fingerprint).unwrap();
    assert_eq!(
        ProfileRecord::from_profile(&survivor.profile, survivor.fit_key)
            .unwrap()
            .profile_bytes,
        records[0].profile_bytes,
        "post-resume prefix re-encodes differently"
    );
    std::fs::remove_dir_all(&golden_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bit_flip_sweep_never_loads_a_damaged_record() {
    let golden_dir = temp_dir("flip-golden");
    let records = golden_records();
    let log = golden_log(&golden_dir, &records);
    let frames = wal::scan_frames(&log, MAX_RECORD).frames;
    let dir = temp_dir("flip-run");
    // Flip one bit at a stride through the record region: recovery must
    // keep exactly the frames before the damaged one — never a record
    // carrying the flipped byte.
    for position in (wal::WAL_HEADER_LEN as usize..log.len()).step_by(11) {
        let mut damaged = log.clone();
        damaged[position] ^= 0x10;
        let hit = frames
            .iter()
            .position(|f| {
                let end = frames
                    .iter()
                    .find(|next| next.offset > f.offset)
                    .map_or(log.len() as u64, |next| next.offset);
                (f.offset as usize..end as usize).contains(&position)
            })
            .expect("position inside some frame");
        let survivors: Vec<&ProfileRecord> = records.iter().take(hit).collect();
        for threads in THREAD_SWEEP {
            let store = recover(&dir, &damaged, threads);
            assert_state(
                &store,
                &survivors,
                &format!("flip at {position}, {threads} threads"),
            );
        }
    }
    std::fs::remove_dir_all(&golden_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn seeded_garbage_tails_recover_to_the_durable_prefix() {
    let golden_dir = temp_dir("garbage-golden");
    let records = golden_records();
    let log = golden_log(&golden_dir, &records);
    let dir = temp_dir("garbage-run");
    let mut rng = Prng::seed_from_u64(0xC0FFEE);
    // A torn final append leaves the durable prefix plus arbitrary bytes
    // that never completed; model that as seeded garbage of varied length.
    for case in 0..32u64 {
        let tail_len = rng.gen_range(1..64) as usize;
        let mut damaged = log.clone();
        for _ in 0..tail_len {
            damaged.push(rng.gen_range(0..256) as u8);
        }
        let all: Vec<&ProfileRecord> = records.iter().collect();
        for threads in THREAD_SWEEP {
            let store = recover(&dir, &damaged, threads);
            // Random bytes cannot forge a frame past the checksum plus
            // record fingerprint, so recovery keeps exactly the
            // acknowledged records and truncates the garbage.
            assert_state(&store, &all, &format!("case {case}, {threads} threads"));
        }
    }
    std::fs::remove_dir_all(&golden_dir).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
