//! The crash-recoverable profile store: checkpoint + write-ahead log +
//! deterministic recovery.
//!
//! # On-disk layout
//!
//! A store directory holds at most two files:
//!
//! * `checkpoint.mstore` — an atomic, digest-sealed snapshot of every
//!   live record at some *generation* (see [`crate::checkpoint`]);
//! * `wal.mlog` — the write-ahead log of records accepted since that
//!   checkpoint, stamped with the same generation (see [`crate::wal`]).
//!
//! # Invariants
//!
//! 1. **Durability before acknowledgement.** [`ProfileStore::put_profile`]
//!    returns only after the record's frame is written *and* fsynced; a
//!    crash can lose at most operations that were never acknowledged.
//! 2. **Prefix consistency.** Recovery replays the longest valid prefix
//!    of the log — structural scan first, then per-record validation via
//!    [`Parallelism::map`] (bit-identical at any thread count) — and
//!    truncates the torn tail so the next append extends a clean log.
//! 3. **Generation reconciliation.** Compaction writes checkpoint
//!    `g + 1` atomically *before* resetting the log to `g + 1`. A crash
//!    between the two leaves checkpoint `g + 1` next to log `g`; recovery
//!    discards such a stale log (its records are all in the checkpoint).
//!    A log *ahead* of its checkpoint is unreachable by crashes and
//!    refuses to load as [`StoreError::Corrupt`].

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use mocktails_core::{Profile, ProfileError, ProfileRecord};
use mocktails_pool::Parallelism;
use mocktails_trace::fault::AtomicFileWriter;
use mocktails_trace::DecodeOptions;

use crate::checkpoint::{read_checkpoint, write_checkpoint};
use crate::wal::{self, WalAppender, WalHeader};
use crate::StoreError;

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE: &str = "wal.mlog";

/// File name of the checkpoint inside a store directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.mstore";

/// Tuning knobs for opening a store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Decode limits applied to every recovered profile.
    pub decode: DecodeOptions,
    /// Thread policy for recovery's per-record validation pass. The
    /// recovered state is bit-identical at any setting.
    pub parallelism: Parallelism,
    /// Upper bound on a single record's framed payload; larger lengths in
    /// the log are treated as a torn tail, in the checkpoint as
    /// corruption.
    pub max_record_len: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            decode: DecodeOptions::default(),
            parallelism: Parallelism::current(),
            max_record_len: 64 << 20,
        }
    }
}

/// One live store entry: the decoded profile plus its fit metadata.
#[derive(Debug, Clone)]
pub struct StoredEntry {
    /// The recovered (or just-put) profile.
    pub profile: Arc<Profile>,
    /// Fit key aliasing repeat fits to this profile, if known.
    pub fit_key: Option<u64>,
}

/// What recovery found and did while opening a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Records loaded from the checkpoint.
    pub checkpoint_profiles: usize,
    /// Valid records replayed from the write-ahead log.
    pub wal_records_replayed: usize,
    /// Torn-tail bytes truncated off the log (0 on a clean open).
    pub wal_bytes_truncated: u64,
    /// Whether a stale or torn log was discarded and reset wholesale
    /// (the crash window between checkpoint write and log reset).
    pub wal_reset: bool,
}

/// Outcome of a [`ProfileStore::compact`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactStats {
    /// Records snapshotted into the new checkpoint.
    pub profiles: u64,
    /// Size of the new checkpoint file in bytes.
    pub checkpoint_bytes: u64,
    /// Log payload bytes dropped by the reset (everything past the
    /// header).
    pub wal_bytes_dropped: u64,
}

/// A write-ahead-logged, checkpointed, crash-recoverable store of fitted
/// profiles keyed by content fingerprint.
///
/// See the [module docs](self) for the on-disk layout and invariants.
/// The store is single-writer: callers needing concurrent access wrap it
/// in a mutex (as `mocktails-serve` does).
#[derive(Debug)]
pub struct ProfileStore {
    dir: PathBuf,
    appender: WalAppender<File>,
    entries: BTreeMap<u64, StoredEntry>,
    generation: u64,
    recovery: RecoveryReport,
}

impl ProfileStore {
    /// Opens (creating if absent) the store in `dir` with default
    /// options, running full recovery.
    ///
    /// # Errors
    ///
    /// See [`ProfileStore::open_with`].
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StoreError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (creating if absent) the store in `dir`, running full
    /// recovery: load + validate the checkpoint, replay the log's longest
    /// valid prefix, truncate any torn tail, and reconcile generations.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for filesystem failures; [`StoreError::Corrupt`]
    /// for states no crash can produce (checkpoint digest mismatch,
    /// foreign magic, a log generation ahead of its checkpoint).
    pub fn open_with<P: AsRef<Path>>(dir: P, options: StoreOptions) -> Result<Self, StoreError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;

        // 1. Checkpoint: absent means generation 0, empty.
        let checkpoint = read_checkpoint(&dir.join(CHECKPOINT_FILE), options.max_record_len)?;
        let (generation, checkpoint_payloads) = match checkpoint {
            Some(checkpoint) => (checkpoint.generation, checkpoint.payloads),
            None => (0, Vec::new()),
        };
        let mut entries = BTreeMap::new();
        let decoded = decode_records(&checkpoint_payloads, &options);
        for (index, result) in decoded.into_iter().enumerate() {
            // The digest verified, so an invalid record is written-state
            // corruption, not a crash artifact: refuse to load.
            let (record, profile) = result
                .map_err(|err| StoreError::Corrupt(format!("checkpoint entry {index}: {err}")))?;
            entries.insert(
                record.fingerprint,
                StoredEntry {
                    profile: Arc::new(profile),
                    fit_key: record.fit_key,
                },
            );
        }
        let mut recovery = RecoveryReport {
            checkpoint_profiles: entries.len(),
            ..RecoveryReport::default()
        };

        // 2. Write-ahead log: replay, truncate, or reset.
        let wal_path = dir.join(WAL_FILE);
        let wal_bytes = match std::fs::read(&wal_path) {
            Ok(bytes) => Some(bytes),
            Err(err) if err.kind() == io::ErrorKind::NotFound => None,
            Err(err) => return Err(StoreError::Io(err)),
        };
        let appender = match wal_bytes {
            // First open (or crash before the log's atomic creation
            // committed, which leaves no file at all).
            None => reset_wal(&dir, generation)?,
            Some(bytes) => match wal::read_header(&bytes) {
                // A header shorter than 13 bytes cannot survive the log's
                // atomic creation; treat the file as never-created.
                WalHeader::Torn => {
                    recovery.wal_reset = true;
                    recovery.wal_bytes_truncated = bytes.len() as u64;
                    reset_wal(&dir, generation)?
                }
                WalHeader::Foreign(what) => return Err(StoreError::Corrupt(what)),
                WalHeader::Valid {
                    generation: wal_generation,
                } => {
                    if wal_generation > generation {
                        return Err(StoreError::Corrupt(format!(
                            "write-ahead log generation {wal_generation} is ahead of \
                             checkpoint generation {generation}"
                        )));
                    }
                    if wal_generation < generation {
                        // Crash between checkpoint write and log reset:
                        // every stale record is already in the checkpoint.
                        recovery.wal_reset = true;
                        recovery.wal_bytes_truncated =
                            (bytes.len() as u64).saturating_sub(wal::WAL_HEADER_LEN);
                        reset_wal(&dir, generation)?
                    } else {
                        let scan = wal::scan_frames(&bytes, options.max_record_len);
                        let payloads: Vec<Vec<u8>> =
                            scan.frames.iter().map(|f| f.payload.clone()).collect();
                        let decoded = decode_records(&payloads, &options);
                        // The first record whose *contents* fail to
                        // validate marks the truncation point, exactly as
                        // a structural tear would.
                        let mut valid_len = scan.valid_len;
                        let mut replayed = 0usize;
                        for (frame, result) in scan.frames.iter().zip(decoded) {
                            let Ok((record, profile)) = result else {
                                valid_len = frame.offset;
                                break;
                            };
                            entries.insert(
                                record.fingerprint,
                                StoredEntry {
                                    profile: Arc::new(profile),
                                    fit_key: record.fit_key,
                                },
                            );
                            replayed += 1;
                        }
                        recovery.wal_records_replayed = replayed;
                        recovery.wal_bytes_truncated =
                            (bytes.len() as u64).saturating_sub(valid_len);
                        if valid_len < bytes.len() as u64 {
                            let file = OpenOptions::new().write(true).open(&wal_path)?;
                            file.set_len(valid_len)?;
                            file.sync_data()?;
                        }
                        let file = OpenOptions::new().append(true).open(&wal_path)?;
                        WalAppender::new(file, valid_len, replayed as u64)
                    }
                }
            },
        };

        Ok(Self {
            dir,
            appender,
            entries,
            generation,
            recovery,
        })
    }

    /// Appends a profile (and its fit key) to the log, fsyncs, and only
    /// then makes it visible in memory — the caller may acknowledge the
    /// operation once this returns. Returns the profile's content
    /// fingerprint. A repeat put of an identical `(profile, fit_key)`
    /// pair is recognised and does not grow the log.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wedged`] if an earlier append failed (compact or
    /// reopen to recover); [`StoreError::Io`] for the write/fsync failure
    /// itself. On error the entry is *not* inserted in memory, keeping
    /// memory and disk consistent.
    pub fn put_profile(
        &mut self,
        profile: &Arc<Profile>,
        fit_key: Option<u64>,
    ) -> Result<u64, StoreError> {
        let record = ProfileRecord::from_profile(profile, fit_key)?;
        if let Some(existing) = self.entries.get(&record.fingerprint) {
            if existing.fit_key == fit_key {
                return Ok(record.fingerprint);
            }
        }
        self.appender.append(&record.encode())?;
        self.entries.insert(
            record.fingerprint,
            StoredEntry {
                profile: Arc::clone(profile),
                fit_key,
            },
        );
        Ok(record.fingerprint)
    }

    /// Snapshots every live record into checkpoint `generation + 1`
    /// (atomically), then resets the log to the new generation. Also the
    /// recovery path from a [wedged](StoreError::Wedged) store: the new
    /// log gets a fresh appender.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] — if the checkpoint write fails the old
    /// checkpoint and log are untouched; if the log reset fails after the
    /// checkpoint committed, a reopen recovers (the stale-log case).
    pub fn compact(&mut self) -> Result<CompactStats, StoreError> {
        let next = self.generation + 1;
        let payloads = self
            .entries
            .values()
            .map(|entry| {
                ProfileRecord::from_profile(&entry.profile, entry.fit_key)
                    .map(|record| record.encode())
            })
            .collect::<Result<Vec<_>, ProfileError>>()?;
        let checkpoint_bytes = write_checkpoint(&self.dir.join(CHECKPOINT_FILE), next, &payloads)?;
        let dropped = self.appender.bytes().saturating_sub(wal::WAL_HEADER_LEN);
        self.appender = reset_wal(&self.dir, next)?;
        self.generation = next;
        Ok(CompactStats {
            profiles: payloads.len() as u64,
            checkpoint_bytes,
            wal_bytes_dropped: dropped,
        })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current checkpoint/log generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up an entry by content fingerprint.
    pub fn get(&self, fingerprint: u64) -> Option<&StoredEntry> {
        self.entries.get(&fingerprint)
    }

    /// Iterates live entries in ascending fingerprint order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &StoredEntry)> {
        self.entries.iter().map(|(fp, entry)| (*fp, entry))
    }

    /// Durable log size in bytes, header included.
    pub fn wal_bytes(&self) -> u64 {
        self.appender.bytes()
    }

    /// Records in the current log (replayed + appended this session).
    pub fn wal_records(&self) -> u64 {
        self.appender.records()
    }

    /// Whether a failed append has wedged the log (see
    /// [`StoreError::Wedged`]).
    pub fn is_wedged(&self) -> bool {
        self.appender.is_wedged()
    }

    /// What recovery found when this handle was opened.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }
}

/// Decodes and validates record payloads across threads; output order and
/// contents are independent of the thread count.
fn decode_records(
    payloads: &[Vec<u8>],
    options: &StoreOptions,
) -> Vec<Result<(ProfileRecord, Profile), ProfileError>> {
    options.parallelism.map(payloads, |payload| {
        let record = ProfileRecord::decode(payload)?;
        let profile = record.decode_profile(&options.decode)?;
        Ok((record, profile))
    })
}

/// Atomically (re)creates the log as a bare `generation` header and
/// returns a fresh appender positioned after it.
fn reset_wal(dir: &Path, generation: u64) -> Result<WalAppender<File>, StoreError> {
    let path = dir.join(WAL_FILE);
    let mut writer = AtomicFileWriter::create(&path)?;
    writer.write_all(&wal::header_bytes(generation))?;
    writer.commit()?;
    let file = OpenOptions::new().append(true).open(&path)?;
    Ok(WalAppender::new(file, wal::WAL_HEADER_LEN, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_core::HierarchyConfig;
    use mocktails_trace::{Request, Trace};

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mocktails-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_profile(salt: u64) -> Arc<Profile> {
        let trace = Trace::from_requests(
            (0..80u64)
                .map(|i| Request::read(i * 3 + salt, 0x4000 + (i % 32) * 64, 64))
                .collect(),
        );
        Arc::new(Profile::fit(&trace, &HierarchyConfig::two_level_ts(160)))
    }

    #[test]
    fn put_survives_reopen_byte_identically() {
        let dir = temp_dir("reopen");
        let (a, b) = (sample_profile(0), sample_profile(1));
        let (fp_a, fp_b);
        {
            let mut store = ProfileStore::open(&dir).unwrap();
            assert!(store.is_empty());
            fp_a = store.put_profile(&a, Some(0xAA)).unwrap();
            fp_b = store.put_profile(&b, None).unwrap();
            assert_eq!(store.wal_records(), 2);
        }
        let store = ProfileStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.recovery().wal_records_replayed, 2);
        assert_eq!(store.recovery().wal_bytes_truncated, 0);
        assert_eq!(store.get(fp_a).unwrap().fit_key, Some(0xAA));
        assert_eq!(*store.get(fp_a).unwrap().profile, *a);
        assert_eq!(*store.get(fp_b).unwrap().profile, *b);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_put_does_not_grow_the_log() {
        let dir = temp_dir("dedup");
        let mut store = ProfileStore::open(&dir).unwrap();
        let profile = sample_profile(2);
        store.put_profile(&profile, Some(1)).unwrap();
        let bytes = store.wal_bytes();
        store.put_profile(&profile, Some(1)).unwrap();
        assert_eq!(store.wal_bytes(), bytes);
        // A *changed* fit key is new metadata and must be logged.
        store.put_profile(&profile, Some(2)).unwrap();
        assert!(store.wal_bytes() > bytes);
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_checkpoints_and_truncates_the_log() {
        let dir = temp_dir("compact");
        let mut store = ProfileStore::open(&dir).unwrap();
        let (a, b) = (sample_profile(3), sample_profile(4));
        store.put_profile(&a, Some(7)).unwrap();
        store.put_profile(&b, None).unwrap();
        let stats = store.compact().unwrap();
        assert_eq!(stats.profiles, 2);
        assert!(stats.wal_bytes_dropped > 0);
        assert_eq!(store.generation(), 1);
        assert_eq!(store.wal_bytes(), wal::WAL_HEADER_LEN);
        drop(store);
        let store = ProfileStore::open(&dir).unwrap();
        assert_eq!(store.generation(), 1);
        assert_eq!(store.recovery().checkpoint_profiles, 2);
        assert_eq!(store.recovery().wal_records_replayed, 0);
        assert_eq!(*store.get(a.content_fingerprint()).unwrap().profile, *a);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_log_after_compact_crash_is_discarded() {
        let dir = temp_dir("stale");
        let mut store = ProfileStore::open(&dir).unwrap();
        let keep = sample_profile(5);
        store.put_profile(&keep, None).unwrap();
        let old_wal = std::fs::read(dir.join(WAL_FILE)).unwrap();
        store.compact().unwrap();
        drop(store);
        // Simulate a crash between checkpoint write and log reset by
        // restoring the generation-0 log next to the generation-1
        // checkpoint.
        std::fs::write(dir.join(WAL_FILE), &old_wal).unwrap();
        let store = ProfileStore::open(&dir).unwrap();
        assert!(store.recovery().wal_reset);
        assert_eq!(store.recovery().wal_records_replayed, 0);
        assert_eq!(store.len(), 1);
        assert_eq!(
            *store.get(keep.content_fingerprint()).unwrap().profile,
            *keep
        );
        // The reset log is back on the checkpoint's generation.
        drop(store);
        let header = std::fs::read(dir.join(WAL_FILE)).unwrap();
        assert_eq!(
            wal::read_header(&header),
            WalHeader::Valid { generation: 1 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_ahead_of_checkpoint_is_corrupt() {
        let dir = temp_dir("ahead");
        let mut store = ProfileStore::open(&dir).unwrap();
        store.put_profile(&sample_profile(6), None).unwrap();
        drop(store);
        let mut bytes = std::fs::read(dir.join(WAL_FILE)).unwrap();
        bytes[5..13].copy_from_slice(&9u64.to_le_bytes());
        std::fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        assert!(matches!(
            ProfileStore::open(&dir),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_tail_is_truncated_on_open() {
        let dir = temp_dir("tail");
        let mut store = ProfileStore::open(&dir).unwrap();
        let profile = sample_profile(7);
        store.put_profile(&profile, Some(3)).unwrap();
        drop(store);
        let wal_path = dir.join(WAL_FILE);
        let clean_len = std::fs::metadata(&wal_path).unwrap().len();
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.extend_from_slice(&[0x5A; 37]);
        std::fs::write(&wal_path, &bytes).unwrap();
        let store = ProfileStore::open(&dir).unwrap();
        assert_eq!(store.recovery().wal_records_replayed, 1);
        assert_eq!(store.recovery().wal_bytes_truncated, 37);
        assert_eq!(
            *store.get(profile.content_fingerprint()).unwrap().profile,
            *profile
        );
        // The tail is physically gone, not just ignored.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), clean_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_thread_count_invariant() {
        let dir = temp_dir("threads");
        let mut store = ProfileStore::open(&dir).unwrap();
        let profiles: Vec<_> = (0..6).map(sample_profile).collect();
        for (i, profile) in profiles.iter().enumerate() {
            store.put_profile(profile, Some(i as u64)).unwrap();
        }
        drop(store);
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 8] {
            let options = StoreOptions {
                parallelism: Parallelism::new(threads),
                ..StoreOptions::default()
            };
            let store = ProfileStore::open_with(&dir, options).unwrap();
            let snapshot: Vec<(u64, Option<u64>)> =
                store.iter().map(|(fp, e)| (fp, e.fit_key)).collect();
            snapshots.push(snapshot);
        }
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
