//! Store error type.

use std::fmt;
use std::io;

use mocktails_core::ProfileError;

/// Everything that can go wrong opening or mutating a [`ProfileStore`].
///
/// [`ProfileStore`]: crate::ProfileStore
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure (open, write, fsync, rename, ...).
    Io(io::Error),
    /// On-disk state that a crash cannot produce: a checkpoint whose
    /// digest does not verify, a write-ahead log from a future
    /// generation, a foreign magic number. Recovery refuses to guess and
    /// surfaces the inconsistency instead.
    Corrupt(String),
    /// A record's carried profile failed to decode or validate.
    Profile(ProfileError),
    /// The write-ahead log writer failed mid-append earlier, so the
    /// on-disk tail may be torn; further appends are refused until the
    /// store is compacted (which rewrites the log) or reopened (which
    /// replays and truncates it).
    Wedged,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "store I/O error: {err}"),
            Self::Corrupt(what) => write!(f, "store corrupt: {what}"),
            Self::Profile(err) => write!(f, "store record invalid: {err}"),
            Self::Wedged => write!(
                f,
                "store wedged: a write-ahead-log append failed earlier; \
                 compact or reopen the store to recover"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            Self::Profile(err) => Some(err),
            Self::Corrupt(_) | Self::Wedged => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

impl From<ProfileError> for StoreError {
    fn from(err: ProfileError) -> Self {
        Self::Profile(err)
    }
}
