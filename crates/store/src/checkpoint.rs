//! Checkpoint files: an atomic, digest-sealed snapshot of every live
//! record, written by compaction so the write-ahead log can be truncated.
//!
//! ```text
//! magic "MCKP" | version u8 | generation u64 LE | entry_count u64 LE
//! entries: payload_len u32 LE | payload         (entry_count times)
//! fnv1a digest u64 LE of every preceding byte
//! ```
//!
//! A checkpoint is written through [`AtomicFileWriter`] (temp file, fsync,
//! rename, parent-directory fsync), so a crash mid-write leaves the
//! previous checkpoint — or none — fully intact; a *torn* checkpoint is
//! not a reachable state. The trailing digest therefore guards against
//! bit rot and foreign files, not crashes, and a mismatch is a hard
//! [`StoreError::Corrupt`] rather than something recovery silently
//! truncates.

use std::io::{self, Write};
use std::path::Path;

use mocktails_trace::fault::AtomicFileWriter;
use mocktails_trace::{fnv1a, FnvWriter};

use crate::StoreError;

/// First four bytes of every checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"MCKP";

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u8 = 1;

/// Fixed bytes before the entries: magic + version + generation + count.
const CHECKPOINT_HEADER_LEN: usize = 21;

/// A parsed checkpoint: the generation it seals and the record payloads
/// it snapshots (structural framing verified; record contents are the
/// caller's to validate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Generation stamped into the snapshot; the write-ahead log that
    /// extends it carries the same number.
    pub generation: u64,
    /// Snapshot record payloads, in the order they were written.
    pub payloads: Vec<Vec<u8>>,
}

/// Atomically writes a checkpoint of `payloads` at `generation`,
/// returning the file's size in bytes.
///
/// # Errors
///
/// [`StoreError::Corrupt`] for a payload too large to frame;
/// [`StoreError::Io`] for any underlying failure (in which case the
/// previous checkpoint, if any, is untouched).
pub fn write_checkpoint(
    path: &Path,
    generation: u64,
    payloads: &[Vec<u8>],
) -> Result<u64, StoreError> {
    let mut sink = FnvWriter::new(AtomicFileWriter::create(path)?);
    sink.write_all(&CHECKPOINT_MAGIC)?;
    sink.write_all(&[CHECKPOINT_VERSION])?;
    sink.write_all(&generation.to_le_bytes())?;
    sink.write_all(&(payloads.len() as u64).to_le_bytes())?;
    for payload in payloads {
        let len = u32::try_from(payload.len()).map_err(|_| {
            StoreError::Corrupt(format!(
                "checkpoint entry of {} bytes exceeds frame limit",
                payload.len()
            ))
        })?;
        sink.write_all(&len.to_le_bytes())?;
        sink.write_all(payload)?;
    }
    let digest = sink.digest();
    let bytes = sink.bytes() + 8;
    let mut file = sink.into_inner();
    file.write_all(&digest.to_le_bytes())?;
    file.commit()?;
    Ok(bytes)
}

/// Reads and verifies the checkpoint at `path`; `Ok(None)` if the file
/// does not exist (a store that has never compacted).
///
/// # Errors
///
/// [`StoreError::Corrupt`] for a digest mismatch, structural damage, or
/// an entry larger than `max_record_len`; [`StoreError::Io`] for read
/// failures other than not-found.
pub fn read_checkpoint(
    path: &Path,
    max_record_len: usize,
) -> Result<Option<Checkpoint>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(err) => return Err(StoreError::Io(err)),
    };
    let corrupt = |what: &str| StoreError::Corrupt(format!("checkpoint {what}"));
    if bytes.len() < CHECKPOINT_HEADER_LEN + 8 {
        return Err(corrupt("shorter than its fixed header"));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - 8);
    let digest = u64::from_le_bytes(trailer.try_into().expect("8 bytes")); // lint: allow(L001, split_at guarantees an 8-byte trailer)
    if fnv1a(body) != digest {
        return Err(corrupt("digest mismatch"));
    }
    if body[..4] != CHECKPOINT_MAGIC {
        return Err(corrupt("magic mismatch"));
    }
    if body[4] != CHECKPOINT_VERSION {
        return Err(StoreError::Corrupt(format!(
            "checkpoint version {} unsupported (expected {CHECKPOINT_VERSION})",
            body[4]
        )));
    }
    let generation = u64::from_le_bytes(body[5..13].try_into().expect("8 bytes")); // lint: allow(L001, the header-length check above covers bytes 5..13)
    let count = u64::from_le_bytes(body[13..21].try_into().expect("8 bytes")); // lint: allow(L001, the header-length check above covers bytes 13..21)
    let mut payloads = Vec::new();
    let mut offset = CHECKPOINT_HEADER_LEN;
    for index in 0..count {
        let len_bytes = body
            .get(offset..offset + 4)
            .ok_or_else(|| corrupt("truncated inside an entry length"))?;
        let len = u32::from_le_bytes(len_bytes.try_into().expect("4 bytes")) as usize; // lint: allow(L001, the get() above returned exactly 4 bytes)
        if len > max_record_len {
            return Err(StoreError::Corrupt(format!(
                "checkpoint entry {index} of {len} bytes exceeds the record limit"
            )));
        }
        offset += 4;
        let payload = body
            .get(offset..offset + len)
            .ok_or_else(|| corrupt("truncated inside an entry payload"))?;
        payloads.push(payload.to_vec());
        offset += len;
    }
    if offset != body.len() {
        return Err(corrupt("has trailing bytes after its last entry"));
    }
    Ok(Some(Checkpoint {
        generation,
        payloads,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mocktails-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trips_and_reports_size() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("checkpoint.mstore");
        let payloads = vec![b"one".to_vec(), Vec::new(), b"three".to_vec()];
        let bytes = write_checkpoint(&path, 7, &payloads).unwrap();
        assert_eq!(bytes, std::fs::metadata(&path).unwrap().len());
        let back = read_checkpoint(&path, 1 << 20).unwrap().unwrap();
        assert_eq!(back.generation, 7);
        assert_eq!(back.payloads, payloads);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn absent_file_reads_as_none() {
        let dir = temp_dir("absent");
        assert!(read_checkpoint(&dir.join("nope"), 1 << 20)
            .unwrap()
            .is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn any_damage_is_a_hard_error() {
        let dir = temp_dir("damage");
        let path = dir.join("checkpoint.mstore");
        write_checkpoint(&path, 1, &[b"payload".to_vec()]).unwrap();
        let good = std::fs::read(&path).unwrap();
        // Flip every byte in turn: either the digest catches it or (for
        // the digest's own bytes) the re-hash disagrees.
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x01;
            std::fs::write(&path, &bad).unwrap();
            let err = read_checkpoint(&path, 1 << 20).unwrap_err();
            assert!(matches!(err, StoreError::Corrupt(_)), "byte {i}: {err}");
        }
        // Truncation anywhere is also corruption, never silent.
        for cut in 0..good.len() {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                read_checkpoint(&path, 1 << 20).is_err(),
                "truncated at {cut}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn oversized_entries_are_rejected_on_read() {
        let dir = temp_dir("oversize");
        let path = dir.join("checkpoint.mstore");
        write_checkpoint(&path, 1, &[vec![0u8; 64]]).unwrap();
        assert!(matches!(
            read_checkpoint(&path, 16),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
