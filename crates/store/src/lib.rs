//! Crash-recoverable on-disk store for Mocktails profiles.
//!
//! Fitted profiles are expensive (the full McC fitting pass) but small;
//! this crate makes them durable so a serve-layer restart warms its cache
//! from disk instead of re-fitting. The design is a classic write-ahead
//! log plus checkpoint pair with three load-bearing properties:
//!
//! * **Durability before acknowledgement** — [`ProfileStore::put_profile`]
//!   returns only after the record is framed, written, and fsynced.
//! * **Prefix consistency** — a crash (`kill -9`, power loss, torn write,
//!   failed fsync) at *any* byte boundary recovers to the longest valid
//!   log prefix, deterministically: the same files recover to the same
//!   state at any thread count, proven by a kill-point sweep test.
//! * **No silent salvage** — states a crash cannot produce (checkpoint
//!   digest mismatch, a log generation ahead of its checkpoint, foreign
//!   magic) refuse to load with [`StoreError::Corrupt`] instead of being
//!   guessed around.
//!
//! ```no_run
//! use std::sync::Arc;
//! use mocktails_core::{HierarchyConfig, Profile};
//! use mocktails_store::ProfileStore;
//! use mocktails_trace::{Request, Trace};
//!
//! let trace = Trace::from_requests(
//!     (0..100u64).map(|i| Request::read(i * 10, 0x1000 + (i % 50) * 64, 64)).collect(),
//! );
//! let profile = Arc::new(Profile::fit(&trace, &HierarchyConfig::two_level_ts(500_000)));
//!
//! let mut store = ProfileStore::open("profiles.store")?;
//! let fingerprint = store.put_profile(&profile, None)?; // durable once returned
//! store.compact()?;                                     // checkpoint + truncate the log
//! assert!(store.get(fingerprint).is_some());
//! # Ok::<(), mocktails_store::StoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod checkpoint;
mod error;
mod store;
pub mod wal;

pub use checkpoint::{read_checkpoint, write_checkpoint, Checkpoint};
pub use error::StoreError;
pub use store::{
    CompactStats, ProfileStore, RecoveryReport, StoreOptions, StoredEntry, CHECKPOINT_FILE,
    WAL_FILE,
};
pub use wal::{WalAppender, WalFrame, WalHeader, WalScan};
