//! Write-ahead log framing: append path and crash-tolerant replay scan.
//!
//! The log is a header followed by length-and-checksum-framed records:
//!
//! ```text
//! header:  magic "MWAL" | version u8 | generation u64 LE      (13 bytes)
//! record:  payload_len u32 LE | fnv1a(payload) u64 LE | payload
//! ```
//!
//! The append path writes one whole frame, flushes, then
//! [`SyncWrite::sync`]s before reporting success — a record is either
//! acknowledged *and* durable, or not acknowledged at all. A crash
//! (`kill -9`, power loss) can therefore leave at most a torn final
//! frame, and [`scan_frames`] recovers the longest valid prefix: it stops
//! at the first frame that is short, oversized, or fails its checksum,
//! and reports the byte offset to truncate back to. Nothing after a torn
//! frame is trusted, even if it happens to re-frame — the log's contract
//! is prefix consistency, not salvage.
//!
//! The generation number in the header ties a log to the checkpoint it
//! extends; [`crate::ProfileStore`] documents the reconciliation rules.

use mocktails_trace::fault::SyncWrite;
use mocktails_trace::fnv1a;

use crate::StoreError;

/// First four bytes of every write-ahead log.
pub const WAL_MAGIC: [u8; 4] = *b"MWAL";

/// Current log format version.
pub const WAL_VERSION: u8 = 1;

/// Size of the log header in bytes.
pub const WAL_HEADER_LEN: u64 = 13;

/// Size of one record frame's header (length + checksum) in bytes.
pub const FRAME_HEADER_LEN: u64 = 12;

/// Encodes a log header for `generation`.
pub fn header_bytes(generation: u64) -> [u8; WAL_HEADER_LEN as usize] {
    let mut header = [0u8; WAL_HEADER_LEN as usize];
    header[..4].copy_from_slice(&WAL_MAGIC);
    header[4] = WAL_VERSION;
    header[5..].copy_from_slice(&generation.to_le_bytes());
    header
}

/// The append half of the log, generic over the sink so the identical
/// code path runs against a real file in production and a
/// [`mocktails_trace::fault::FaultyWriter`] under fault injection.
///
/// After any write or sync failure the appender *wedges*: the on-disk
/// tail may be torn, so every later [`append`](Self::append) is refused
/// with [`StoreError::Wedged`] rather than risking interleaving good
/// frames after a bad one. Recovery is a log rewrite (compaction) or a
/// reopen-and-replay.
#[derive(Debug)]
pub struct WalAppender<S> {
    sink: S,
    bytes: u64,
    records: u64,
    wedged: bool,
}

impl<S: SyncWrite> WalAppender<S> {
    /// Wraps `sink`, which must be positioned at the end of a log already
    /// holding `bytes` bytes (header included) and `records` valid
    /// records.
    pub fn new(sink: S, bytes: u64, records: u64) -> Self {
        Self {
            sink,
            bytes,
            records,
            wedged: false,
        }
    }

    /// Appends one record frame and syncs it to stable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Wedged`] if a previous append failed;
    /// [`StoreError::Corrupt`] for a payload too large to frame;
    /// [`StoreError::Io`] for the underlying write/sync failure (which
    /// also wedges the appender).
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        if self.wedged {
            return Err(StoreError::Wedged);
        }
        let len = u32::try_from(payload.len()).map_err(|_| {
            StoreError::Corrupt(format!(
                "record of {} bytes exceeds frame limit",
                payload.len()
            ))
        })?;
        let mut frame = Vec::with_capacity(payload.len() + FRAME_HEADER_LEN as usize);
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&fnv1a(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let written = self
            .sink
            .write_all(&frame)
            .and_then(|()| self.sink.flush())
            .and_then(|()| self.sink.sync());
        if let Err(err) = written {
            self.wedged = true;
            return Err(StoreError::Io(err));
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Total log bytes (header included) known durable.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Records appended plus records the log already held at wrap time.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Whether a failed append has wedged this appender.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    /// Unwraps the sink (test hook).
    pub fn into_inner(self) -> S {
        self.sink
    }
}

/// Outcome of parsing a log header from raw bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalHeader {
    /// A complete, recognised header.
    Valid {
        /// The checkpoint generation this log extends.
        generation: u64,
    },
    /// Fewer than [`WAL_HEADER_LEN`] bytes: the file's atomic creation
    /// never completed (or an empty placeholder), recoverable by
    /// resetting the log.
    Torn,
    /// A full-length header with the wrong magic or version — not a state
    /// any crash of this code can produce, so not recoverable.
    Foreign(String),
}

/// Parses the log header at the start of `bytes`.
pub fn read_header(bytes: &[u8]) -> WalHeader {
    if bytes.len() < WAL_HEADER_LEN as usize {
        return WalHeader::Torn;
    }
    if bytes[..4] != WAL_MAGIC {
        return WalHeader::Foreign(format!("bad WAL magic {:02x?}", &bytes[..4]));
    }
    if bytes[4] != WAL_VERSION {
        return WalHeader::Foreign(format!(
            "unsupported WAL version {} (expected {WAL_VERSION})",
            bytes[4]
        ));
    }
    let mut generation = [0u8; 8];
    generation.copy_from_slice(&bytes[5..13]);
    WalHeader::Valid {
        generation: u64::from_le_bytes(generation),
    }
}

/// One structurally valid record recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalFrame {
    /// Byte offset of the frame's length prefix within the log file —
    /// the truncation point if this record turns out to be the first
    /// invalid one.
    pub offset: u64,
    /// The framed payload (checksum already verified).
    pub payload: Vec<u8>,
}

/// Result of a structural replay scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalScan {
    /// Checksum-valid frames, in log order.
    pub frames: Vec<WalFrame>,
    /// Length of the valid prefix; anything past it is a torn tail to
    /// truncate away.
    pub valid_len: u64,
}

/// Scans the records after a [valid](WalHeader::Valid) header, stopping
/// at the first frame that is short, larger than `max_record_len`, or
/// fails its checksum. Never errors: any byte state maps to a (possibly
/// empty) consistent prefix.
pub fn scan_frames(bytes: &[u8], max_record_len: usize) -> WalScan {
    let mut frames = Vec::new();
    let mut offset = WAL_HEADER_LEN as usize;
    while offset < bytes.len() {
        let remaining = &bytes[offset..];
        if remaining.len() < FRAME_HEADER_LEN as usize {
            break;
        }
        let len = u32::from_le_bytes(remaining[..4].try_into().expect("4 bytes")) as usize; // lint: allow(L001, the frame-header length check above covers bytes 0..4)
        if len > max_record_len {
            break;
        }
        let Some(payload) =
            remaining.get(FRAME_HEADER_LEN as usize..FRAME_HEADER_LEN as usize + len)
        else {
            break;
        };
        let crc = u64::from_le_bytes(remaining[4..12].try_into().expect("8 bytes")); // lint: allow(L001, the frame-header length check above covers bytes 4..12)
        if fnv1a(payload) != crc {
            break;
        }
        frames.push(WalFrame {
            offset: offset as u64,
            payload: payload.to_vec(),
        });
        offset += FRAME_HEADER_LEN as usize + len;
    }
    WalScan {
        frames,
        valid_len: offset as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mocktails_trace::fault::{FaultPlan, FaultyWriter};

    const MAX: usize = 1 << 20;

    fn golden_log(payloads: &[&[u8]]) -> Vec<u8> {
        let mut log = header_bytes(3).to_vec();
        let mut appender = WalAppender::new(Vec::new(), WAL_HEADER_LEN, 0);
        for payload in payloads {
            appender.append(payload).unwrap();
        }
        log.extend_from_slice(&appender.into_inner());
        log
    }

    #[test]
    fn append_then_scan_round_trips() {
        let log = golden_log(&[b"alpha", b"", b"gamma-gamma"]);
        assert_eq!(read_header(&log), WalHeader::Valid { generation: 3 });
        let scan = scan_frames(&log, MAX);
        assert_eq!(scan.valid_len, log.len() as u64);
        let payloads: Vec<&[u8]> = scan.frames.iter().map(|f| f.payload.as_slice()).collect();
        assert_eq!(payloads, vec![&b"alpha"[..], &b""[..], &b"gamma-gamma"[..]]);
        // Frame offsets are the truncation points: cutting at one must
        // drop exactly that frame and its successors.
        assert_eq!(scan.frames[0].offset, WAL_HEADER_LEN);
        let cut = scan.frames[2].offset as usize;
        let rescan = scan_frames(&log[..cut], MAX);
        assert_eq!(rescan.frames.len(), 2);
        assert_eq!(rescan.valid_len, cut as u64);
    }

    #[test]
    fn every_truncation_recovers_a_consistent_prefix() {
        let log = golden_log(&[b"one", b"two-two", b"three"]);
        let full = scan_frames(&log, MAX);
        for cut in WAL_HEADER_LEN as usize..=log.len() {
            let scan = scan_frames(&log[..cut], MAX);
            // The recovered frames are exactly those wholly below the cut.
            let expected: Vec<_> = full
                .frames
                .iter()
                .enumerate()
                .take_while(|(i, frame)| {
                    let end = full
                        .frames
                        .get(i + 1)
                        .map_or(log.len() as u64, |next| next.offset);
                    frame.offset <= cut as u64 && end <= cut as u64
                })
                .map(|(_, frame)| frame.clone())
                .collect();
            assert_eq!(scan.frames, expected, "cut at {cut}");
            assert!(scan.valid_len <= cut as u64);
        }
    }

    #[test]
    fn garbage_and_bitflips_stop_the_scan() {
        let mut log = golden_log(&[b"first", b"second"]);
        let second = scan_frames(&log, MAX).frames[1].offset;
        // A flipped payload byte fails the checksum: scan keeps frame 0.
        log[second as usize + FRAME_HEADER_LEN as usize] ^= 0x40;
        let scan = scan_frames(&log, MAX);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, second);
        // A garbage tail claiming an absurd length also stops cleanly.
        let mut log = golden_log(&[b"first"]);
        let end = log.len() as u64;
        log.extend_from_slice(&u32::MAX.to_le_bytes());
        log.extend_from_slice(&[0xAA; 16]);
        let scan = scan_frames(&log, MAX);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, end);
    }

    #[test]
    fn header_states_are_distinguished() {
        assert_eq!(read_header(&[]), WalHeader::Torn);
        assert_eq!(read_header(&header_bytes(9)[..7]), WalHeader::Torn);
        assert!(matches!(
            read_header(b"XWAL_________"),
            WalHeader::Foreign(_)
        ));
        let mut versioned = header_bytes(0);
        versioned[4] = 99;
        assert!(matches!(read_header(&versioned), WalHeader::Foreign(_)));
    }

    #[test]
    fn failed_sync_wedges_the_appender() {
        let plan = FaultPlan {
            fsync_fail_after: Some(0),
            ..FaultPlan::none()
        };
        let sink = FaultyWriter::new(Vec::new(), plan, 7);
        let mut appender = WalAppender::new(sink, WAL_HEADER_LEN, 0);
        assert!(matches!(appender.append(b"doomed"), Err(StoreError::Io(_))));
        assert!(appender.is_wedged());
        assert!(matches!(appender.append(b"after"), Err(StoreError::Wedged)));
        // The unacknowledged tail must be treated as lost even though the
        // bytes reached the (non-durable) sink.
        assert_eq!(appender.bytes(), WAL_HEADER_LEN);
        assert_eq!(appender.records(), 0);
    }

    #[test]
    fn torn_write_leaves_a_recoverable_prefix() {
        // Tear mid-way through the second frame: replay must keep exactly
        // the first record.
        let good = golden_log(&[b"keep-me", b"lose-me"]);
        let tear_at = scan_frames(&good, MAX).frames[1].offset + 5 - WAL_HEADER_LEN;
        let plan = FaultPlan {
            torn_at: Some(tear_at),
            ..FaultPlan::none()
        };
        let sink = FaultyWriter::new(Vec::new(), plan, 11);
        let mut appender = WalAppender::new(sink, WAL_HEADER_LEN, 0);
        appender.append(b"keep-me").unwrap();
        assert!(appender.append(b"lose-me").is_err());
        assert!(appender.is_wedged());
        let mut log = header_bytes(3).to_vec();
        log.extend_from_slice(&appender.into_inner().into_inner());
        let scan = scan_frames(&log, MAX);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.frames[0].payload, b"keep-me");
    }
}
