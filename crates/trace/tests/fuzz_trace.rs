//! Tier-1 seeded fuzz gate for the trace codec.
//!
//! Thousands of deterministically mutated encodings are pushed through
//! `read_trace` (and the streaming decoder): every case must either decode
//! cleanly — and then round-trip canonically — or return a typed error.
//! A panic, abort or unbounded allocation anywhere fails the suite.

use mocktails_pool::Parallelism;
use mocktails_trace::codec::{read_trace, write_trace};
use mocktails_trace::fault::{FaultPlan, FaultyReader};
use mocktails_trace::{
    fuzz, DecodeLimits, DecodeOptions, Request, StreamReader, Trace, TraceError,
};

/// Fixed campaign seed: never change without a good reason — CI failures
/// replay locally only while the seed matches.
const FUZZ_SEED: u64 = 0x4d54_5243_0000_0001; // "MTRC" | campaign 1

/// Cases per corpus entry; the corpus has 4 entries, so ≥ 2000 total.
const CASES_PER_ENTRY: usize = 600;

fn corpus() -> Vec<Vec<u8>> {
    let sequential: Trace = (0..300u64)
        .map(|i| Request::read(i * 4, 0x1000 + i * 64, 64))
        .collect();
    let mixed: Trace = (0..200u64)
        .map(|i| {
            if i % 3 == 0 {
                Request::write(i * 7, 0x8000_0000 + (i % 16) * 128, 128)
            } else {
                Request::read(i * 7, 0x8000_0000u64.wrapping_sub(i * 32), 64)
            }
        })
        .collect();
    let sparse: Trace = (0..50u64)
        .map(|i| Request::read(i * 1_000_000, i * 0x10_0000, 32))
        .collect();
    let empty = Trace::new();
    [sequential, mixed, sparse, empty]
        .iter()
        .map(|t| {
            let mut buf = Vec::new();
            write_trace(&mut buf, t).unwrap();
            buf
        })
        .collect()
}

#[test]
fn mutated_traces_decode_cleanly_or_fail_typed() {
    // The campaign fans out across the session's thread count; the report
    // (and every mutated case) is identical at any MOCKTAILS_THREADS.
    let report = fuzz::run_parallel(
        Parallelism::current(),
        &corpus(),
        CASES_PER_ENTRY,
        FUZZ_SEED,
        |bytes| match read_trace(&mut &bytes[..]) {
            Ok(trace) => {
                // Accepted inputs must round-trip canonically: re-encoding
                // and re-decoding reproduces the same trace.
                let mut re = Vec::new();
                write_trace(&mut re, &trace).unwrap();
                let again = read_trace(&mut re.as_slice()).unwrap();
                assert_eq!(again, trace, "canonical round-trip diverged");
                true
            }
            Err(
                TraceError::Corrupt(_)
                | TraceError::Io(_)
                | TraceError::UnsupportedVersion { .. }
                | TraceError::LimitExceeded { .. },
            ) => false,
        },
    );
    assert!(report.cases >= 2000, "only {} cases ran", report.cases);
    assert!(
        report.rejected > 0,
        "campaign never exercised the reject path: {report:?}"
    );
    assert!(
        report.accepted > 0,
        "campaign never exercised the accept path: {report:?}"
    );
}

#[test]
fn mutated_streams_iterate_to_completion_or_typed_error() {
    let report = fuzz::run(&corpus(), 200, FUZZ_SEED ^ 0xf00d, |bytes| {
        let mut reader = match StreamReader::new(bytes) {
            Ok(r) => r,
            Err(_) => return false,
        };
        // Bounded drain: the iterator must terminate (count or EOF) and
        // surface corruption as an Err item, never hang or panic.
        let mut ok = true;
        for item in reader.by_ref().take(100_000) {
            if item.is_err() {
                ok = false;
                break;
            }
        }
        ok
    });
    assert!(report.cases >= 800);
    assert!(report.accepted > 0 && report.rejected > 0, "{report:?}");
}

#[test]
fn decode_is_immune_to_benign_io_faults() {
    // Short reads and interrupted syscalls must be invisible: the decoded
    // trace is identical to a clean read for every seed.
    let base = &corpus()[1];
    let want = read_trace(&mut base.as_slice()).unwrap();
    for seed in 0..100u64 {
        let mut r = FaultyReader::new(base.as_slice(), FaultPlan::flaky(), seed);
        let got = read_trace(&mut r).unwrap();
        assert_eq!(got, want, "seed {seed}");
    }
}

#[test]
fn decode_under_corruption_faults_never_panics() {
    let base = &corpus()[0];
    for seed in 0..300u64 {
        let plan = FaultPlan {
            bit_flip: 0.01,
            truncate_at: (seed % 3 == 0).then_some(seed * 7 % base.len() as u64),
            short_op: 0.3,
            ..FaultPlan::none()
        };
        let mut r = FaultyReader::new(base.as_slice(), plan, seed);
        // Ok or typed Err are both acceptable; a panic fails the test.
        let _ = read_trace(&mut r);
    }
}

#[test]
fn hostile_count_under_faults_stays_bounded() {
    // 2^60 declared requests + fault injection: still a fast typed error.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(b"MTRC\x01");
    mocktails_trace::codec::write_u64(&mut hostile, 1 << 60).unwrap();
    for seed in 0..50u64 {
        let mut r = FaultyReader::new(hostile.as_slice(), FaultPlan::flaky(), seed);
        assert!(matches!(
            read_trace(&mut r),
            Err(TraceError::LimitExceeded { .. } | TraceError::Io(_))
        ));
    }
    let tight = DecodeLimits {
        max_requests: 10,
        ..DecodeLimits::default()
    };
    let options = DecodeOptions::new().with_limits(tight);
    let err = Trace::read(&mut hostile.as_slice(), &options).unwrap_err();
    assert!(matches!(err, TraceError::LimitExceeded { declared, .. } if declared == 1 << 60));
}
