//! Randomized property tests of the trace crate's invariants, driven by
//! the workspace's own deterministic PRNG (hermetic: no external crates).
//!
//! Each test sweeps a fixed number of seeded cases; a failure message
//! includes the case seed so the exact input can be replayed.

use mocktails_trace::codec::{
    read_csv, read_i64, read_u64, unzigzag, write_csv, write_i64, write_u64, zigzag,
};
use mocktails_trace::rng::{Prng, Rng};
use mocktails_trace::{AddrRange, BinnedCounts, Op, Request, Trace};

const CASES: u64 = 128;

fn rand_request(rng: &mut Prng) -> Request {
    let t = u64::from(rng.next_u64() as u32);
    // Keep end_address from overflowing.
    let addr = rng.next_u64() >> 1;
    let op = if rng.gen_bool(0.5) {
        Op::Write
    } else {
        Op::Read
    };
    let size = rng.gen_range(1..100_000u32);
    Request::new(t, addr, op, size)
}

fn rand_requests(rng: &mut Prng, min: usize, max: usize) -> Vec<Request> {
    let n = rng.gen_range(min..max);
    (0..n).map(|_| rand_request(rng)).collect()
}

#[test]
fn varint_u64_round_trips() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0001);
    for case in 0..CASES {
        let v = rng.next_u64() >> rng.gen_range(0..64u32);
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        assert!(
            buf.len() <= 10,
            "case {case}: {v} encoded to {} bytes",
            buf.len()
        );
        assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v, "case {case}");
    }
}

#[test]
fn varint_i64_round_trips() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0002);
    for case in 0..CASES {
        let v = (rng.next_u64() >> rng.gen_range(0..64u32)) as i64;
        let v = if rng.gen_bool(0.5) {
            v
        } else {
            v.wrapping_neg()
        };
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v, "case {case}");
    }
}

#[test]
fn zigzag_is_a_bijection() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0003);
    for case in 0..CASES {
        let v = rng.next_u64() as i64;
        assert_eq!(unzigzag(zigzag(v)), v, "case {case}");
    }
    for v in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert_eq!(unzigzag(zigzag(v)), v);
    }
}

#[test]
fn zigzag_orders_by_magnitude() {
    // Smaller magnitudes never encode longer than larger ones.
    let mut rng = Prng::seed_from_u64(0x7ACE_0004);
    let len = |v: i64| {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        buf.len()
    };
    for case in 0..CASES {
        let a = rng.gen_range(-1_000_000..1_000_000i64);
        let b = rng.gen_range(-1_000_000..1_000_000i64);
        if a.unsigned_abs() < b.unsigned_abs() {
            assert!(len(a) <= len(b), "case {case}: len({a}) > len({b})");
        }
    }
}

#[test]
fn csv_round_trips() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0005);
    for case in 0..CASES {
        let trace = Trace::from_requests(rand_requests(&mut rng, 0, 100));
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(back, trace, "case {case}");
    }
}

#[test]
fn trace_invariants() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0006);
    for case in 0..CASES {
        let reqs = rand_requests(&mut rng, 1, 200);
        let trace = Trace::from_requests(reqs.clone());
        assert_eq!(trace.len(), reqs.len(), "case {case}");
        assert_eq!(trace.reads() + trace.writes(), trace.len(), "case {case}");
        assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
        let fp = trace.footprint_range().unwrap();
        for r in trace.iter() {
            assert!(fp.contains_range(&r.range()), "case {case}");
        }
    }
}

#[test]
fn binned_counts_conserve_requests() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0007);
    for case in 0..CASES {
        let trace = Trace::from_requests(rand_requests(&mut rng, 1, 200));
        let width = rng.gen_range(1..1_000_000u64);
        let bins = BinnedCounts::from_trace(&trace, width);
        assert_eq!(
            bins.counts().iter().sum::<usize>(),
            trace.len(),
            "case {case}"
        );
        assert!(bins.peak() <= trace.len(), "case {case}");
    }
}

#[test]
fn stream_writer_reader_round_trip() {
    let mut rng = Prng::seed_from_u64(0x7ACE_0008);
    for case in 0..CASES {
        let trace = Trace::from_requests(rand_requests(&mut rng, 0, 120));
        let mut buf = Vec::new();
        let mut w = mocktails_trace::StreamWriter::new(&mut buf).unwrap();
        for r in trace.iter() {
            w.write(r).unwrap();
        }
        assert_eq!(w.written(), trace.len() as u64, "case {case}");
        w.finish().unwrap();
        let reader = mocktails_trace::StreamReader::new(buf.as_slice()).unwrap();
        let back: Result<Vec<_>, _> = reader.collect();
        assert_eq!(back.unwrap(), trace.requests().to_vec(), "case {case}");
    }
}

#[test]
fn decoder_never_panics_on_arbitrary_bytes() {
    // Any input must yield Ok or Err — never a panic.
    let mut rng = Prng::seed_from_u64(0x7ACE_0009);
    for _ in 0..CASES {
        let n = rng.gen_range(0..256usize);
        let bytes: Vec<u8> = (0..n).map(|_| rng.next_u64() as u8).collect();
        let _ = mocktails_trace::codec::read_trace(&mut bytes.as_slice());
        let _ = mocktails_trace::codec::read_csv(&mut bytes.as_slice());
        if let Ok(reader) = mocktails_trace::StreamReader::new(bytes.as_slice()) {
            for item in reader.take(64) {
                if item.is_err() {
                    break;
                }
            }
        }
    }
}

#[test]
fn decoder_never_panics_on_corrupted_valid_traces() {
    let mut rng = Prng::seed_from_u64(0x7ACE_000A);
    for _ in 0..CASES {
        let trace = Trace::from_requests(rand_requests(&mut rng, 1, 40));
        let mut buf = Vec::new();
        mocktails_trace::codec::write_trace(&mut buf, &trace).unwrap();
        let idx = rng.gen_range(0..buf.len());
        buf[idx] ^= (rng.next_u64() as u8) | 1; // guarantee a change
        let _ = mocktails_trace::codec::read_trace(&mut buf.as_slice());
    }
}

#[test]
fn range_union_contains_both() {
    let mut rng = Prng::seed_from_u64(0x7ACE_000B);
    for case in 0..CASES {
        let ra = AddrRange::from_start_size(
            u64::from(rng.next_u64() as u32),
            rng.gen_range(1..1_000_000u64),
        );
        let rb = AddrRange::from_start_size(
            u64::from(rng.next_u64() as u32),
            rng.gen_range(1..1_000_000u64),
        );
        let u = ra.union(&rb);
        assert!(u.contains_range(&ra), "case {case}");
        assert!(u.contains_range(&rb), "case {case}");
        assert!(u.len() >= ra.len().max(rb.len()), "case {case}");
    }
}

#[test]
fn range_intersection_is_symmetric_and_contained() {
    let mut rng = Prng::seed_from_u64(0x7ACE_000C);
    for case in 0..CASES {
        let ra = AddrRange::from_start_size(
            u64::from(rng.next_u64() as u32),
            rng.gen_range(1..1_000_000u64),
        );
        let rb = AddrRange::from_start_size(
            u64::from(rng.next_u64() as u32),
            rng.gen_range(1..1_000_000u64),
        );
        assert_eq!(ra.intersection(&rb), rb.intersection(&ra), "case {case}");
        if let Some(i) = ra.intersection(&rb) {
            assert!(ra.contains_range(&i), "case {case}");
            assert!(rb.contains_range(&i), "case {case}");
            assert!(ra.overlaps(&rb), "case {case}");
        } else {
            assert!(!ra.overlaps(&rb), "case {case}");
        }
    }
}
