//! Property-based tests of the trace crate's invariants.

use proptest::prelude::*;

use mocktails_trace::codec::{
    read_csv, read_i64, read_u64, unzigzag, write_csv, write_i64, write_u64, zigzag,
};
use mocktails_trace::{AddrRange, BinnedCounts, Op, Request, Trace};

fn arb_request() -> impl Strategy<Value = Request> {
    (any::<u32>(), any::<u64>(), any::<bool>(), 1u32..100_000).prop_map(
        |(t, addr, write, size)| {
            let op = if write { Op::Write } else { Op::Read };
            // Keep end_address from overflowing.
            Request::new(u64::from(t), addr >> 1, op, size)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_u64_round_trips(v: u64) {
        let mut buf = Vec::new();
        write_u64(&mut buf, v).unwrap();
        prop_assert!(buf.len() <= 10);
        prop_assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v);
    }

    #[test]
    fn varint_i64_round_trips(v: i64) {
        let mut buf = Vec::new();
        write_i64(&mut buf, v).unwrap();
        prop_assert_eq!(read_i64(&mut buf.as_slice()).unwrap(), v);
    }

    #[test]
    fn zigzag_is_a_bijection(v: i64) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn zigzag_orders_by_magnitude(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        // Smaller magnitudes never encode longer than larger ones.
        if a.unsigned_abs() < b.unsigned_abs() {
            let len = |v: i64| {
                let mut buf = Vec::new();
                write_i64(&mut buf, v).unwrap();
                buf.len()
            };
            prop_assert!(len(a) <= len(b));
        }
    }

    #[test]
    fn csv_round_trips(reqs in prop::collection::vec(arb_request(), 0..100)) {
        let trace = Trace::from_requests(reqs);
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, trace);
    }

    #[test]
    fn trace_invariants(reqs in prop::collection::vec(arb_request(), 1..200)) {
        let trace = Trace::from_requests(reqs.clone());
        prop_assert_eq!(trace.len(), reqs.len());
        prop_assert_eq!(trace.reads() + trace.writes(), trace.len());
        prop_assert!(trace
            .requests()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
        let fp = trace.footprint_range().unwrap();
        for r in trace.iter() {
            prop_assert!(fp.contains_range(&r.range()));
        }
    }

    #[test]
    fn binned_counts_conserve_requests(
        reqs in prop::collection::vec(arb_request(), 1..200),
        width in 1u64..1_000_000,
    ) {
        let trace = Trace::from_requests(reqs);
        let bins = BinnedCounts::from_trace(&trace, width);
        prop_assert_eq!(bins.counts().iter().sum::<usize>(), trace.len());
        prop_assert!(bins.peak() <= trace.len());
    }

    #[test]
    fn stream_writer_reader_round_trip(reqs in prop::collection::vec(arb_request(), 0..120)) {
        let trace = Trace::from_requests(reqs);
        let mut buf = Vec::new();
        let mut w = mocktails_trace::StreamWriter::new(&mut buf).unwrap();
        for r in trace.iter() {
            w.write(r).unwrap();
        }
        prop_assert_eq!(w.written(), trace.len() as u64);
        w.finish().unwrap();
        let reader = mocktails_trace::StreamReader::new(buf.as_slice()).unwrap();
        let back: Result<Vec<_>, _> = reader.collect();
        prop_assert_eq!(back.unwrap(), trace.requests().to_vec());
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Any input must yield Ok or Err — never a panic.
        let _ = mocktails_trace::codec::read_trace(&mut bytes.as_slice());
        let _ = mocktails_trace::codec::read_csv(&mut bytes.as_slice());
        if let Ok(reader) = mocktails_trace::StreamReader::new(bytes.as_slice()) {
            for item in reader.take(64) {
                if item.is_err() {
                    break;
                }
            }
        }
    }

    #[test]
    fn decoder_never_panics_on_corrupted_valid_traces(
        reqs in prop::collection::vec(arb_request(), 1..40),
        flip in any::<(u16, u8)>(),
    ) {
        let trace = Trace::from_requests(reqs);
        let mut buf = Vec::new();
        mocktails_trace::codec::write_trace(&mut buf, &trace).unwrap();
        let idx = flip.0 as usize % buf.len();
        buf[idx] ^= flip.1 | 1; // guarantee a change
        let _ = mocktails_trace::codec::read_trace(&mut buf.as_slice());
    }

    #[test]
    fn range_union_contains_both(a in any::<u32>(), la in 1u64..1_000_000, b in any::<u32>(), lb in 1u64..1_000_000) {
        let ra = AddrRange::from_start_size(u64::from(a), la);
        let rb = AddrRange::from_start_size(u64::from(b), lb);
        let u = ra.union(&rb);
        prop_assert!(u.contains_range(&ra));
        prop_assert!(u.contains_range(&rb));
        prop_assert!(u.len() >= ra.len().max(rb.len()));
    }

    #[test]
    fn range_intersection_is_symmetric_and_contained(
        a in any::<u32>(), la in 1u64..1_000_000,
        b in any::<u32>(), lb in 1u64..1_000_000,
    ) {
        let ra = AddrRange::from_start_size(u64::from(a), la);
        let rb = AddrRange::from_start_size(u64::from(b), lb);
        prop_assert_eq!(ra.intersection(&rb), rb.intersection(&ra));
        if let Some(i) = ra.intersection(&rb) {
            prop_assert!(ra.contains_range(&i));
            prop_assert!(rb.contains_range(&i));
            prop_assert!(ra.overlaps(&rb));
        } else {
            prop_assert!(!ra.overlaps(&rb));
        }
    }
}
