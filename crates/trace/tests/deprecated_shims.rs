//! The PR 3 deprecated decode shims must keep forwarding bit-identically
//! to the `DecodeOptions`-based reader they wrap — same traces on valid
//! input, same typed errors on corrupt or over-limit input. L010 pins the
//! shims in the API baseline; this pins their behaviour.

#![allow(deprecated)]

use mocktails_trace::codec::{read_trace_with, read_trace_with_limits, write_trace};
use mocktails_trace::{DecodeLimits, DecodeOptions, Request, Trace};

fn sample_trace() -> Trace {
    (0..200u64)
        .map(|i| {
            if i % 3 == 0 {
                Request::write(i * 5, 0x8000 + (i % 32) * 64, 64)
            } else {
                Request::read(i * 5, 0x8000 + (i % 32) * 64, 8)
            }
        })
        .collect()
}

fn encoded() -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, &sample_trace()).unwrap();
    buf
}

#[test]
fn shim_decodes_identically_to_options_based_read() {
    let bytes = encoded();
    let limits = DecodeLimits::default();
    let via_shim = read_trace_with_limits(&mut &bytes[..], &limits).unwrap();
    let via_options = read_trace_with(
        &mut &bytes[..],
        &DecodeOptions::default().with_limits(limits),
    )
    .unwrap();
    assert_eq!(via_shim, via_options);
    assert_eq!(via_shim, sample_trace());
}

#[test]
fn shim_reports_identical_errors_on_corrupt_input() {
    let mut bytes = encoded();
    bytes.truncate(bytes.len() - 3);
    let limits = DecodeLimits::default();
    let shim_err = read_trace_with_limits(&mut &bytes[..], &limits).unwrap_err();
    let options_err = read_trace_with(
        &mut &bytes[..],
        &DecodeOptions::default().with_limits(limits),
    )
    .unwrap_err();
    assert_eq!(shim_err.to_string(), options_err.to_string());
}

#[test]
fn shim_enforces_the_given_limits() {
    let bytes = encoded();
    let tight = DecodeLimits {
        max_requests: 10,
        ..DecodeLimits::default()
    };
    let shim_err = read_trace_with_limits(&mut &bytes[..], &tight).unwrap_err();
    let options_err = read_trace_with(
        &mut &bytes[..],
        &DecodeOptions::default().with_limits(tight),
    )
    .unwrap_err();
    assert_eq!(shim_err.to_string(), options_err.to_string());
    assert!(shim_err.to_string().contains("requests"), "{shim_err}");
}
