//! Error type for trace I/O.

/// Errors produced when encoding or decoding traces and profiles.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The input is not a valid encoded trace or profile.
    Corrupt(String),
    /// The file was produced by an unsupported codec version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u8,
        /// Version this library understands.
        expected: u8,
    },
    /// A declared count or size exceeds the decoder's resource limits
    /// (see [`crate::DecodeLimits`]). Turning resource exhaustion into a
    /// typed error keeps hostile inputs from allocating unbounded memory.
    LimitExceeded {
        /// Which declared quantity tripped the limit (e.g. `"requests"`).
        what: &'static str,
        /// The value the input declared.
        declared: u64,
        /// The configured maximum.
        limit: u64,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "i/o error: {e}"),
            TraceError::Corrupt(msg) => write!(f, "corrupt encoding: {msg}"),
            TraceError::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported codec version {found} (expected {expected})")
            }
            TraceError::LimitExceeded {
                what,
                declared,
                limit,
            } => {
                write!(
                    f,
                    "declared {what} count {declared} exceeds decode limit {limit}"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = TraceError::Corrupt("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
        let e = TraceError::UnsupportedVersion {
            found: 9,
            expected: 1,
        };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn limit_exceeded_display_names_the_quantity() {
        let e = TraceError::LimitExceeded {
            what: "requests",
            declared: 1 << 60,
            limit: 1 << 30,
        };
        let s = e.to_string();
        assert!(s.contains("requests"), "{s}");
        assert!(s.contains(&(1u64 << 60).to_string()), "{s}");
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "eof");
        let e = TraceError::from(inner);
        assert!(e.source().is_some());
    }
}
