//! Streaming trace I/O: encode and decode request-by-request without
//! materializing the whole trace in memory.
//!
//! The paper's motivation for profiles is that traces of "larger and
//! longer running applications ... would be particularly cumbersome to
//! store or distribute" (§V). A library a downstream user adopts must
//! therefore be able to process such traces incrementally; these types
//! wrap the [`crate::codec`] format behind an iterator/writer pair.
//!
//! ```
//! use mocktails_trace::{Request, StreamWriter, StreamReader};
//!
//! let mut buf = Vec::new();
//! let mut writer = StreamWriter::new(&mut buf)?;
//! writer.write(&Request::read(0, 0x1000, 64))?;
//! writer.write(&Request::read(8, 0x1040, 64))?;
//! writer.finish()?;
//!
//! let reader = StreamReader::new(buf.as_slice())?;
//! let requests: Result<Vec<_>, _> = reader.collect();
//! assert_eq!(requests?.len(), 2);
//! # Ok::<(), mocktails_trace::TraceError>(())
//! ```

use std::io::{Read, Seek, SeekFrom, Write};

use crate::codec::{read_i64, read_u64, write_u64, RecordEncoder, CODEC_VERSION, TRACE_MAGIC};
use crate::{Op, Request, TraceError};

/// Placeholder request count written while streaming; [`StreamWriter`]
/// patches it on [`StreamWriter::finish`] when the sink supports seeking,
/// and the reader treats it as "count unknown, read until EOF".
const COUNT_UNKNOWN: u64 = u64::MAX;

/// Incremental encoder for the binary trace format.
///
/// Requests must be written in non-decreasing timestamp order (the order
/// a memory system observes them).
#[derive(Debug)]
pub struct StreamWriter<W: Write> {
    sink: W,
    encoder: RecordEncoder,
    last_time: u64,
    written: u64,
    finished: bool,
}

impl<W: Write> StreamWriter<W> {
    /// Writes the header and returns a writer ready for requests.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W) -> Result<Self, TraceError> {
        sink.write_all(&TRACE_MAGIC)?;
        sink.write_all(&[CODEC_VERSION])?;
        // Fixed-width count placeholder (10-byte varint encoding of
        // u64::MAX) so seekable sinks can patch it in place.
        write_u64(&mut sink, COUNT_UNKNOWN)?;
        Ok(Self {
            sink,
            encoder: RecordEncoder::new(),
            last_time: 0,
            written: 0,
            finished: false,
        })
    }

    /// Appends one request.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    ///
    /// # Panics
    ///
    /// Panics if the request's timestamp precedes the previous one, or if
    /// the writer was already finished.
    pub fn write(&mut self, request: &Request) -> Result<(), TraceError> {
        assert!(!self.finished, "writer already finished");
        assert!(
            request.timestamp >= self.last_time,
            "requests must be written in timestamp order"
        );
        self.encoder.encode(&mut self.sink, request)?;
        self.last_time = request.timestamp;
        self.written += 1;
        Ok(())
    }

    /// Number of requests written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the sink. The encoded stream keeps the
    /// "count unknown" marker; readers stop at end of input.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.finished = true;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

impl<W: Write + Seek> StreamWriter<W> {
    /// Like [`StreamWriter::finish`], but patches the header's request
    /// count in place so the stream is byte-compatible with
    /// [`crate::codec::read_trace`]'s expectations of an exact count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn finish_seekable(mut self) -> Result<W, TraceError> {
        self.finished = true;
        self.sink.seek(SeekFrom::Start(5))?;
        // Re-encode the count in exactly 10 bytes (continuation-padded
        // varint) so it occupies the placeholder space.
        let mut v = self.written;
        let mut bytes = [0x80u8; 10];
        for b in bytes.iter_mut().take(9) {
            *b = ((v & 0x7f) as u8) | 0x80;
            v >>= 7;
        }
        bytes[9] = (v & 0x7f) as u8;
        self.sink.write_all(&bytes)?;
        self.sink.seek(SeekFrom::End(0))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Incremental decoder: an iterator over the requests of an encoded
/// trace.
#[derive(Debug)]
pub struct StreamReader<R: Read> {
    source: R,
    last_time: u64,
    last_addr: i64,
    remaining: Option<u64>,
}

impl<R: Read> StreamReader<R> {
    /// Reads and validates the header.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] for bad magic,
    /// [`TraceError::UnsupportedVersion`] for a version mismatch, or an
    /// I/O error from the source.
    pub fn new(mut source: R) -> Result<Self, TraceError> {
        let mut magic = [0u8; 4];
        source.read_exact(&mut magic)?;
        if magic != TRACE_MAGIC {
            return Err(TraceError::Corrupt("bad trace magic".into()));
        }
        let mut version = [0u8; 1];
        source.read_exact(&mut version)?;
        if version[0] != CODEC_VERSION {
            return Err(TraceError::UnsupportedVersion {
                found: version[0],
                expected: CODEC_VERSION,
            });
        }
        let count = read_u64(&mut source)?;
        Ok(Self {
            source,
            last_time: 0,
            last_addr: 0,
            remaining: (count != COUNT_UNKNOWN).then_some(count),
        })
    }

    /// Requests left, when the stream declared a count.
    pub fn remaining(&self) -> Option<u64> {
        self.remaining
    }

    fn read_one(&mut self) -> Result<Option<Request>, TraceError> {
        if self.remaining == Some(0) {
            return Ok(None);
        }
        let dt = match read_u64(&mut self.source) {
            Ok(v) => v,
            Err(TraceError::Io(e))
                if self.remaining.is_none() && e.kind() == std::io::ErrorKind::UnexpectedEof =>
            {
                // Unknown-count streams end at EOF.
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        let da = read_i64(&mut self.source)?;
        let size_op = read_u64(&mut self.source)?;
        let size = u32::try_from(size_op >> 1)
            .map_err(|_| TraceError::Corrupt("request size overflows u32".into()))?;
        if size == 0 {
            return Err(TraceError::Corrupt("zero-size request".into()));
        }
        self.last_time = self
            .last_time
            .checked_add(dt)
            .ok_or_else(|| TraceError::Corrupt("timestamp overflows u64".into()))?;
        self.last_addr = self.last_addr.wrapping_add(da);
        if let Some(n) = &mut self.remaining {
            *n -= 1;
        }
        Ok(Some(Request::new(
            self.last_time,
            self.last_addr as u64,
            Op::from_bit((size_op & 1) as u8),
            size,
        )))
    }
}

impl<R: Read> Iterator for StreamReader<R> {
    type Item = Result<Request, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.read_one().transpose()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_trace, write_trace};
    use crate::Trace;

    fn sample() -> Vec<Request> {
        (0..100u64)
            .map(|i| {
                if i % 3 == 0 {
                    Request::write(i * 7, 0x1000 + i * 64, 128)
                } else {
                    Request::read(i * 7, 0x9000 - i * 32, 64)
                }
            })
            .collect()
    }

    #[test]
    fn stream_round_trip() {
        let reqs = sample();
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf).unwrap();
        for r in &reqs {
            w.write(r).unwrap();
        }
        assert_eq!(w.written(), 100);
        w.finish().unwrap();

        let r = StreamReader::new(buf.as_slice()).unwrap();
        let back: Result<Vec<Request>, TraceError> = r.collect();
        assert_eq!(back.unwrap(), reqs);
    }

    #[test]
    fn seekable_finish_is_batch_compatible() {
        let reqs = sample();
        let mut cursor = std::io::Cursor::new(Vec::new());
        let mut w = StreamWriter::new(&mut cursor).unwrap();
        for r in &reqs {
            w.write(r).unwrap();
        }
        w.finish_seekable().unwrap();
        let bytes = cursor.into_inner();
        // The batch decoder accepts the patched stream.
        let trace = read_trace(&mut bytes.as_slice()).unwrap();
        assert_eq!(trace.requests(), reqs.as_slice());
    }

    #[test]
    fn reader_accepts_batch_encoded_traces() {
        let trace = Trace::from_requests(sample());
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let r = StreamReader::new(buf.as_slice()).unwrap();
        assert_eq!(r.remaining(), Some(100));
        let back: Vec<Request> = r.map(Result::unwrap).collect();
        assert_eq!(back, trace.requests());
    }

    #[test]
    fn empty_stream() {
        let mut buf = Vec::new();
        StreamWriter::new(&mut buf).unwrap().finish().unwrap();
        let mut r = StreamReader::new(buf.as_slice()).unwrap();
        assert!(r.next().is_none());
    }

    #[test]
    fn truncated_stream_is_an_error_not_silence() {
        let reqs = sample();
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf).unwrap();
        for r in &reqs {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        // Chop inside a request record (not at a boundary).
        buf.truncate(buf.len() - 1);
        let r = StreamReader::new(buf.as_slice()).unwrap();
        let items: Vec<Result<Request, TraceError>> = r.collect();
        assert!(items.last().unwrap().is_err(), "mid-record cut must error");
    }

    #[test]
    #[should_panic(expected = "timestamp order")]
    fn out_of_order_write_panics() {
        let mut buf = Vec::new();
        let mut w = StreamWriter::new(&mut buf).unwrap();
        w.write(&Request::read(10, 0, 4)).unwrap();
        let _ = w.write(&Request::read(5, 0, 4));
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"XXXX\x01".to_vec();
        assert!(StreamReader::new(buf.as_slice()).is_err());
    }
}
