//! Order-sensitive trace fingerprinting.
//!
//! The workspace's headline parallelism invariant — *bit-identical output
//! at any thread count* — needs a cheap, order-sensitive probe that two
//! traces are the same request stream, not merely statistically similar.
//! [`fingerprint`] hashes every field of every request in trace order with
//! FNV-1a, so a single transposed request, flipped op bit or shifted
//! timestamp changes the digest.
//!
//! The algorithm (including the field mix order) is pinned by the golden
//! regression tests in `crates/workloads/tests/golden.rs`; changing it
//! invalidates every recorded fingerprint in the repository.

use crate::{Op, Trace};

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over every field of every request, in trace order.
///
/// Per request, the fields are mixed as little-endian `u64`s in the fixed
/// order timestamp, address, size, op (`Read` = 0, `Write` = 1). Equal
/// traces always produce equal fingerprints; distinct request streams
/// produce distinct fingerprints with the usual 64-bit collision odds.
///
/// ```
/// use mocktails_trace::{fingerprint, Request, Trace};
///
/// let a = Trace::from_requests(vec![Request::read(0, 0x1000, 64)]);
/// let b = Trace::from_requests(vec![Request::read(0, 0x1040, 64)]);
/// assert_eq!(fingerprint(&a), fingerprint(&a));
/// assert_ne!(fingerprint(&a), fingerprint(&b));
/// ```
pub fn fingerprint(trace: &Trace) -> u64 {
    let mut h = OFFSET;
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(PRIME);
        }
    };
    for r in trace.iter() {
        mix(r.timestamp);
        mix(r.address);
        mix(u64::from(r.size));
        mix(match r.op {
            Op::Read => 0,
            Op::Write => 1,
        });
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    #[test]
    fn empty_trace_hashes_to_the_offset_basis() {
        assert_eq!(fingerprint(&Trace::new()), OFFSET);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let ab = Trace::from_sorted_requests(vec![
            Request::read(0, 0x1000, 64),
            Request::write(0, 0x2000, 64),
        ]);
        let ba = Trace::from_sorted_requests(vec![
            Request::write(0, 0x2000, 64),
            Request::read(0, 0x1000, 64),
        ]);
        assert_ne!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn every_field_participates() {
        let base = Trace::from_requests(vec![Request::read(5, 0x1000, 64)]);
        let variants = [
            Trace::from_requests(vec![Request::read(6, 0x1000, 64)]),
            Trace::from_requests(vec![Request::read(5, 0x1001, 64)]),
            Trace::from_requests(vec![Request::read(5, 0x1000, 32)]),
            Trace::from_requests(vec![Request::write(5, 0x1000, 64)]),
        ];
        for variant in &variants {
            assert_ne!(fingerprint(&base), fingerprint(variant));
        }
    }
}
