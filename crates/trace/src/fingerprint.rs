//! Order-sensitive trace fingerprinting.
//!
//! The workspace's headline parallelism invariant — *bit-identical output
//! at any thread count* — needs a cheap, order-sensitive probe that two
//! traces are the same request stream, not merely statistically similar.
//! [`fingerprint`] hashes every field of every request in trace order with
//! FNV-1a, so a single transposed request, flipped op bit or shifted
//! timestamp changes the digest.
//!
//! The serving layer reuses the same primitives in incremental form:
//! [`Fingerprinter`] digests a request stream one record at a time (so a
//! server can fingerprint what it streams without buffering the trace),
//! [`fnv1a`] hashes raw encoded bytes for cache keys, and [`FnvWriter`]
//! hashes an encoding as it is written.
//!
//! The algorithm (including the field mix order) is pinned by the golden
//! regression tests in `crates/workloads/tests/golden.rs`; changing it
//! invalidates every recorded fingerprint in the repository.

use std::io::Write;

use crate::{Op, Request, Trace};

/// FNV-1a 64-bit offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over an arbitrary byte string.
///
/// Used by the serving layer to derive cache keys from encoded trace and
/// profile bytes: equal byte strings — and therefore, by the determinism
/// invariant, equal inputs — always map to the same key.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Incremental form of [`fingerprint`]: push requests one at a time and
/// read the digest at any point.
///
/// Pushing the requests of a trace in order yields exactly
/// `fingerprint(&trace)`, so a streaming producer and a whole-trace
/// consumer agree on the digest without either materializing the other's
/// view.
///
/// ```
/// use mocktails_trace::{fingerprint, Fingerprinter, Request, Trace};
///
/// let requests = vec![Request::read(0, 0x1000, 64), Request::write(4, 0x2000, 32)];
/// let mut f = Fingerprinter::new();
/// for r in &requests {
///     f.push(r);
/// }
/// assert_eq!(f.digest(), fingerprint(&Trace::from_requests(requests)));
/// ```
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    hash: u64,
    count: u64,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fingerprinter over the empty stream (digest = FNV offset basis).
    pub fn new() -> Self {
        Self {
            hash: OFFSET,
            count: 0,
        }
    }

    /// Mixes one request into the digest, in the pinned field order
    /// (timestamp, address, size, op).
    pub fn push(&mut self, request: &Request) {
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                self.hash ^= u64::from(byte);
                self.hash = self.hash.wrapping_mul(PRIME);
            }
        };
        mix(request.timestamp);
        mix(request.address);
        mix(u64::from(request.size));
        mix(match request.op {
            Op::Read => 0,
            Op::Write => 1,
        });
        self.count += 1;
    }

    /// Digest of everything pushed so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Number of requests pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }
}

/// An `io::Write` adapter that FNV-1a-hashes every byte it forwards (or
/// discards, when constructed over [`sink`](std::io::sink)-like usage via
/// [`FnvWriter::hashing`]), so an encoding can be fingerprinted as it is
/// produced without a second pass over the bytes.
///
/// ```
/// use std::io::Write;
/// use mocktails_trace::{fnv1a, FnvWriter};
///
/// let mut w = FnvWriter::hashing();
/// w.write_all(b"mocktails").unwrap();
/// assert_eq!(w.digest(), fnv1a(b"mocktails"));
/// ```
#[derive(Debug)]
pub struct FnvWriter<W> {
    inner: W,
    hash: u64,
    bytes: u64,
}

impl FnvWriter<std::io::Sink> {
    /// A hashing writer that discards the bytes, keeping only the digest.
    pub fn hashing() -> Self {
        Self::new(std::io::sink())
    }
}

impl<W: Write> FnvWriter<W> {
    /// Wraps `inner`, hashing every byte written through it.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            hash: OFFSET,
            bytes: 0,
        }
    }

    /// FNV-1a digest of every byte written so far.
    pub fn digest(&self) -> u64 {
        self.hash
    }

    /// Number of bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FnvWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        for &b in &buf[..n] {
            self.hash ^= u64::from(b);
            self.hash = self.hash.wrapping_mul(PRIME);
        }
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// FNV-1a over every field of every request, in trace order.
///
/// Per request, the fields are mixed as little-endian `u64`s in the fixed
/// order timestamp, address, size, op (`Read` = 0, `Write` = 1). Equal
/// traces always produce equal fingerprints; distinct request streams
/// produce distinct fingerprints with the usual 64-bit collision odds.
///
/// ```
/// use mocktails_trace::{fingerprint, Request, Trace};
///
/// let a = Trace::from_requests(vec![Request::read(0, 0x1000, 64)]);
/// let b = Trace::from_requests(vec![Request::read(0, 0x1040, 64)]);
/// assert_eq!(fingerprint(&a), fingerprint(&a));
/// assert_ne!(fingerprint(&a), fingerprint(&b));
/// ```
pub fn fingerprint(trace: &Trace) -> u64 {
    let mut f = Fingerprinter::new();
    for r in trace.iter() {
        f.push(r);
    }
    f.digest()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    #[test]
    fn empty_trace_hashes_to_the_offset_basis() {
        assert_eq!(fingerprint(&Trace::new()), OFFSET);
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let ab = Trace::from_sorted_requests(vec![
            Request::read(0, 0x1000, 64),
            Request::write(0, 0x2000, 64),
        ]);
        let ba = Trace::from_sorted_requests(vec![
            Request::write(0, 0x2000, 64),
            Request::read(0, 0x1000, 64),
        ]);
        assert_ne!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn every_field_participates() {
        let base = Trace::from_requests(vec![Request::read(5, 0x1000, 64)]);
        let variants = [
            Trace::from_requests(vec![Request::read(6, 0x1000, 64)]),
            Trace::from_requests(vec![Request::read(5, 0x1001, 64)]),
            Trace::from_requests(vec![Request::read(5, 0x1000, 32)]),
            Trace::from_requests(vec![Request::write(5, 0x1000, 64)]),
        ];
        for variant in &variants {
            assert_ne!(fingerprint(&base), fingerprint(variant));
        }
    }

    #[test]
    fn incremental_fingerprinter_matches_whole_trace() {
        let requests = vec![
            Request::read(0, 0x8100_2eb8, 128),
            Request::read(8, 0x8100_2ec0, 64),
            Request::write(16, 0x8100_2f00, 64),
        ];
        let mut f = Fingerprinter::new();
        for r in &requests {
            f.push(r);
        }
        assert_eq!(f.count(), 3);
        assert_eq!(f.digest(), fingerprint(&Trace::from_requests(requests)));
    }

    #[test]
    fn fnv1a_empty_is_offset_basis_and_input_sensitive() {
        assert_eq!(fnv1a(&[]), OFFSET);
        assert_ne!(fnv1a(b"a"), fnv1a(b"b"));
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn fnv_writer_matches_fnv1a_over_split_writes() {
        let mut w = FnvWriter::new(Vec::new());
        w.write_all(b"mock").unwrap();
        w.write_all(b"tails").unwrap();
        assert_eq!(w.digest(), fnv1a(b"mocktails"));
        assert_eq!(w.bytes(), 9);
        assert_eq!(w.into_inner(), b"mocktails");
    }
}
