//! Resource limits for decoding untrusted inputs.
//!
//! A Mocktails profile is designed to be shared *instead of* a proprietary
//! trace (paper §V, Fig. 17), which makes every encoded trace or profile an
//! untrusted input crossing an organizational boundary. The length fields
//! inside those encodings are attacker-controlled: a five-byte file can
//! declare 2^60 requests. [`DecodeLimits`] bounds every such declared count
//! so a hostile input produces a typed [`TraceError::LimitExceeded`] in
//! constant time instead of an allocation storm.
//!
//! The defaults are deliberately generous — orders of magnitude above
//! anything the paper's workloads produce — so honest users never see the
//! limits, while `2^60`-style declarations are rejected before the decoder
//! allocates anything proportional to them.

use crate::TraceError;

/// Maximum counts a decoder will accept from a declared length field.
///
/// ```
/// use mocktails_trace::{DecodeLimits, TraceError};
///
/// let limits = DecodeLimits::default();
/// assert!(limits.check("requests", 1000, limits.max_requests).is_ok());
/// assert!(matches!(
///     limits.check("requests", 1 << 60, limits.max_requests),
///     Err(TraceError::LimitExceeded { what: "requests", .. })
/// ));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum requests a single encoded trace may declare.
    pub max_requests: u64,
    /// Maximum leaves a profile may declare.
    pub max_leaves: u64,
    /// Maximum hierarchy layers a profile may declare.
    pub max_layers: u64,
    /// Maximum states a single Markov chain may declare.
    pub max_markov_states: u64,
    /// Maximum out-edges a single Markov state may declare.
    pub max_markov_edges: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        Self {
            max_requests: 1 << 32,
            max_leaves: 1 << 24,
            max_layers: 64,
            max_markov_states: 1 << 22,
            max_markov_edges: 1 << 22,
        }
    }
}

impl DecodeLimits {
    /// A permissive configuration for trusted, locally-produced inputs.
    pub fn unchecked() -> Self {
        Self {
            max_requests: u64::MAX,
            max_leaves: u64::MAX,
            max_layers: u64::MAX,
            max_markov_states: u64::MAX,
            max_markov_edges: u64::MAX,
        }
    }

    /// Validates a declared count against `limit` and converts it to
    /// `usize`, so every `u64 → usize` narrowing in the decoders goes
    /// through one checked path (a 32-bit host cannot silently truncate).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::LimitExceeded`] when `declared` exceeds
    /// `limit` or does not fit in `usize`.
    pub fn check(
        &self,
        what: &'static str,
        declared: u64,
        limit: u64,
    ) -> Result<usize, TraceError> {
        if declared > limit {
            return Err(TraceError::LimitExceeded {
                what,
                declared,
                limit,
            });
        }
        usize::try_from(declared).map_err(|_| TraceError::LimitExceeded {
            what,
            declared,
            limit: usize::MAX as u64,
        })
    }
}

/// Unified decode configuration: resource limits plus the post-decode
/// validation toggle, consumed by [`crate::Trace::read`] and
/// `mocktails_core`'s `Profile::read`.
///
/// This is the single options value that replaced the PR 2 pair of entry
/// points (the removed `read_*_with_limits` shims). Build it fluently:
///
/// ```
/// use mocktails_trace::{DecodeLimits, DecodeOptions};
///
/// // Untrusted input, tighter-than-default caps:
/// let cautious = DecodeOptions::new().with_limits(DecodeLimits {
///     max_requests: 1 << 20,
///     ..DecodeLimits::default()
/// });
/// assert!(cautious.validates());
///
/// // Locally-produced input on a hot path:
/// let fast = DecodeOptions::trusted();
/// assert!(!fast.validates());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    limits: DecodeLimits,
    validate: bool,
}

impl Default for DecodeOptions {
    /// Default limits, semantic validation on — the right choice for any
    /// input that crossed an organizational boundary.
    fn default() -> Self {
        Self {
            limits: DecodeLimits::default(),
            validate: true,
        }
    }
}

impl DecodeOptions {
    /// Equivalent to [`DecodeOptions::default`]; the fluent starting point.
    pub fn new() -> Self {
        Self::default()
    }

    /// A permissive configuration for trusted, locally-produced inputs:
    /// [`DecodeLimits::unchecked`] and no post-decode validation.
    pub fn trusted() -> Self {
        Self {
            limits: DecodeLimits::unchecked(),
            validate: false,
        }
    }

    /// Replaces the resource limits (builder-style).
    pub fn with_limits(mut self, limits: DecodeLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Enables or disables post-decode semantic validation
    /// (builder-style). Only profile decoding consults this: a trace has
    /// no cross-field invariants beyond what the codec already enforces.
    pub fn with_validation(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }

    /// The resource limits applied to every declared count.
    pub fn limits(&self) -> &DecodeLimits {
        &self.limits
    }

    /// Whether the decoder should verify semantic invariants after a
    /// structurally successful decode.
    pub fn validates(&self) -> bool {
        self.validate
    }
}

/// Converts a decoded `u64` to `usize` with a typed error on narrowing —
/// the checked replacement for bare `as usize` casts on untrusted values.
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] when `value` exceeds `usize::MAX`
/// (possible on 32-bit hosts).
pub fn checked_usize(value: u64, what: &str) -> Result<usize, TraceError> {
    usize::try_from(value)
        .map_err(|_| TraceError::Corrupt(format!("{what} {value} overflows usize")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous_but_finite() {
        let l = DecodeLimits::default();
        assert!(l.max_requests >= 1 << 30);
        assert!(l.max_layers >= 16);
        assert!(l.max_leaves < u64::MAX);
    }

    #[test]
    fn check_accepts_within_limit() {
        let l = DecodeLimits::default();
        assert_eq!(l.check("leaves", 5, l.max_leaves).unwrap(), 5);
        assert_eq!(l.check("leaves", 0, l.max_leaves).unwrap(), 0);
    }

    #[test]
    fn check_rejects_over_limit_with_context() {
        let l = DecodeLimits::default();
        match l.check("layers", 1 << 60, l.max_layers) {
            Err(TraceError::LimitExceeded {
                what,
                declared,
                limit,
            }) => {
                assert_eq!(what, "layers");
                assert_eq!(declared, 1 << 60);
                assert_eq!(limit, l.max_layers);
            }
            other => panic!("expected LimitExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unchecked_accepts_everything_that_fits_usize() {
        let l = DecodeLimits::unchecked();
        assert!(l.check("requests", u32::MAX as u64, l.max_requests).is_ok());
    }

    #[test]
    fn checked_usize_round_trips_small_values() {
        assert_eq!(checked_usize(42, "count").unwrap(), 42);
    }

    #[test]
    fn decode_options_default_is_cautious() {
        let options = DecodeOptions::default();
        assert_eq!(*options.limits(), DecodeLimits::default());
        assert!(options.validates());
        assert_eq!(options, DecodeOptions::new());
    }

    #[test]
    fn decode_options_trusted_lifts_all_checks() {
        let options = DecodeOptions::trusted();
        assert_eq!(*options.limits(), DecodeLimits::unchecked());
        assert!(!options.validates());
    }

    #[test]
    fn decode_options_builders_compose() {
        let tight = DecodeLimits {
            max_requests: 7,
            ..DecodeLimits::default()
        };
        let options = DecodeOptions::new()
            .with_limits(tight)
            .with_validation(false);
        assert_eq!(options.limits().max_requests, 7);
        assert!(!options.validates());
    }
}
