//! The memory request type and its operation.

use crate::AddrRange;

/// The operation of a memory request.
///
/// Mocktails treats the operation as one of the four black-box features of a
/// request (timestamp, address, operation, size); no richer command set
/// (e.g. atomics) is modeled, matching the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Op {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

impl Op {
    /// Returns `true` for [`Op::Read`].
    ///
    /// ```
    /// use mocktails_trace::Op;
    /// assert!(Op::Read.is_read());
    /// assert!(!Op::Write.is_read());
    /// ```
    pub fn is_read(self) -> bool {
        matches!(self, Op::Read)
    }

    /// Returns `true` for [`Op::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, Op::Write)
    }

    /// Encodes the operation as a single bit (read = 0, write = 1).
    ///
    /// Used by the binary codec and by models that index arrays by operation.
    pub fn as_bit(self) -> u8 {
        match self {
            Op::Read => 0,
            Op::Write => 1,
        }
    }

    /// Decodes an operation from a bit produced by [`Op::as_bit`].
    ///
    /// Any non-zero value decodes to [`Op::Write`].
    pub fn from_bit(bit: u8) -> Self {
        if bit == 0 {
            Op::Read
        } else {
            Op::Write
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Read => f.write_str("read"),
            Op::Write => f.write_str("write"),
        }
    }
}

/// A single memory request as seen at the interface between a compute device
/// and the memory system.
///
/// This carries exactly the four features Mocktails models (ISCA 2020,
/// §III): the cycle `timestamp` at which the device injected the request, the
/// byte `address`, the `op` (read or write) and the `size` in bytes.
///
/// ```
/// use mocktails_trace::{Op, Request};
///
/// let r = Request::new(100, 0x8100_2EB8, Op::Read, 128);
/// assert_eq!(r.end_address(), 0x8100_2EB8 + 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request {
    /// Injection time in cycles.
    pub timestamp: u64,
    /// Byte address of the first byte accessed.
    pub address: u64,
    /// Whether the request reads or writes.
    pub op: Op,
    /// Number of bytes requested. Always non-zero.
    pub size: u32,
}

impl Request {
    /// Creates a new request.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero — a zero-byte memory request is meaningless
    /// and would break the address-range arithmetic used by spatial
    /// partitioning.
    pub fn new(timestamp: u64, address: u64, op: Op, size: u32) -> Self {
        assert!(size > 0, "memory request size must be non-zero");
        Self {
            timestamp,
            address,
            op,
            size,
        }
    }

    /// Creates a read request.
    pub fn read(timestamp: u64, address: u64, size: u32) -> Self {
        Self::new(timestamp, address, Op::Read, size)
    }

    /// Creates a write request.
    pub fn write(timestamp: u64, address: u64, size: u32) -> Self {
        Self::new(timestamp, address, Op::Write, size)
    }

    /// One past the last byte address touched by this request.
    pub fn end_address(&self) -> u64 {
        self.address.saturating_add(u64::from(self.size))
    }

    /// The half-open byte range `[address, address + size)` this request
    /// touches.
    pub fn range(&self) -> AddrRange {
        AddrRange::new(self.address, self.end_address())
    }
}

impl std::fmt::Display for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "t={} {} {:#x}+{}",
            self.timestamp, self.op, self.address, self.size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_bits_round_trip() {
        assert_eq!(Op::from_bit(Op::Read.as_bit()), Op::Read);
        assert_eq!(Op::from_bit(Op::Write.as_bit()), Op::Write);
    }

    #[test]
    fn op_predicates() {
        assert!(Op::Read.is_read());
        assert!(Op::Write.is_write());
        assert!(!Op::Read.is_write());
        assert!(!Op::Write.is_read());
    }

    #[test]
    fn request_end_address() {
        let r = Request::read(0, 0x1000, 64);
        assert_eq!(r.end_address(), 0x1040);
        assert_eq!(r.range().len(), 64);
    }

    #[test]
    fn request_end_address_saturates() {
        let r = Request::read(0, u64::MAX - 16, 64);
        assert_eq!(r.end_address(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_size_rejected() {
        let _ = Request::new(0, 0, Op::Read, 0);
    }

    #[test]
    fn display_is_nonempty() {
        let r = Request::write(7, 0x40, 32);
        let s = r.to_string();
        assert!(s.contains("write"));
        assert!(s.contains("0x40"));
    }
}
