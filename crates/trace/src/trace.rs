//! The trace container.

use crate::{AddrRange, DecodeOptions, Request, TraceStats};

/// An ordered sequence of memory requests.
///
/// Requests are kept in non-decreasing timestamp order — the order a memory
/// system observes them. Construction through [`Trace::from_requests`] sorts
/// when needed (stably, so same-cycle requests keep their injection order).
///
/// ```
/// use mocktails_trace::{Request, Trace};
///
/// let trace = Trace::from_requests(vec![
///     Request::read(5, 0x40, 64),
///     Request::read(0, 0x00, 64),
/// ]);
/// // Sorted by timestamp on construction.
/// assert_eq!(trace.requests()[0].timestamp, 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a trace from requests, sorting them by timestamp if necessary.
    ///
    /// The sort is stable: requests with equal timestamps keep their relative
    /// order, which matters for memory controller scheduling.
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        if !requests
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp)
        {
            requests.sort_by_key(|r| r.timestamp);
        }
        Self { requests }
    }

    /// Builds a trace from requests that are already sorted by timestamp.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the requests are not sorted.
    pub fn from_sorted_requests(requests: Vec<Request>) -> Self {
        debug_assert!(
            requests
                .windows(2)
                .all(|w| w[0].timestamp <= w[1].timestamp),
            "requests must be sorted by timestamp"
        );
        Self { requests }
    }

    /// Appends a request.
    ///
    /// # Panics
    ///
    /// Panics if the request's timestamp precedes the last request's — a
    /// trace is always observed in time order.
    pub fn push(&mut self, request: Request) {
        if let Some(last) = self.requests.last() {
            assert!(
                request.timestamp >= last.timestamp,
                "pushed request at t={} precedes trace tail at t={}",
                request.timestamp,
                last.timestamp
            );
        }
        self.requests.push(request);
    }

    /// The requests in timestamp order.
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of requests in the trace.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Returns `true` if the trace holds no requests.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the requests.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Number of read requests.
    pub fn reads(&self) -> usize {
        self.requests.iter().filter(|r| r.op.is_read()).count()
    }

    /// Number of write requests.
    pub fn writes(&self) -> usize {
        self.requests.iter().filter(|r| r.op.is_write()).count()
    }

    /// Total bytes requested across all requests.
    pub fn total_bytes(&self) -> u64 {
        self.requests.iter().map(|r| u64::from(r.size)).sum()
    }

    /// Timestamp of the first request, or `None` for an empty trace.
    pub fn start_time(&self) -> Option<u64> {
        self.requests.first().map(|r| r.timestamp)
    }

    /// Timestamp of the last request, or `None` for an empty trace.
    pub fn end_time(&self) -> Option<u64> {
        self.requests.last().map(|r| r.timestamp)
    }

    /// Cycles between the first and last request (zero for traces with fewer
    /// than two requests).
    pub fn duration(&self) -> u64 {
        match (self.start_time(), self.end_time()) {
            (Some(s), Some(e)) => e - s,
            _ => 0,
        }
    }

    /// The smallest address range covering every byte touched by the trace,
    /// or `None` for an empty trace.
    pub fn footprint_range(&self) -> Option<AddrRange> {
        let mut iter = self.requests.iter();
        let first = iter.next()?.range();
        Some(iter.fold(first, |acc, r| acc.union(&r.range())))
    }

    /// Requests whose address range intersects `range`.
    pub fn requests_in_range(&self, range: &AddrRange) -> Vec<Request> {
        self.requests
            .iter()
            .filter(|r| r.range().overlaps(range))
            .copied()
            .collect()
    }

    /// A sub-trace containing the first `n` requests.
    pub fn truncate_to(&self, n: usize) -> Trace {
        Trace {
            requests: self.requests.iter().take(n).copied().collect(),
        }
    }

    /// Computes summary statistics (see [`TraceStats`]).
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_trace(self)
    }

    /// Splits the trace into `(reads, writes)` counts per operation.
    pub fn op_counts(&self) -> (usize, usize) {
        let reads = self.reads();
        (reads, self.len() - reads)
    }

    /// Decodes a trace from `r` under the given [`DecodeOptions`] — the
    /// method form of [`crate::codec::read_trace_with`].
    ///
    /// ```
    /// use mocktails_trace::{DecodeOptions, Request, Trace};
    ///
    /// let trace = Trace::from_requests(vec![Request::read(0, 0x1000, 64)]);
    /// let mut buf = Vec::new();
    /// trace.write(&mut buf)?;
    /// let back = Trace::read(&mut buf.as_slice(), &DecodeOptions::default())?;
    /// assert_eq!(back, trace);
    /// # Ok::<(), mocktails_trace::TraceError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// See [`crate::codec::read_trace`].
    pub fn read<R: std::io::Read>(
        r: &mut R,
        options: &DecodeOptions,
    ) -> Result<Self, crate::TraceError> {
        crate::codec::read_trace_with(r, options)
    }

    /// Encodes the trace to `w` in the workspace binary format — the
    /// method form of [`crate::codec::write_trace`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the writer.
    pub fn write<W: std::io::Write>(&self, w: &mut W) -> Result<(), crate::TraceError> {
        crate::codec::write_trace(w, self)
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<T: IntoIterator<Item = Request>>(iter: T) -> Self {
        Trace::from_requests(iter.into_iter().collect())
    }
}

impl Extend<Request> for Trace {
    fn extend<T: IntoIterator<Item = Request>>(&mut self, iter: T) {
        self.requests.extend(iter);
        self.requests.sort_by_key(|r| r.timestamp);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;

    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace::from_requests(vec![
            Request::read(0, 0x1000, 64),
            Request::write(10, 0x1040, 64),
            Request::read(10, 0x2000, 128),
            Request::write(30, 0x1f80, 32),
        ])
    }

    #[test]
    fn construction_sorts() {
        let t = Trace::from_requests(vec![
            Request::read(50, 0x0, 4),
            Request::read(10, 0x4, 4),
            Request::read(30, 0x8, 4),
        ]);
        let times: Vec<u64> = t.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![10, 30, 50]);
    }

    #[test]
    fn construction_sort_is_stable() {
        let t = Trace::from_requests(vec![
            Request::read(10, 0xb, 4),
            Request::read(5, 0xa, 4),
            Request::read(10, 0xc, 4),
        ]);
        let addrs: Vec<u64> = t.iter().map(|r| r.address).collect();
        assert_eq!(addrs, vec![0xa, 0xb, 0xc]);
    }

    #[test]
    fn counts_and_bytes() {
        let t = sample();
        assert_eq!(t.len(), 4);
        assert_eq!(t.reads(), 2);
        assert_eq!(t.writes(), 2);
        assert_eq!(t.op_counts(), (2, 2));
        assert_eq!(t.total_bytes(), 64 + 64 + 128 + 32);
    }

    #[test]
    fn time_span() {
        let t = sample();
        assert_eq!(t.start_time(), Some(0));
        assert_eq!(t.end_time(), Some(30));
        assert_eq!(t.duration(), 30);
        assert_eq!(Trace::new().duration(), 0);
        assert_eq!(Trace::new().start_time(), None);
    }

    #[test]
    fn footprint() {
        let t = sample();
        let fp = t.footprint_range().unwrap();
        assert_eq!(fp.start(), 0x1000);
        assert_eq!(fp.end(), 0x2080);
        assert!(Trace::new().footprint_range().is_none());
    }

    #[test]
    fn requests_in_range_filters() {
        let t = sample();
        let hits = t.requests_in_range(&AddrRange::new(0x1000, 0x1080));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn push_enforces_order() {
        let mut t = Trace::new();
        t.push(Request::read(5, 0, 4));
        t.push(Request::read(5, 4, 4));
        t.push(Request::read(9, 8, 4));
        assert_eq!(t.len(), 3);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn push_rejects_time_travel() {
        let mut t = Trace::new();
        t.push(Request::read(5, 0, 4));
        t.push(Request::read(4, 4, 4));
    }

    #[test]
    fn truncate_keeps_prefix() {
        let t = sample().truncate_to(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.end_time(), Some(10));
    }

    #[test]
    fn collect_from_iterator() {
        let t: Trace = (0..10u64)
            .map(|i| Request::read(i * 2, i * 64, 64))
            .collect();
        assert_eq!(t.len(), 10);
        assert_eq!(t.duration(), 18);
    }

    #[test]
    fn extend_resorts() {
        let mut t = sample();
        t.extend([Request::read(5, 0x3000, 64)]);
        assert!(t
            .requests()
            .windows(2)
            .all(|w| w[0].timestamp <= w[1].timestamp));
        assert_eq!(t.len(), 5);
    }
}
