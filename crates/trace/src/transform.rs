//! Trace transformations: retiming, cropping and filtering.
//!
//! Utilities for preparing traces before modeling — the kind of
//! preprocessing the paper mentions its industry partner applied
//! ("VPU traces had their inputs down-scaled", §IV-A).

use crate::{AddrRange, Op, Request, Trace};

/// Scales every timestamp by `num / den` (e.g. `1, 2` halves the
/// duration; `2, 1` doubles it). Order is preserved.
///
/// # Panics
///
/// Panics if `den` is zero.
pub fn time_scale(trace: &Trace, num: u64, den: u64) -> Trace {
    assert!(den > 0, "scale denominator must be non-zero");
    Trace::from_sorted_requests(
        trace
            .iter()
            .map(|r| Request::new(r.timestamp * num / den, r.address, r.op, r.size))
            .collect(),
    )
}

/// Shifts every timestamp so the trace starts at `start`.
pub fn rebase_time(trace: &Trace, start: u64) -> Trace {
    let Some(first) = trace.start_time() else {
        return Trace::new();
    };
    Trace::from_sorted_requests(
        trace
            .iter()
            .map(|r| Request::new(r.timestamp - first + start, r.address, r.op, r.size))
            .collect(),
    )
}

/// Shifts every address by a signed byte delta (wrapping).
pub fn rebase_address(trace: &Trace, delta: i64) -> Trace {
    Trace::from_sorted_requests(
        trace
            .iter()
            .map(|r| {
                Request::new(
                    r.timestamp,
                    r.address.wrapping_add(delta as u64),
                    r.op,
                    r.size,
                )
            })
            .collect(),
    )
}

/// Keeps only the requests inside the cycle window `[from, to)`.
pub fn crop_time(trace: &Trace, from: u64, to: u64) -> Trace {
    Trace::from_sorted_requests(
        trace
            .iter()
            .filter(|r| r.timestamp >= from && r.timestamp < to)
            .copied()
            .collect(),
    )
}

/// Keeps only the requests whose byte range intersects `range`.
pub fn crop_address(trace: &Trace, range: &AddrRange) -> Trace {
    Trace::from_sorted_requests(
        trace
            .iter()
            .filter(|r| r.range().overlaps(range))
            .copied()
            .collect(),
    )
}

/// Keeps only requests of the given operation.
pub fn filter_op(trace: &Trace, op: Op) -> Trace {
    Trace::from_sorted_requests(trace.iter().filter(|r| r.op == op).copied().collect())
}

/// Merges traces into one timestamp-ordered trace — how multiple IP
/// blocks' streams combine at a shared interconnect.
pub fn merge(traces: &[Trace]) -> Trace {
    let mut all: Vec<Request> = traces
        .iter()
        .flat_map(|t| t.requests().iter().copied())
        .collect();
    all.sort_by_key(|r| r.timestamp);
    Trace::from_sorted_requests(all)
}

/// Keeps every `n`-th request (systematic sampling), preserving order.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn sample(trace: &Trace, n: usize) -> Trace {
    assert!(n > 0, "sampling stride must be non-zero");
    Trace::from_sorted_requests(trace.iter().step_by(n).copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_requests(vec![
            Request::read(100, 0x1000, 64),
            Request::write(200, 0x2000, 64),
            Request::read(300, 0x3000, 64),
            Request::write(400, 0x4000, 64),
        ])
    }

    #[test]
    fn time_scale_halves_and_doubles() {
        let t = sample_trace();
        let halved = time_scale(&t, 1, 2);
        assert_eq!(halved.start_time(), Some(50));
        assert_eq!(halved.duration(), 150);
        let doubled = time_scale(&t, 2, 1);
        assert_eq!(doubled.duration(), 600);
        // Addresses untouched.
        assert_eq!(halved.footprint_range(), t.footprint_range());
    }

    #[test]
    fn rebase_time_anchors_start() {
        let t = rebase_time(&sample_trace(), 0);
        assert_eq!(t.start_time(), Some(0));
        assert_eq!(t.duration(), 300);
        assert!(rebase_time(&Trace::new(), 5).is_empty());
    }

    #[test]
    fn rebase_address_shifts_both_ways() {
        let t = sample_trace();
        let up = rebase_address(&t, 0x100);
        assert_eq!(up.requests()[0].address, 0x1100);
        let down = rebase_address(&up, -0x100);
        assert_eq!(down, t);
    }

    #[test]
    fn crop_time_is_half_open() {
        let t = crop_time(&sample_trace(), 200, 400);
        assert_eq!(t.len(), 2);
        assert_eq!(t.start_time(), Some(200));
        assert_eq!(t.end_time(), Some(300));
    }

    #[test]
    fn crop_address_keeps_intersections() {
        let t = crop_address(&sample_trace(), &AddrRange::new(0x2020, 0x3010));
        assert_eq!(t.len(), 2); // 0x2000+64 overlaps, 0x3000 overlaps
    }

    #[test]
    fn filter_op_splits_cleanly() {
        let t = sample_trace();
        let reads = filter_op(&t, Op::Read);
        let writes = filter_op(&t, Op::Write);
        assert_eq!(reads.len() + writes.len(), t.len());
        assert!(reads.iter().all(|r| r.op.is_read()));
    }

    #[test]
    fn merge_interleaves_by_time() {
        let a = Trace::from_requests(vec![Request::read(0, 0, 4), Request::read(20, 4, 4)]);
        let b = Trace::from_requests(vec![Request::write(10, 8, 4)]);
        let m = merge(&[a, b]);
        let times: Vec<u64> = m.iter().map(|r| r.timestamp).collect();
        assert_eq!(times, vec![0, 10, 20]);
    }

    #[test]
    fn sampling_keeps_every_nth() {
        let t = sample(&sample_trace(), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].timestamp, 100);
        assert_eq!(t.requests()[1].timestamp, 300);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_sample_stride_panics() {
        let _ = sample(&sample_trace(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_denominator_panics() {
        let _ = time_scale(&sample_trace(), 1, 0);
    }
}
