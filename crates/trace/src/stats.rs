//! Trace-level summary statistics.

use std::collections::BTreeMap;

use crate::{AddrRange, Trace};

/// Summary statistics of a trace.
///
/// These are the trace-level views the paper uses to motivate its design:
/// the request mix, the footprint, the spread of request sizes, and the
/// burstiness of the injection process (Fig. 3 plots requests per
/// 50 M-cycle bin).
///
/// ```
/// use mocktails_trace::{Request, Trace};
///
/// let trace = Trace::from_requests(vec![
///     Request::read(0, 0x0, 64),
///     Request::write(100, 0x40, 128),
/// ]);
/// let stats = trace.stats();
/// assert_eq!(stats.requests, 2);
/// assert_eq!(stats.read_fraction, 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total number of requests.
    pub requests: usize,
    /// Number of reads.
    pub reads: usize,
    /// Number of writes.
    pub writes: usize,
    /// Fraction of requests that are reads (0 for an empty trace).
    pub read_fraction: f64,
    /// Total bytes moved.
    pub total_bytes: u64,
    /// Smallest range covering all touched bytes, if any requests exist.
    pub footprint: Option<AddrRange>,
    /// Number of distinct request sizes and their counts.
    pub size_histogram: BTreeMap<u32, usize>,
    /// Cycles spanned between first and last request.
    pub duration: u64,
    /// Mean cycles between consecutive requests (0 with < 2 requests).
    pub mean_inter_arrival: f64,
}

impl TraceStats {
    /// Computes statistics for `trace`.
    pub fn from_trace(trace: &Trace) -> Self {
        let requests = trace.len();
        let reads = trace.reads();
        let writes = requests - reads;
        let mut size_histogram = BTreeMap::new();
        for r in trace.iter() {
            *size_histogram.entry(r.size).or_insert(0) += 1;
        }
        let mean_inter_arrival = if requests >= 2 {
            trace.duration() as f64 / (requests - 1) as f64
        } else {
            0.0
        };
        Self {
            requests,
            reads,
            writes,
            read_fraction: if requests == 0 {
                0.0
            } else {
                reads as f64 / requests as f64
            },
            total_bytes: trace.total_bytes(),
            footprint: trace.footprint_range(),
            size_histogram,
            duration: trace.duration(),
            mean_inter_arrival,
        }
    }
}

/// Request counts per fixed-width time bin — the view in the paper's Fig. 3.
///
/// ```
/// use mocktails_trace::{BinnedCounts, Request, Trace};
///
/// let trace = Trace::from_requests(vec![
///     Request::read(0, 0x0, 64),
///     Request::read(5, 0x40, 64),
///     Request::read(25, 0x80, 64),
/// ]);
/// let bins = BinnedCounts::from_trace(&trace, 10);
/// assert_eq!(bins.counts(), &[2, 0, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinnedCounts {
    bin_width: u64,
    counts: Vec<usize>,
}

impl BinnedCounts {
    /// Bins the trace's requests into consecutive windows of `bin_width`
    /// cycles, starting at the trace's first timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `bin_width` is zero.
    pub fn from_trace(trace: &Trace, bin_width: u64) -> Self {
        assert!(bin_width > 0, "bin width must be non-zero");
        let Some(start) = trace.start_time() else {
            return Self {
                bin_width,
                counts: Vec::new(),
            };
        };
        let span = trace.end_time().expect("non-empty") - start; // lint: allow(L001, the empty-trace case returned early above)
        let nbins = (span / bin_width) as usize + 1;
        let mut counts = vec![0usize; nbins];
        for r in trace.iter() {
            counts[((r.timestamp - start) / bin_width) as usize] += 1;
        }
        Self { bin_width, counts }
    }

    /// Width of each bin in cycles.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Request count per bin, in time order.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Number of bins.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if there are no bins (empty trace).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Number of bins containing zero requests — a measure of idle phases.
    pub fn idle_bins(&self) -> usize {
        self.counts.iter().filter(|&&c| c == 0).count()
    }

    /// The largest per-bin count — a measure of the burst peak.
    pub fn peak(&self) -> usize {
        self.counts.iter().copied().max().unwrap_or(0)
    }

    /// Coefficient of variation of per-bin counts (stddev / mean).
    ///
    /// A CoV near zero means uniformly spread requests; large CoV means a
    /// bursty injection process. Returns 0 when there are no bins or the
    /// mean is zero.
    pub fn burstiness(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let n = self.counts.len() as f64;
        let mean = self.counts.iter().sum::<usize>() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Request;

    fn sample() -> Trace {
        Trace::from_requests(vec![
            Request::read(0, 0x1000, 64),
            Request::read(10, 0x1040, 64),
            Request::write(20, 0x2000, 128),
            Request::write(120, 0x2080, 128),
        ])
    }

    #[test]
    fn stats_basics() {
        let s = sample().stats();
        assert_eq!(s.requests, 4);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 2);
        assert_eq!(s.read_fraction, 0.5);
        assert_eq!(s.total_bytes, 384);
        assert_eq!(s.duration, 120);
        assert_eq!(s.mean_inter_arrival, 40.0);
        assert_eq!(s.size_histogram[&64], 2);
        assert_eq!(s.size_histogram[&128], 2);
    }

    #[test]
    fn stats_empty_trace() {
        let s = Trace::new().stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.read_fraction, 0.0);
        assert_eq!(s.mean_inter_arrival, 0.0);
        assert!(s.footprint.is_none());
    }

    #[test]
    fn binning_counts_and_gaps() {
        let bins = BinnedCounts::from_trace(&sample(), 50);
        assert_eq!(bins.counts(), &[3, 0, 1]);
        assert_eq!(bins.idle_bins(), 1);
        assert_eq!(bins.peak(), 3);
        assert_eq!(bins.bin_width(), 50);
        assert!(!bins.is_empty());
    }

    #[test]
    fn binning_empty_trace() {
        let bins = BinnedCounts::from_trace(&Trace::new(), 50);
        assert!(bins.is_empty());
        assert_eq!(bins.burstiness(), 0.0);
        assert_eq!(bins.peak(), 0);
    }

    #[test]
    fn burstiness_orders_uniform_vs_bursty() {
        // Uniform: one request per bin.
        let uniform: Trace = (0..100u64).map(|i| Request::read(i * 10, i, 1)).collect();
        // Bursty: all requests in the first bin, then a long gap.
        let mut reqs: Vec<Request> = (0..99u64).map(|i| Request::read(i, i, 1)).collect();
        reqs.push(Request::read(990, 0, 1));
        let bursty = Trace::from_requests(reqs);

        let u = BinnedCounts::from_trace(&uniform, 10).burstiness();
        let b = BinnedCounts::from_trace(&bursty, 10).burstiness();
        assert!(b > u, "bursty {b} should exceed uniform {u}");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bin_width_panics() {
        let _ = BinnedCounts::from_trace(&sample(), 0);
    }
}
