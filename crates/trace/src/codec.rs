//! Compact binary codec for traces (and primitives reused by profiles).
//!
//! The paper stores traces and statistical profiles with Google protobuf and
//! gzip (§V, Fig. 17). This workspace substitutes a self-contained codec so
//! no code-generation dependency is needed: LEB128 varints for unsigned
//! integers, zigzag for signed, and delta encoding of the timestamp and
//! address columns (consecutive requests are near each other in time and
//! often in space, so deltas are small and varints shrink them).
//!
//! Both traces and Mocktails profiles run through the same primitives, which
//! keeps the Fig. 17 size comparison (trace bytes vs. profile bytes) fair.
//!
//! # Example
//!
//! ```
//! use mocktails_trace::{codec, Request, Trace};
//!
//! let trace = Trace::from_requests(vec![
//!     Request::read(0, 0x1000, 64),
//!     Request::read(4, 0x1040, 64),
//! ]);
//! let mut buf = Vec::new();
//! codec::write_trace(&mut buf, &trace)?;
//! let back = codec::read_trace(&mut buf.as_slice())?;
//! assert_eq!(back, trace);
//! # Ok::<(), mocktails_trace::TraceError>(())
//! ```

use std::io::{Read, Write};

use crate::{DecodeOptions, Op, Request, Trace, TraceError};

/// Requests decoded per allocation chunk. Capacity grows with bytes
/// actually consumed, never with the attacker-declared count, so a tiny
/// file declaring billions of requests cannot reserve memory for them.
const DECODE_CHUNK: usize = 1 << 16;

/// Magic bytes identifying an encoded trace.
pub const TRACE_MAGIC: [u8; 4] = *b"MTRC";
/// Current codec version.
pub const CODEC_VERSION: u8 = 1;

/// Writes `value` as an LEB128 varint.
///
/// # Errors
///
/// Propagates errors from the underlying writer.
pub fn write_u64<W: Write>(w: &mut W, mut value: u64) -> std::io::Result<()> {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

/// Reads an LEB128 varint written by [`write_u64`].
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] if the varint overflows 64 bits, or an
/// I/O error from the reader.
pub fn read_u64<R: Read>(r: &mut R) -> Result<u64, TraceError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        let b = byte[0];
        if shift >= 64 || (shift == 63 && (b & 0x7f) > 1) {
            return Err(TraceError::Corrupt("varint overflows u64".into()));
        }
        value |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// Zigzag-encodes a signed value so small magnitudes become small varints.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Writes a signed value as a zigzag varint.
///
/// # Errors
///
/// Propagates errors from the underlying writer.
pub fn write_i64<W: Write>(w: &mut W, value: i64) -> std::io::Result<()> {
    write_u64(w, zigzag(value))
}

/// Reads a signed value written by [`write_i64`].
///
/// # Errors
///
/// See [`read_u64`].
pub fn read_i64<R: Read>(r: &mut R) -> Result<i64, TraceError> {
    Ok(unzigzag(read_u64(r)?))
}

/// Writes an `f64` as its raw little-endian bits.
///
/// # Errors
///
/// Propagates errors from the underlying writer.
pub fn write_f64<W: Write>(w: &mut W, value: f64) -> std::io::Result<()> {
    w.write_all(&value.to_le_bytes())
}

/// Reads an `f64` written by [`write_f64`].
///
/// # Errors
///
/// Propagates errors from the underlying reader.
pub fn read_f64<R: Read>(r: &mut R) -> Result<f64, TraceError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

/// A writer that discards bytes while counting them — used to measure
/// encoded sizes (Fig. 17) without buffering the encoding.
#[derive(Debug, Default, Clone, Copy)]
pub struct ByteCounter {
    bytes: u64,
}

impl ByteCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Write for ByteCounter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Incremental, header-free encoder for the per-request record layout of
/// [`write_trace`]: time delta varint, zigzag address delta, op bit folded
/// into the size varint.
///
/// The encoder owns the delta state (previous timestamp and address), so a
/// request stream can be encoded across several output buffers — the
/// serving layer's chunked synthesis streams do exactly that — and the
/// concatenation of those buffers is byte-identical to the record section
/// a single [`write_trace`] call would have produced.
///
/// ```
/// use mocktails_trace::codec::{write_trace, RecordEncoder};
/// use mocktails_trace::{Request, Trace};
///
/// let requests = vec![Request::read(0, 0x1000, 64), Request::read(8, 0x1040, 64)];
/// let mut whole = Vec::new();
/// write_trace(&mut whole, &Trace::from_requests(requests.clone()))?;
///
/// // Encode the same records one at a time into separate chunks.
/// let mut encoder = RecordEncoder::new();
/// let mut chunks = Vec::new();
/// for r in &requests {
///     let mut chunk = Vec::new();
///     encoder.encode(&mut chunk, r)?;
///     chunks.extend_from_slice(&chunk);
/// }
/// // Records start after magic (4) + version (1) + count varint (1).
/// assert_eq!(&whole[6..], &chunks[..]);
/// # Ok::<(), mocktails_trace::TraceError>(())
/// ```
#[derive(Debug, Default, Clone)]
pub struct RecordEncoder {
    last_time: u64,
    last_addr: i64,
}

impl RecordEncoder {
    /// An encoder positioned before the first record (deltas are taken
    /// against timestamp 0 and address 0, matching [`write_trace`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one request's record to `w`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] if `request` precedes the previous
    /// record's timestamp (records must be encoded in stream order), or an
    /// I/O error from the writer.
    pub fn encode<W: Write>(&mut self, w: &mut W, request: &Request) -> Result<(), TraceError> {
        let dt = request
            .timestamp
            .checked_sub(self.last_time)
            .ok_or_else(|| {
                TraceError::Corrupt("records must be encoded in timestamp order".into())
            })?;
        write_u64(w, dt)?;
        write_i64(w, request.address as i64 - self.last_addr)?;
        write_u64(
            w,
            (u64::from(request.size) << 1) | u64::from(request.op.as_bit()),
        )?;
        self.last_time = request.timestamp;
        self.last_addr = request.address as i64;
        Ok(())
    }
}

/// Incremental decoder for records produced by [`RecordEncoder`] (the
/// record section of [`write_trace`]'s layout, after the header).
///
/// Mirrors [`RecordEncoder`]: the decoder owns the delta state, so records
/// arriving in separate buffers — e.g. the serving layer's synthesis
/// chunks — decode to exactly the requests a whole-trace decode would
/// yield.
#[derive(Debug, Default, Clone)]
pub struct RecordDecoder {
    last_time: u64,
    last_addr: i64,
}

impl RecordDecoder {
    /// A decoder positioned before the first record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes one record from `r`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] for malformed fields (varint or
    /// timestamp overflow, oversized or zero request size), or an I/O
    /// error — including `UnexpectedEof` on a truncated record — from the
    /// reader.
    pub fn decode<R: Read>(&mut self, r: &mut R) -> Result<Request, TraceError> {
        let dt = read_u64(r)?;
        let da = read_i64(r)?;
        let size_op = read_u64(r)?;
        let size = u32::try_from(size_op >> 1)
            .map_err(|_| TraceError::Corrupt("request size overflows u32".into()))?;
        if size == 0 {
            return Err(TraceError::Corrupt("zero-size request".into()));
        }
        let op = Op::from_bit((size_op & 1) as u8);
        self.last_time = self
            .last_time
            .checked_add(dt)
            .ok_or_else(|| TraceError::Corrupt("timestamp overflows u64".into()))?;
        self.last_addr = self.last_addr.wrapping_add(da);
        Ok(Request::new(
            self.last_time,
            self.last_addr as u64,
            op,
            size,
        ))
    }
}

/// Encodes a trace to `w`.
///
/// Layout: magic, version, request count, then four delta/varint-encoded
/// columns interleaved per request (time delta, zigzag address delta, op
/// bit folded into the size varint).
///
/// # Errors
///
/// Propagates errors from the underlying writer.
pub fn write_trace<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    w.write_all(&TRACE_MAGIC)?;
    w.write_all(&[CODEC_VERSION])?;
    write_u64(w, trace.len() as u64)?;
    let mut encoder = RecordEncoder::new();
    for r in trace.iter() {
        encoder.encode(w, r)?;
    }
    Ok(())
}

/// Decodes a trace written by [`write_trace`] using default
/// [`DecodeOptions`].
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] for bad magic or malformed fields,
/// [`TraceError::UnsupportedVersion`] for a version mismatch,
/// [`TraceError::LimitExceeded`] for an implausible declared request
/// count, or an I/O error from the reader.
pub fn read_trace<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
    read_trace_with(r, &DecodeOptions::default())
}

/// Decodes a trace written by [`write_trace`] under caller-chosen
/// [`DecodeOptions`]. The declared request count is validated against the
/// options' limits before any allocation, and the request buffer grows
/// only as records are actually read, so a hostile header cannot force
/// memory proportional to its claims.
///
/// [`Trace::read`] is the method-form equivalent.
///
/// # Errors
///
/// See [`read_trace`].
pub fn read_trace_with<R: Read>(r: &mut R, options: &DecodeOptions) -> Result<Trace, TraceError> {
    let limits = options.limits();
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != TRACE_MAGIC {
        return Err(TraceError::Corrupt("bad trace magic".into()));
    }
    let mut version = [0u8; 1];
    r.read_exact(&mut version)?;
    if version[0] != CODEC_VERSION {
        return Err(TraceError::UnsupportedVersion {
            found: version[0],
            expected: CODEC_VERSION,
        });
    }
    let count = limits.check("requests", read_u64(r)?, limits.max_requests)?;
    let mut requests = Vec::with_capacity(count.min(DECODE_CHUNK));
    let mut decoder = RecordDecoder::new();
    for _ in 0..count {
        requests.push(decoder.decode(r)?);
    }
    Ok(Trace::from_sorted_requests(requests))
}

/// Writes a trace as CSV (`timestamp,address,op,size`, addresses in hex)
/// for interoperability with external tools and spreadsheets.
///
/// # Errors
///
/// Propagates errors from the underlying writer.
pub fn write_csv<W: Write>(w: &mut W, trace: &Trace) -> Result<(), TraceError> {
    writeln!(w, "timestamp,address,op,size")?;
    for r in trace.iter() {
        writeln!(w, "{},{:#x},{},{}", r.timestamp, r.address, r.op, r.size)?;
    }
    Ok(())
}

/// Reads a trace written by [`write_csv`] (or hand-authored in the same
/// shape). Addresses accept `0x`-prefixed hex or plain decimal; the header
/// line is optional.
///
/// # Errors
///
/// Returns [`TraceError::Corrupt`] for malformed rows, or an I/O error
/// from the reader.
pub fn read_csv<R: Read>(r: &mut R) -> Result<Trace, TraceError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut requests = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || (lineno == 0 && line.starts_with("timestamp")) {
            continue;
        }
        let mut fields = line.split(',').map(str::trim);
        // lint: allow(L018, the closure body formats only when a field fails to parse; the happy path never calls it)
        let bad = |what: &str| TraceError::Corrupt(format!("line {}: {what}", lineno + 1));
        let timestamp: u64 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .ok_or_else(|| bad("bad timestamp"))?;
        let addr_field = fields.next().ok_or_else(|| bad("missing address"))?;
        let address = if let Some(hex) = addr_field.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).map_err(|_| bad("bad hex address"))?
        } else {
            addr_field.parse().map_err(|_| bad("bad address"))?
        };
        let op = match fields.next().ok_or_else(|| bad("missing op"))? {
            "read" | "r" | "R" => Op::Read,
            "write" | "w" | "W" => Op::Write,
            other => {
                // lint: allow(L018, cold error branch: allocates once for the malformed line, then aborts the parse)
                return Err(TraceError::Corrupt(format!(
                    "line {}: unknown op {other:?}",
                    lineno + 1
                )));
            }
        };
        let size: u32 = fields
            .next()
            .and_then(|f| f.parse().ok())
            .filter(|&s| s > 0)
            .ok_or_else(|| bad("bad size"))?;
        if fields.next().is_some() {
            return Err(bad("too many fields"));
        }
        requests.push(Request::new(timestamp, address, op, size));
    }
    Ok(Trace::from_requests(requests))
}

/// Encoded size of `trace` in bytes, without materializing the encoding.
pub fn trace_encoded_size(trace: &Trace) -> u64 {
    let mut counter = ByteCounter::new();
    write_trace(&mut counter, trace).expect("ByteCounter never fails"); // lint: allow(L001, ByteCounter's Write impl never errors)
    counter.bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DecodeLimits;

    #[test]
    fn varint_round_trip_edges() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(read_u64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn varint_small_values_are_one_byte() {
        for v in 0..128u64 {
            let mut buf = Vec::new();
            write_u64(&mut buf, v).unwrap();
            assert_eq!(buf.len(), 1);
        }
    }

    #[test]
    fn varint_overflow_rejected() {
        // 11 bytes of continuation overflows 64 bits.
        let buf = [0xffu8; 11];
        assert!(matches!(
            read_u64(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn f64_round_trip() {
        for v in [0.0f64, -1.5, f64::MAX, f64::MIN_POSITIVE, 3.25] {
            let mut buf = Vec::new();
            write_f64(&mut buf, v).unwrap();
            assert_eq!(read_f64(&mut buf.as_slice()).unwrap(), v);
        }
    }

    fn sample_trace() -> Trace {
        Trace::from_requests(vec![
            Request::read(0, 0x8100_2eb8, 128),
            Request::read(8, 0x8100_2ec0, 64),
            Request::write(16, 0x8100_2f00, 64),
            Request::read(1_000_000, 0x10, 32),
        ])
    }

    #[test]
    fn trace_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let back = read_trace(&mut buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn empty_trace_round_trip() {
        let trace = Trace::new();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(read_trace(&mut buf.as_slice()).unwrap(), trace);
    }

    #[test]
    fn bad_magic_rejected() {
        let buf = b"XXXX\x01\x00".to_vec();
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &Trace::new()).unwrap();
        buf[4] = 99;
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn truncated_input_is_io_error() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &sample_trace()).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Io(_))
        ));
    }

    #[test]
    fn hostile_declared_count_is_limit_exceeded_not_oom() {
        // Header that declares 2^60 requests with no payload: must fail
        // fast with a typed error, allocating nothing proportional.
        let mut buf = Vec::new();
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.push(CODEC_VERSION);
        write_u64(&mut buf, 1 << 60).unwrap();
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::LimitExceeded {
                what: "requests",
                declared,
                ..
            }) if declared == 1 << 60
        ));
    }

    #[test]
    fn declared_count_beyond_payload_is_detected() {
        // Declares 1000 requests but carries only one record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&TRACE_MAGIC);
        buf.push(CODEC_VERSION);
        write_u64(&mut buf, 1000).unwrap();
        write_u64(&mut buf, 0).unwrap(); // dt
        write_i64(&mut buf, 0x40).unwrap(); // da
        write_u64(&mut buf, 64 << 1).unwrap(); // size varint, read op
        assert!(matches!(
            read_trace(&mut buf.as_slice()),
            Err(TraceError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof
        ));
    }

    #[test]
    fn custom_limits_are_honored() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let tight = DecodeOptions::default().with_limits(DecodeLimits {
            max_requests: 2,
            ..DecodeLimits::default()
        });
        assert!(matches!(
            read_trace_with(&mut buf.as_slice(), &tight),
            Err(TraceError::LimitExceeded { .. })
        ));
        assert_eq!(
            read_trace_with(&mut buf.as_slice(), &DecodeOptions::trusted()).unwrap(),
            trace
        );
    }

    #[test]
    fn encoded_size_matches_buffer() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        assert_eq!(trace_encoded_size(&trace), buf.len() as u64);
    }

    #[test]
    fn delta_encoding_compresses_sequential_trace() {
        // Sequential accesses: deltas are tiny, so the encoding should be
        // far smaller than the 21-byte worst case per request.
        let trace: Trace = (0..1000u64)
            .map(|i| Request::read(i * 4, 0x1000 + i * 64, 64))
            .collect();
        let size = trace_encoded_size(&trace);
        assert!(size < 1000 * 6, "sequential trace encoded to {size} bytes");
    }

    #[test]
    fn csv_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_csv(&mut buf, &trace).unwrap();
        let back = read_csv(&mut buf.as_slice()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn csv_accepts_headerless_decimal_and_short_ops() {
        let text = "0,4096,r,64\n10,0x2000,W,32\n";
        let trace = read_csv(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.requests()[0].address, 4096);
        assert!(trace.requests()[1].op.is_write());
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        for bad in [
            "0,0x10,read\n",          // missing size
            "0,0x10,frob,64\n",       // bad op
            "x,0x10,read,64\n",       // bad timestamp
            "0,0xzz,read,64\n",       // bad hex
            "0,0x10,read,0\n",        // zero size
            "0,0x10,read,64,extra\n", // too many fields
        ] {
            assert!(read_csv(&mut bad.as_bytes()).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn csv_skips_blank_lines() {
        let text = "timestamp,address,op,size\n\n5,0x40,write,16\n\n";
        let trace = read_csv(&mut text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn record_encoder_chunks_concatenate_to_whole_trace_bytes() {
        let trace = sample_trace();
        let mut whole = Vec::new();
        write_trace(&mut whole, &trace).unwrap();
        // Encode each record into its own buffer, as a chunked stream would.
        let mut encoder = RecordEncoder::new();
        let mut concat = Vec::new();
        for r in trace.iter() {
            let mut chunk = Vec::new();
            encoder.encode(&mut chunk, r).unwrap();
            concat.extend_from_slice(&chunk);
        }
        let mut header = Vec::new();
        header.extend_from_slice(&TRACE_MAGIC);
        header.push(CODEC_VERSION);
        write_u64(&mut header, trace.len() as u64).unwrap();
        header.extend_from_slice(&concat);
        assert_eq!(header, whole);
    }

    #[test]
    fn record_decoder_round_trips_across_chunk_boundaries() {
        let trace = sample_trace();
        let mut encoder = RecordEncoder::new();
        let mut chunks: Vec<Vec<u8>> = Vec::new();
        for r in trace.iter() {
            let mut chunk = Vec::new();
            encoder.encode(&mut chunk, r).unwrap();
            chunks.push(chunk);
        }
        // Decode each chunk independently; delta state must carry over.
        let mut decoder = RecordDecoder::new();
        let mut back = Vec::new();
        for chunk in &chunks {
            let mut slice = chunk.as_slice();
            while !slice.is_empty() {
                back.push(decoder.decode(&mut slice).unwrap());
            }
        }
        assert_eq!(back, trace.requests());
    }

    #[test]
    fn record_encoder_rejects_timestamp_regression() {
        let mut encoder = RecordEncoder::new();
        let mut buf = Vec::new();
        encoder
            .encode(&mut buf, &Request::read(100, 0x10, 4))
            .unwrap();
        assert!(matches!(
            encoder.encode(&mut buf, &Request::read(50, 0x20, 4)),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn record_decoder_rejects_zero_size_and_overflow() {
        let mut bad_size = Vec::new();
        write_u64(&mut bad_size, 0).unwrap(); // dt
        write_i64(&mut bad_size, 0).unwrap(); // da
        write_u64(&mut bad_size, 0).unwrap(); // size 0, read op
        assert!(matches!(
            RecordDecoder::new().decode(&mut bad_size.as_slice()),
            Err(TraceError::Corrupt(_))
        ));

        let mut huge_size = Vec::new();
        write_u64(&mut huge_size, 0).unwrap();
        write_i64(&mut huge_size, 0).unwrap();
        write_u64(&mut huge_size, (u64::from(u32::MAX) + 1) << 1).unwrap();
        assert!(matches!(
            RecordDecoder::new().decode(&mut huge_size.as_slice()),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn byte_counter_counts() {
        let mut c = ByteCounter::new();
        c.write_all(&[0u8; 37]).unwrap();
        c.flush().unwrap();
        assert_eq!(c.bytes(), 37);
    }
}
