//! Memory request traces for the Mocktails reproduction.
//!
//! This crate is the substrate every other crate in the workspace builds on.
//! It defines:
//!
//! * [`Request`] — a single memory request with the four features Mocktails
//!   models: timestamp, address, operation and size (ISCA 2020, §III).
//! * [`Op`] — the read/write operation of a request.
//! * [`Trace`] — an ordered sequence of requests with convenient statistics.
//! * [`AddrRange`] — half-open address intervals used by spatial partitioning.
//! * [`codec`] — a compact, self-contained binary format for traces (the
//!   paper uses protobuf + gzip; we substitute a varint/zigzag delta codec so
//!   the workspace has no codegen dependency).
//! * [`TraceStats`] and [`BinnedCounts`] — trace-level summary statistics
//!   (request mix, footprint, burstiness histograms).
//! * [`rng`] — the workspace's deterministic pseudo-random generators
//!   (SplitMix64, xoshiro256**), so synthesis never depends on an external
//!   RNG crate or its version-to-version stream changes.
//! * [`DecodeLimits`] and [`DecodeOptions`] — resource limits and the
//!   validation toggle applied to untrusted encodings, turning hostile
//!   length fields into typed [`TraceError::LimitExceeded`] errors instead
//!   of allocation storms.
//! * [`fingerprint`] — an order-sensitive FNV-1a fingerprint over a trace's
//!   request stream, the workspace's cross-thread-count determinism probe.
//! * [`fault`] — deterministic I/O fault injection ([`fault::FaultyReader`],
//!   [`fault::FaultyWriter`]) and crash-safe atomic file writes.
//! * [`fuzz`] — the seeded mutational fuzz harness that gates both codecs
//!   in tier-1 CI.
//!
//! # Example
//!
//! ```
//! use mocktails_trace::{Op, Request, Trace};
//!
//! let trace = Trace::from_requests(vec![
//!     Request::new(0, 0x1000, Op::Read, 64),
//!     Request::new(10, 0x1040, Op::Read, 64),
//!     Request::new(25, 0x2000, Op::Write, 128),
//! ]);
//!
//! assert_eq!(trace.len(), 3);
//! assert_eq!(trace.reads(), 2);
//! assert_eq!(trace.writes(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codec;
mod error;
pub mod fault;
mod fingerprint;
pub mod fuzz;
mod limits;
mod range;
mod request;
pub mod rng;
mod stats;
mod stream;
mod trace;
pub mod transform;

pub use error::TraceError;
pub use fingerprint::{fingerprint, fnv1a, Fingerprinter, FnvWriter};
pub use limits::{checked_usize, DecodeLimits, DecodeOptions};
pub use range::AddrRange;
pub use request::{Op, Request};
pub use stats::{BinnedCounts, TraceStats};
pub use stream::{StreamReader, StreamWriter};
pub use trace::Trace;
