//! Deterministic mutational fuzzing of the binary codecs.
//!
//! Classic fuzzers trade reproducibility for coverage; a CI gate needs
//! both. This harness derives every mutation from the workspace's own
//! xoshiro256\*\* PRNG, so `(corpus, seed, case count)` fully determines
//! the byte streams tested — a failure reported by CI replays locally,
//! bit-for-bit, forever.
//!
//! The mutations model what actually happens to files crossing an
//! organizational boundary (the paper's profile-sharing workflow, §V):
//! truncation (partial transfer), bit flips (storage/transport rot),
//! byte overwrites, insertions/deletions (tool bugs), and splices
//! (concatenated or re-assembled captures).
//!
//! The decode contract under fuzz is binary: every mutated input must
//! either decode cleanly or return a typed error — never panic, abort, or
//! allocate unboundedly. Tier-1 tests in `crates/trace/tests/fuzz_trace.rs`
//! and `crates/core/tests/fuzz_profile.rs` enforce it with thousands of
//! seeded cases per codec.
//!
//! # Example
//!
//! ```
//! use mocktails_trace::fuzz::Mutator;
//!
//! let base = b"MTRC\x01\x02\x00\x00\x80\x01\x04\x40\x80\x01".to_vec();
//! let mut mutator = Mutator::new(9);
//! let a = mutator.mutate(&base);
//! // Same seed, same stream of mutated cases.
//! let b = Mutator::new(9).mutate(&base);
//! assert_eq!(a, b);
//! ```

use crate::rng::{Prng, Rng};
use mocktails_pool::Parallelism;

/// The mutation operators the fuzzer draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Cut the input at a random offset (partial transfer).
    Truncate,
    /// Flip 1–8 random bits (transport/storage corruption).
    BitFlip,
    /// Overwrite one byte with a random value.
    Overwrite,
    /// Insert up to 16 random bytes at a random offset.
    Insert,
    /// Delete a short random span.
    Delete,
    /// Copy a random span of the input over another offset
    /// (mis-assembled captures).
    Splice,
}

/// All operators, in the order the selector indexes them.
const OPERATORS: [Mutation; 6] = [
    Mutation::Truncate,
    Mutation::BitFlip,
    Mutation::Overwrite,
    Mutation::Insert,
    Mutation::Delete,
    Mutation::Splice,
];

/// A deterministic stream of mutated inputs derived from one seed.
#[derive(Debug, Clone)]
pub struct Mutator {
    rng: Prng,
}

impl Mutator {
    /// Creates a mutator; every mutation decision derives from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: Prng::seed_from_u64(seed),
        }
    }

    /// Produces one mutated variant of `base` by applying 1–3 randomly
    /// chosen operators.
    pub fn mutate(&mut self, base: &[u8]) -> Vec<u8> {
        let mut bytes = base.to_vec();
        let rounds = self.rng.gen_range(1..=3usize);
        for _ in 0..rounds {
            let op = OPERATORS[self.rng.gen_range(0..OPERATORS.len())];
            self.apply(op, &mut bytes);
        }
        bytes
    }

    fn apply(&mut self, op: Mutation, bytes: &mut Vec<u8>) {
        match op {
            Mutation::Truncate => {
                if !bytes.is_empty() {
                    let at = self.rng.gen_range(0..bytes.len());
                    bytes.truncate(at);
                }
            }
            Mutation::BitFlip => {
                if !bytes.is_empty() {
                    for _ in 0..self.rng.gen_range(1..=8usize) {
                        let i = self.rng.gen_range(0..bytes.len());
                        bytes[i] ^= 1 << self.rng.gen_range(0..8u32);
                    }
                }
            }
            Mutation::Overwrite => {
                if !bytes.is_empty() {
                    let i = self.rng.gen_range(0..bytes.len());
                    bytes[i] = self.rng.gen_range(0..=u8::MAX);
                }
            }
            Mutation::Insert => {
                let at = self.rng.gen_range(0..=bytes.len());
                let n = self.rng.gen_range(1..=16usize);
                let insert: Vec<u8> = (0..n).map(|_| self.rng.gen_range(0..=u8::MAX)).collect();
                bytes.splice(at..at, insert);
            }
            Mutation::Delete => {
                if !bytes.is_empty() {
                    let at = self.rng.gen_range(0..bytes.len());
                    let n = self.rng.gen_range(1..=16usize).min(bytes.len() - at);
                    bytes.drain(at..at + n);
                }
            }
            Mutation::Splice => {
                if bytes.len() >= 2 {
                    let src = self.rng.gen_range(0..bytes.len());
                    let n = self.rng.gen_range(1..=16usize).min(bytes.len() - src);
                    let span: Vec<u8> = bytes[src..src + n].to_vec();
                    let dst = self.rng.gen_range(0..bytes.len());
                    let end = (dst + n).min(bytes.len());
                    bytes[dst..end].copy_from_slice(&span[..end - dst]);
                }
            }
        }
    }
}

/// Outcome tally of a [`run`] campaign — lets tests assert the corpus
/// exercised both the accept and reject paths (a fuzz loop that never
/// decodes anything proves nothing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Mutated cases executed.
    pub cases: usize,
    /// Cases the decoder accepted.
    pub accepted: usize,
    /// Cases the decoder rejected with a typed error.
    pub rejected: usize,
}

/// Drives `cases` seeded mutations per corpus entry through `check`.
///
/// `check` receives each mutated byte stream and returns `true` when the
/// decoder accepted it, `false` when it returned a typed error; panics
/// propagate (that is the point — a panicking decoder fails the test).
/// Case `i` of corpus entry `j` is mutated with seed
/// `seed ^ (j as u64) << 32 ^ i as u64`, so any single case can be
/// replayed in isolation.
pub fn run<F>(corpus: &[Vec<u8>], cases_per_entry: usize, seed: u64, mut check: F) -> FuzzReport
where
    F: FnMut(&[u8]) -> bool,
{
    let mut report = FuzzReport::default();
    for (j, base) in corpus.iter().enumerate() {
        for i in 0..cases_per_entry {
            let case_seed = seed ^ ((j as u64) << 32) ^ i as u64;
            let mutated = Mutator::new(case_seed).mutate(base);
            report.cases += 1;
            if check(&mutated) {
                report.accepted += 1;
            } else {
                report.rejected += 1;
            }
        }
    }
    report
}

/// [`run`], fanned out across `parallelism` worker threads.
///
/// Every `(corpus entry, case index)` pair is mutated with the same seed
/// formula as [`run`], so the resulting [`FuzzReport`] is identical at any
/// thread count; only wall-clock time changes. Because cases execute
/// concurrently, `check` must be `Fn + Sync` rather than `FnMut` — a
/// stateless decode-and-classify closure, which is what every codec gate
/// in tier-1 CI uses.
pub fn run_parallel<F>(
    parallelism: Parallelism,
    corpus: &[Vec<u8>],
    cases_per_entry: usize,
    seed: u64,
    check: F,
) -> FuzzReport
where
    F: Fn(&[u8]) -> bool + Sync,
{
    let work: Vec<(usize, usize)> = (0..corpus.len())
        .flat_map(|j| (0..cases_per_entry).map(move |i| (j, i)))
        .collect();
    let outcomes = parallelism.map(&work, |&(j, i)| {
        let case_seed = seed ^ ((j as u64) << 32) ^ i as u64;
        let mutated = Mutator::new(case_seed).mutate(&corpus[j]);
        check(&mutated)
    });
    let accepted = outcomes.iter().filter(|&&ok| ok).count();
    FuzzReport {
        cases: outcomes.len(),
        accepted,
        rejected: outcomes.len() - accepted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Vec<u8> {
        (0u8..=255).cycle().take(400).collect()
    }

    #[test]
    fn mutation_stream_is_seed_deterministic() {
        let b = base();
        let a: Vec<Vec<u8>> = {
            let mut m = Mutator::new(77);
            (0..50).map(|_| m.mutate(&b)).collect()
        };
        let c: Vec<Vec<u8>> = {
            let mut m = Mutator::new(77);
            (0..50).map(|_| m.mutate(&b)).collect()
        };
        assert_eq!(a, c);
    }

    #[test]
    fn different_seeds_mutate_differently() {
        let b = base();
        assert_ne!(Mutator::new(1).mutate(&b), Mutator::new(2).mutate(&b));
    }

    #[test]
    fn mutations_change_the_input() {
        let b = base();
        let mut m = Mutator::new(5);
        let changed = (0..100).filter(|_| m.mutate(&b) != b).count();
        assert!(changed > 90, "only {changed}/100 cases mutated");
    }

    #[test]
    fn empty_input_survives_every_operator() {
        let mut m = Mutator::new(13);
        for _ in 0..200 {
            let _ = m.mutate(&[]);
        }
    }

    #[test]
    fn run_tallies_both_outcomes() {
        let corpus = vec![base()];
        // "Decoder": accepts iff the first byte survived unchanged.
        let report = run(&corpus, 100, 3, |bytes| bytes.first() == Some(&0));
        assert_eq!(report.cases, 100);
        assert_eq!(report.accepted + report.rejected, 100);
        assert!(report.accepted > 0, "{report:?}");
        assert!(report.rejected > 0, "{report:?}");
    }

    #[test]
    fn run_parallel_matches_sequential_report() {
        let corpus = vec![base(), base().split_off(100)];
        let check = |bytes: &[u8]| bytes.first() == Some(&0);
        let sequential = run(&corpus, 80, 21, check);
        for threads in [1, 2, 8] {
            let parallel = run_parallel(Parallelism::new(threads), &corpus, 80, 21, check);
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn run_is_replayable_per_case() {
        let corpus = vec![base()];
        let mut first: Vec<Vec<u8>> = Vec::new();
        run(&corpus, 20, 9, |b| {
            first.push(b.to_vec());
            true
        });
        // Replay case 7 in isolation using the documented seed formula.
        let replay = Mutator::new(9 ^ 7u64).mutate(&corpus[0]);
        assert_eq!(replay, first[7]);
    }
}
