//! Half-open address intervals.

/// A half-open byte address interval `[start, end)`.
///
/// `AddrRange` is the unit of spatial reasoning throughout the workspace:
/// dynamic spatial partitioning (Alg. 1 in the paper) merges the ranges of
/// individual requests into non-overlapping memory regions, and leaf models
/// record the range their synthesized addresses must stay within.
///
/// ```
/// use mocktails_trace::AddrRange;
///
/// let a = AddrRange::new(0x1000, 0x1040);
/// let b = AddrRange::new(0x1040, 0x1080);
/// assert!(a.touches(&b)); // adjacent ranges merge under Alg. 1
/// assert_eq!(a.union(&b), AddrRange::new(0x1000, 0x1080));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AddrRange {
    start: u64,
    end: u64,
}

impl AddrRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "range start {start:#x} exceeds end {end:#x}");
        Self { start, end }
    }

    /// Creates the range covering `size` bytes starting at `start`.
    pub fn from_start_size(start: u64, size: u64) -> Self {
        Self::new(start, start.saturating_add(size))
    }

    /// First byte address in the range.
    pub fn start(&self) -> u64 {
        self.start
    }

    /// One past the last byte address in the range.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Number of bytes in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Returns `true` if the range contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns `true` if `addr` falls inside the range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Returns `true` if `other` lies entirely inside this range.
    pub fn contains_range(&self, other: &AddrRange) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// Returns `true` if the two ranges share at least one byte.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start < other.end && other.start < self.end
    }

    /// Returns `true` if the two ranges overlap **or** are exactly adjacent.
    ///
    /// This is the merge condition of the paper's dynamic spatial
    /// partitioning (Alg. 1): requests to overlapping or adjacent memory are
    /// grouped into the same region.
    pub fn touches(&self, other: &AddrRange) -> bool {
        self.start <= other.end && other.start <= self.end
    }

    /// The smallest range containing both inputs.
    pub fn union(&self, other: &AddrRange) -> AddrRange {
        AddrRange {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// The overlap of the two ranges, or `None` when they share no byte.
    pub fn intersection(&self, other: &AddrRange) -> Option<AddrRange> {
        if self.overlaps(other) {
            Some(AddrRange {
                start: self.start.max(other.start),
                end: self.end.min(other.end),
            })
        } else {
            None
        }
    }

    /// Expands the range in place so it also covers `other`.
    pub fn expand(&mut self, other: &AddrRange) {
        self.start = self.start.min(other.start);
        self.end = self.end.max(other.end);
    }

    /// Maps `addr` back into the range, preserving its offset modulo the
    /// range length.
    ///
    /// Address synthesis applies generated strides to a running address; when
    /// the result escapes the leaf's memory region the paper wraps it back
    /// "to preserve spatial locality" (§III-C). Offsets below `start` wrap
    /// from the end, offsets past `end` wrap from the start.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn wrap(&self, addr: u64) -> u64 {
        assert!(!self.is_empty(), "cannot wrap into an empty range");
        let len = self.len();
        if self.contains(addr) {
            return addr;
        }
        if addr >= self.end {
            self.start + (addr - self.start) % len
        } else {
            // addr < self.start: wrap negative offsets from the end.
            let deficit = (self.start - addr) % len;
            if deficit == 0 {
                self.start
            } else {
                self.end - deficit
            }
        }
    }
}

impl std::fmt::Display for AddrRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let r = AddrRange::new(0x100, 0x180);
        assert_eq!(r.start(), 0x100);
        assert_eq!(r.end(), 0x180);
        assert_eq!(r.len(), 0x80);
        assert!(!r.is_empty());
        assert!(AddrRange::new(4, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn inverted_range_rejected() {
        let _ = AddrRange::new(10, 5);
    }

    #[test]
    fn contains_is_half_open() {
        let r = AddrRange::new(0x100, 0x180);
        assert!(r.contains(0x100));
        assert!(r.contains(0x17f));
        assert!(!r.contains(0x180));
        assert!(!r.contains(0xff));
    }

    #[test]
    fn overlap_vs_touch() {
        let a = AddrRange::new(0, 10);
        let adjacent = AddrRange::new(10, 20);
        let gap = AddrRange::new(11, 20);
        let inner = AddrRange::new(3, 7);

        assert!(!a.overlaps(&adjacent));
        assert!(a.touches(&adjacent));
        assert!(!a.touches(&gap));
        assert!(a.overlaps(&inner));
        assert!(a.contains_range(&inner));
        assert!(!inner.contains_range(&a));
    }

    #[test]
    fn union_and_intersection() {
        let a = AddrRange::new(0, 10);
        let b = AddrRange::new(5, 15);
        assert_eq!(a.union(&b), AddrRange::new(0, 15));
        assert_eq!(a.intersection(&b), Some(AddrRange::new(5, 10)));
        assert_eq!(a.intersection(&AddrRange::new(20, 30)), None);
    }

    #[test]
    fn expand_grows_in_place() {
        let mut r = AddrRange::new(10, 20);
        r.expand(&AddrRange::new(0, 5));
        assert_eq!(r, AddrRange::new(0, 20));
        r.expand(&AddrRange::new(15, 40));
        assert_eq!(r, AddrRange::new(0, 40));
    }

    #[test]
    fn wrap_keeps_inside_addresses() {
        let r = AddrRange::new(0x100, 0x200);
        assert_eq!(r.wrap(0x150), 0x150);
        assert_eq!(r.wrap(0x100), 0x100);
        assert_eq!(r.wrap(0x1ff), 0x1ff);
    }

    #[test]
    fn wrap_above_end() {
        let r = AddrRange::new(0x100, 0x200); // len 0x100
        assert_eq!(r.wrap(0x200), 0x100);
        assert_eq!(r.wrap(0x250), 0x150);
        assert_eq!(r.wrap(0x300), 0x100);
    }

    #[test]
    fn wrap_below_start() {
        let r = AddrRange::new(0x100, 0x200);
        assert_eq!(r.wrap(0xf0), 0x1f0);
        assert_eq!(r.wrap(0x0), 0x100);
        assert_eq!(r.wrap(0xff), 0x1ff);
    }

    #[test]
    fn wrap_result_always_contained() {
        let r = AddrRange::new(0x40, 0x1c0);
        for addr in 0..0x400u64 {
            assert!(r.contains(r.wrap(addr)), "addr {addr:#x} wrapped outside");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn wrap_empty_panics() {
        let r = AddrRange::new(0x100, 0x100);
        let _ = r.wrap(0);
    }
}
