//! Deterministic I/O fault injection and crash-safe file writes.
//!
//! Profiles exist to be shared across organizational boundaries (paper §V),
//! so the decoders must shrug off every way a transport can mangle bytes:
//! short reads, interrupted syscalls, truncation, bit rot. This module
//! provides the harness that proves it:
//!
//! * [`FaultyReader`] / [`FaultyWriter`] wrap any `Read`/`Write` and inject
//!   faults on a schedule derived **only** from a seed and the workspace's
//!   own xoshiro256\*\* PRNG — a failing case is replayable forever by its
//!   seed, with no flaky-test lottery.
//! * [`AtomicFileWriter`] writes through a temporary sibling file and
//!   renames into place on [`AtomicFileWriter::commit`], so a crash or
//!   injected failure mid-write never leaves a half-written `.mtrace` /
//!   `.mprofile` on disk.
//!
//! This is the **only** module in the workspace allowed to construct
//! injected [`std::io::Error`] values; lint rule L006 enforces that the
//! production decode paths report faults, never invent them.
//!
//! # Example
//!
//! ```
//! use std::io::Read;
//! use mocktails_trace::fault::{FaultPlan, FaultyReader};
//!
//! let data = vec![7u8; 1024];
//! // Truncate the stream at byte 100: a deterministic partial capture.
//! let plan = FaultPlan { truncate_at: Some(100), ..FaultPlan::none() };
//! let mut reader = FaultyReader::new(data.as_slice(), plan, 42);
//! let mut out = Vec::new();
//! reader.read_to_end(&mut out)?;
//! assert_eq!(out.len(), 100);
//! # Ok::<(), std::io::Error>(())
//! ```

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use crate::rng::{Prng, Rng};

/// The fault schedule for a [`FaultyReader`] or [`FaultyWriter`].
///
/// Probabilities are evaluated against the deterministic PRNG stream on
/// every `read`/`write` call (`bit_flip` per byte), so a given
/// `(plan, seed, call sequence)` triple always produces the same faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability that a read/write is shortened to a random prefix.
    pub short_op: f64,
    /// Probability of returning [`io::ErrorKind::Interrupted`] (which
    /// `read_exact`/`write_all` must transparently retry).
    pub interrupt: f64,
    /// Probability of returning [`io::ErrorKind::WouldBlock`] (which
    /// surfaces to the caller as a genuine I/O error).
    pub would_block: f64,
    /// Per-byte probability of flipping one random bit after reading.
    pub bit_flip: f64,
    /// Byte offset at which the stream hard-ends (reads return 0).
    pub truncate_at: Option<u64>,
    /// Byte offset at which a writer starts failing permanently.
    pub fail_at: Option<u64>,
    /// Byte offset at which a write is torn: the write crossing this
    /// offset persists only a seeded-random prefix of the bytes that fit
    /// below the boundary (possibly none), and every later write or sync
    /// fails permanently — the crash model for a `kill -9` mid-append.
    pub torn_at: Option<u64>,
    /// 0-based [`FaultyWriter::sync`] call index from which every sync
    /// reports failure. A failed sync means durability is unknown: bytes
    /// already accepted may or may not survive, so callers must treat the
    /// tail as lost (the write-ahead-log discipline the store proves).
    pub fsync_fail_after: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing: the wrapper is a transparent proxy.
    pub fn none() -> Self {
        Self {
            short_op: 0.0,
            interrupt: 0.0,
            would_block: 0.0,
            bit_flip: 0.0,
            truncate_at: None,
            fail_at: None,
            torn_at: None,
            fsync_fail_after: None,
        }
    }

    /// A plan exercising the retryable/benign faults: short operations and
    /// interrupted syscalls. Robust callers must behave identically under
    /// this plan and [`FaultPlan::none`].
    pub fn flaky() -> Self {
        Self {
            short_op: 0.5,
            interrupt: 0.25,
            ..Self::none()
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

/// Builds the injected "interrupted system call" error.
fn interrupted() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected interrupt")
}

/// Builds the injected "would block" error.
fn would_block() -> io::Error {
    io::Error::new(io::ErrorKind::WouldBlock, "injected would-block")
}

/// Builds the injected hard write failure.
fn write_failure(offset: u64) -> io::Error {
    io::Error::other(format!("injected write failure at byte {offset}"))
}

/// Builds the injected post-torn-write failure.
fn torn_dead(offset: u64) -> io::Error {
    io::Error::other(format!("injected torn write: writer died at byte {offset}"))
}

/// Builds the injected fsync failure.
fn fsync_failure(index: u64) -> io::Error {
    io::Error::other(format!("injected fsync failure at sync call {index}"))
}

/// A writer with an explicit durability point: [`SyncWrite::sync`] returns
/// only once previously written bytes are on stable storage (an
/// `fsync`/`fdatasync` for files, a no-op for memory). The store's
/// write-ahead log is generic over this trait, so the same append path
/// runs against a real [`File`] in production and a [`FaultyWriter`]
/// injecting fsync failures under test.
pub trait SyncWrite: Write {
    /// Flushes written bytes to stable storage.
    ///
    /// # Errors
    ///
    /// Propagates the underlying fsync failure; after an error the caller
    /// must assume none of the unsynced tail is durable.
    fn sync(&mut self) -> io::Result<()>;
}

impl SyncWrite for File {
    fn sync(&mut self) -> io::Result<()> {
        self.sync_data()
    }
}

/// Memory is always "durable": sync is a no-op.
impl SyncWrite for Vec<u8> {
    fn sync(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// A `Read` adapter that deterministically injects faults per its
/// [`FaultPlan`]. See the module docs for the guarantees.
#[derive(Debug)]
pub struct FaultyReader<R> {
    inner: R,
    plan: FaultPlan,
    rng: Prng,
    offset: u64,
}

impl<R: Read> FaultyReader<R> {
    /// Wraps `inner` with the given plan; all fault decisions derive from
    /// `seed`.
    pub fn new(inner: R, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: Prng::seed_from_u64(seed),
            offset: 0,
        }
    }

    /// Bytes successfully delivered so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Unwraps the adapter, returning the inner reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if let Some(limit) = self.plan.truncate_at {
            if self.offset >= limit {
                return Ok(0);
            }
        }
        if self.rng.gen_bool(self.plan.interrupt) {
            return Err(interrupted());
        }
        if self.rng.gen_bool(self.plan.would_block) {
            return Err(would_block());
        }
        let mut len = buf.len();
        if len > 1 && self.rng.gen_bool(self.plan.short_op) {
            len = self.rng.gen_range(1..len);
        }
        if let Some(limit) = self.plan.truncate_at {
            let room = (limit - self.offset) as usize;
            len = len.min(room);
        }
        let n = self.inner.read(&mut buf[..len])?;
        if self.plan.bit_flip > 0.0 {
            for byte in &mut buf[..n] {
                if self.rng.gen_bool(self.plan.bit_flip) {
                    *byte ^= 1 << self.rng.gen_range(0..8u32);
                }
            }
        }
        self.offset += n as u64;
        Ok(n)
    }
}

/// A `Write` adapter that deterministically injects faults per its
/// [`FaultPlan`]. Bit flips do not apply to writers; `fail_at` turns into
/// a permanent hard error once reached; `torn_at` persists a seeded
/// partial final block and then kills the writer for good.
#[derive(Debug)]
pub struct FaultyWriter<W> {
    inner: W,
    plan: FaultPlan,
    rng: Prng,
    offset: u64,
    syncs: u64,
    /// Set once a torn write fired: every later write/sync fails.
    dead: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner` with the given plan; all fault decisions derive from
    /// `seed`.
    pub fn new(inner: W, plan: FaultPlan, seed: u64) -> Self {
        Self {
            inner,
            plan,
            rng: Prng::seed_from_u64(seed),
            offset: 0,
            syncs: 0,
            dead: false,
        }
    }

    /// Bytes successfully accepted so far.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// Sync calls attempted so far (successful or injected-failed).
    pub fn syncs(&self) -> u64 {
        self.syncs
    }

    /// Unwraps the adapter, returning the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(torn_dead(self.offset));
        }
        if let Some(boundary) = self.plan.torn_at {
            if self.offset >= boundary {
                self.dead = true;
                return Err(torn_dead(self.offset));
            }
            if self.offset + buf.len() as u64 > boundary {
                // The block crossing the boundary is torn: a seeded prefix
                // of the bytes below the boundary persists, then the
                // writer is dead. Zero persisted bytes is a valid tear.
                let room = boundary - self.offset;
                let keep = self.rng.gen_range(0..room + 1) as usize;
                self.dead = true;
                if keep == 0 {
                    return Err(torn_dead(self.offset));
                }
                let n = self.inner.write(&buf[..keep])?;
                self.offset += n as u64;
                return Ok(n);
            }
        }
        if let Some(limit) = self.plan.fail_at {
            if self.offset >= limit {
                return Err(write_failure(self.offset));
            }
        }
        if self.rng.gen_bool(self.plan.interrupt) {
            return Err(interrupted());
        }
        if self.rng.gen_bool(self.plan.would_block) {
            return Err(would_block());
        }
        let mut len = buf.len();
        if len > 1 && self.rng.gen_bool(self.plan.short_op) {
            len = self.rng.gen_range(1..len);
        }
        if let Some(limit) = self.plan.fail_at {
            len = len.min((limit - self.offset) as usize);
        }
        let n = self.inner.write(&buf[..len])?;
        self.offset += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(torn_dead(self.offset));
        }
        self.inner.flush()
    }
}

impl<W: SyncWrite> SyncWrite for FaultyWriter<W> {
    /// Counts the sync call, injects a failure per
    /// [`FaultPlan::fsync_fail_after`] (or if a torn write already killed
    /// the writer), otherwise delegates to the inner writer's sync.
    fn sync(&mut self) -> io::Result<()> {
        let index = self.syncs;
        self.syncs += 1;
        if self.dead {
            return Err(torn_dead(self.offset));
        }
        if let Some(from) = self.plan.fsync_fail_after {
            if index >= from {
                return Err(fsync_failure(index));
            }
        }
        self.inner.sync()
    }
}

/// Fsyncs the directory containing `path`, making a just-renamed or
/// just-created directory entry itself durable. POSIX only guarantees a
/// rename survives a crash once the *parent directory* is synced; without
/// this, an "atomic" commit can vanish on power loss.
fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    // Directories cannot be opened for sync on every platform; where they
    // can (unix), the sync must succeed for the commit to count.
    #[cfg(unix)]
    {
        File::open(parent)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = parent;
        Ok(())
    }
}

/// A crash-safe file writer: bytes go to a temporary sibling
/// (`<name>.tmp`), and only [`AtomicFileWriter::commit`] — flush, fsync,
/// rename — makes them visible under the destination name. Dropping
/// without committing removes the temporary, so readers of the destination
/// path never observe a torn file.
///
/// ```no_run
/// use std::io::Write;
/// use mocktails_trace::fault::AtomicFileWriter;
///
/// let mut w = AtomicFileWriter::create("out.mtrace")?;
/// w.write_all(b"payload")?;
/// w.commit()?; // only now does out.mtrace exist
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct AtomicFileWriter {
    file: Option<File>,
    tmp: PathBuf,
    dest: PathBuf,
}

impl AtomicFileWriter {
    /// Opens the temporary sibling of `dest` for writing, truncating any
    /// stale temporary left by an earlier crash.
    ///
    /// # Errors
    ///
    /// Propagates the error from creating the temporary file.
    pub fn create<P: AsRef<Path>>(dest: P) -> io::Result<Self> {
        let dest = dest.as_ref().to_path_buf();
        let mut name = dest
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "out".into());
        name.push(".tmp");
        let tmp = dest.with_file_name(name);
        let file = File::create(&tmp)?;
        Ok(Self {
            file: Some(file),
            tmp,
            dest,
        })
    }

    /// The destination path the file will appear at on commit.
    pub fn dest(&self) -> &Path {
        &self.dest
    }

    /// Flushes, fsyncs and renames the temporary over the destination,
    /// then fsyncs the parent directory so the rename itself is durable.
    /// After `commit` returns `Ok`, the destination holds the complete
    /// contents even across a crash or power loss; on any error the
    /// destination is untouched.
    ///
    /// # Errors
    ///
    /// Propagates flush/fsync/rename/directory-sync errors; the temporary
    /// is removed best-effort on failure.
    pub fn commit(mut self) -> io::Result<()> {
        let Some(mut file) = self.file.take() else {
            return Ok(());
        };
        let finish = (|| {
            file.flush()?;
            file.sync_all()?;
            drop(file);
            std::fs::rename(&self.tmp, &self.dest)?;
            // The rename is only crash-durable once the directory entry
            // itself is on disk.
            sync_parent_dir(&self.dest)
        })();
        if finish.is_err() {
            let _ = std::fs::remove_file(&self.tmp);
        }
        finish
    }
}

impl Write for AtomicFileWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match &mut self.file {
            Some(f) => f.write(buf),
            None => Err(io::Error::other("atomic writer already committed")),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match &mut self.file {
            Some(f) => f.flush(),
            None => Ok(()),
        }
    }
}

impl Drop for AtomicFileWriter {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            // Abandoned without commit: scrub the partial temporary.
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn none_plan_is_transparent() {
        let data = payload(4096);
        let mut r = FaultyReader::new(data.as_slice(), FaultPlan::none(), 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn short_reads_still_deliver_everything() {
        let data = payload(4096);
        let plan = FaultPlan {
            short_op: 0.9,
            ..FaultPlan::none()
        };
        let mut r = FaultyReader::new(data.as_slice(), plan, 7);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn interrupts_are_retried_by_read_exact() {
        let data = payload(1024);
        let plan = FaultPlan {
            interrupt: 0.5,
            short_op: 0.5,
            ..FaultPlan::none()
        };
        let mut r = FaultyReader::new(data.as_slice(), plan, 3);
        let mut out = vec![0u8; 1024];
        r.read_exact(&mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn truncation_is_a_hard_eof() {
        let data = payload(1000);
        let plan = FaultPlan {
            truncate_at: Some(137),
            ..FaultPlan::none()
        };
        let mut r = FaultyReader::new(data.as_slice(), plan, 0);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, &data[..137]);
        let mut more = [0u8; 1];
        assert_eq!(r.read(&mut more).unwrap(), 0);
    }

    #[test]
    fn would_block_surfaces_as_error() {
        let data = payload(64);
        let plan = FaultPlan {
            would_block: 1.0,
            ..FaultPlan::none()
        };
        let mut r = FaultyReader::new(data.as_slice(), plan, 0);
        let mut out = [0u8; 8];
        let err = r.read(&mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn bit_flips_are_seed_deterministic() {
        let data = payload(512);
        let plan = FaultPlan {
            bit_flip: 0.05,
            ..FaultPlan::none()
        };
        let run = |seed: u64| {
            let mut r = FaultyReader::new(data.as_slice(), plan, seed);
            let mut out = Vec::new();
            r.read_to_end(&mut out).unwrap();
            out
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), data, "flips must actually corrupt");
        assert_ne!(run(11), run(12), "different seeds, different corruption");
    }

    #[test]
    fn faulty_writer_write_all_survives_benign_faults() {
        let data = payload(2048);
        let mut w = FaultyWriter::new(Vec::new(), FaultPlan::flaky(), 5);
        loop {
            match w.write_all(&data) {
                Ok(()) => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("unexpected: {e}"),
            }
        }
        // write_all itself retries Interrupted; the loop is belt-and-braces.
        assert_eq!(w.into_inner(), data);
    }

    #[test]
    fn writer_fail_at_is_permanent() {
        let data = payload(100);
        let plan = FaultPlan {
            fail_at: Some(40),
            ..FaultPlan::none()
        };
        let mut w = FaultyWriter::new(Vec::new(), plan, 0);
        assert!(w.write_all(&data).is_err());
        assert!(w.write_all(&data).is_err(), "failure must persist");
        assert_eq!(w.offset(), 40);
    }

    #[test]
    fn torn_write_persists_partial_final_block_then_kills_writer() {
        let data = payload(256);
        let plan = FaultPlan {
            torn_at: Some(100),
            ..FaultPlan::none()
        };
        let mut w = FaultyWriter::new(Vec::new(), plan, 9);
        let err = w.write_all(&data).unwrap_err();
        assert!(err.to_string().contains("torn write"), "{err}");
        let torn_len = w.offset();
        assert!(torn_len <= 100, "tear must stop below the boundary");
        // Dead for good: later writes, flushes and syncs all fail.
        assert!(w.write_all(b"x").is_err());
        assert!(w.flush().is_err());
        assert!(w.sync().is_err());
        let inner = w.into_inner();
        assert_eq!(inner.len() as u64, torn_len);
        assert_eq!(inner.as_slice(), &data[..torn_len as usize]);
    }

    #[test]
    fn torn_write_prefix_is_seed_deterministic() {
        let data = payload(512);
        let run = |seed: u64| {
            let plan = FaultPlan {
                torn_at: Some(200),
                ..FaultPlan::none()
            };
            let mut w = FaultyWriter::new(Vec::new(), plan, seed);
            let _ = w.write_all(&data);
            w.into_inner()
        };
        assert_eq!(run(3), run(3));
        // Across many seeds the tear point must actually vary.
        let lengths: std::collections::BTreeSet<usize> = (0..32).map(|s| run(s).len()).collect();
        assert!(lengths.len() > 1, "tear point must depend on the seed");
    }

    #[test]
    fn fsync_fails_from_the_configured_call_onwards() {
        let plan = FaultPlan {
            fsync_fail_after: Some(2),
            ..FaultPlan::none()
        };
        let mut w = FaultyWriter::new(Vec::new(), plan, 0);
        w.write_all(b"abc").unwrap();
        w.sync().unwrap();
        w.sync().unwrap();
        let err = w.sync().unwrap_err();
        assert!(err.to_string().contains("fsync failure"), "{err}");
        assert!(w.sync().is_err(), "fsync failure must persist");
        assert_eq!(w.syncs(), 4);
        // Writes themselves still work: only durability is failing.
        w.write_all(b"def").unwrap();
        assert_eq!(w.into_inner(), b"abcdef");
    }

    #[test]
    fn sync_write_is_transparent_without_faults() {
        let mut w = FaultyWriter::new(Vec::new(), FaultPlan::none(), 0);
        w.write_all(b"payload").unwrap();
        w.sync().unwrap();
        w.sync().unwrap();
        assert_eq!(w.syncs(), 2);
        assert_eq!(w.into_inner(), b"payload");
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("mocktails-fault-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn atomic_writer_commit_publishes_full_contents() {
        let dest = temp_path("commit.bin");
        let mut w = AtomicFileWriter::create(&dest).unwrap();
        w.write_all(b"hello world").unwrap();
        w.commit().unwrap();
        assert_eq!(std::fs::read(&dest).unwrap(), b"hello world");
        std::fs::remove_file(&dest).ok();
    }

    #[test]
    fn atomic_writer_drop_without_commit_leaves_nothing() {
        let dest = temp_path("abandon.bin");
        {
            let mut w = AtomicFileWriter::create(&dest).unwrap();
            w.write_all(b"partial").unwrap();
            // dropped without commit
        }
        assert!(!dest.exists(), "destination must not exist");
        let tmp = dest.with_file_name(format!(
            "{}.tmp",
            dest.file_name().unwrap().to_string_lossy()
        ));
        assert!(!tmp.exists(), "temporary must be scrubbed");
    }

    #[test]
    fn atomic_writer_preserves_previous_contents_until_commit() {
        let dest = temp_path("previous.bin");
        std::fs::write(&dest, b"old").unwrap();
        {
            let mut w = AtomicFileWriter::create(&dest).unwrap();
            w.write_all(b"new-but-abandoned").unwrap();
        }
        assert_eq!(std::fs::read(&dest).unwrap(), b"old");
        std::fs::remove_file(&dest).ok();
    }
}
