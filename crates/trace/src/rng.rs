//! Deterministic pseudo-random number generation for the whole workspace.
//!
//! Mocktails' validation story depends on reproducible synthesis: the same
//! profile and seed must yield byte-identical traces on every machine and
//! every build, forever. Depending on an external RNG crate makes that
//! promise fragile twice over — a version bump can silently change stream
//! contents, and a hermetic (offline, empty-registry) build cannot resolve
//! the dependency at all. This module therefore implements the two small,
//! public-domain generators the workspace standardizes on:
//!
//! * [`SplitMix64`] (Steele, Lea & Flood, 2014) — a 64-bit state mixer used
//!   to expand seeds and derive independent streams.
//! * [`Xoshiro256StarStar`] (Blackman & Vigna, 2018) — the workhorse
//!   generator behind every workload generator, sampler and baseline model.
//!   256 bits of state, period 2^256 − 1, passes BigCrush; [`Prng`] is the
//!   workspace-wide alias for it.
//!
//! Sampling helpers mirror the subset of the `rand` crate API the workspace
//! used before the migration ([`Rng::gen_range`], [`Rng::gen_bool`]), so
//! call sites read the same; the streams themselves are intentionally *not*
//! bit-compatible with `rand::rngs::StdRng` — golden tests pin the new
//! streams instead (see `crates/workloads/tests/golden.rs`).
//!
//! Integer ranges are sampled with Lemire's widening-multiply method: the
//! bias for a span `s` is bounded by `s / 2^64`, far below anything a
//! statistical memory model can observe, and sampling stays branch-free
//! and allocation-free. Floats use the standard 53-bit mantissa-fill, so
//! [`Rng::gen_f64`] is uniform on `[0, 1)`.
//!
//! # Example
//!
//! ```
//! use mocktails_trace::rng::{Prng, Rng};
//!
//! let mut rng = Prng::seed_from_u64(42);
//! let lane = rng.gen_range(0..8u64);
//! assert!(lane < 8);
//! let p = rng.gen_f64();
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream — always.
//! assert_eq!(
//!     Prng::seed_from_u64(7).next_u64(),
//!     Prng::seed_from_u64(7).next_u64(),
//! );
//! ```

use std::ops::{Range, RangeInclusive};

/// The workspace-standard generator: an alias for [`Xoshiro256StarStar`].
///
/// Every deterministic sampling site in the workspace seeds one of these
/// via [`Xoshiro256StarStar::seed_from_u64`].
pub type Prng = Xoshiro256StarStar;

/// SplitMix64: a tiny, fast 64-bit generator with a simple additive state.
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`] (the construction its authors recommend), and
/// suitable on its own for cheap, low-stakes stream derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw 64-bit seed. Every seed, including
    /// zero, yields a full-quality stream.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workspace's main pseudo-random generator.
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality
/// (passes TestU01 BigCrush), four xor/shift/rotate operations per output.
/// Not cryptographically secure — it models memory behaviour, it does not
/// protect secrets (the privacy layer's noise seeds are documented
/// separately in `mocktails-core::value`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Seeds the 256-bit state by running [`SplitMix64`] on `seed`, as the
    /// xoshiro authors recommend. Distinct seeds give statistically
    /// independent streams; the all-zero state cannot be reached.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Builds a generator from raw state words. The state must not be all
    /// zero; such a state is replaced by the expansion of seed 0 so the
    /// generator stays usable instead of emitting a constant zero stream.
    pub fn from_state(state: [u64; 4]) -> Self {
        if state == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Self { s: state }
        }
    }

    /// Derives an independent child generator for stream `index`.
    ///
    /// Used when one logical seed must drive several decoupled samplers
    /// (e.g. one per partition leaf) without the streams aliasing.
    pub fn derive(&self, index: u64) -> Self {
        let mut sm = SplitMix64::new(self.s[0] ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng for Xoshiro256StarStar {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Uniform sampling interface shared by all workspace generators.
///
/// `next_u64` is the only required method; the sampling helpers mirror the
/// `rand::Rng` call-site shapes the workspace grew up with, so migrated
/// code reads unchanged.
pub trait Rng {
    /// Returns the next 64 uniformly distributed bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range` (a `a..b` or `a..=b` range
    /// over a primitive integer type, or an `f64` half-open range).
    ///
    /// The range must be non-empty (asserted).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Returns an `f64` uniform on `[0, 1)` with 53 bits of precision.
    fn gen_f64(&mut self) -> f64 {
        // Fill the 53-bit mantissa; 2^-53 scaling keeps the value < 1.
        (self.next_u64() >> 11) as f64 * (1.0f64 / (1u64 << 53) as f64)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that [`Rng::gen_range`] can sample uniformly.
///
/// Blanket-implemented for `Range` and `RangeInclusive` over every
/// [`SampleUniform`] type; the single blanket impl is what lets integer
/// literals in `gen_range(0..64)` infer their type from the surrounding
/// expression.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// A primitive that [`Rng::gen_range`] knows how to sample uniformly
/// between two bounds. Implemented for the primitive integer types and
/// `f64`.
pub trait SampleUniform: Copy {
    /// Draws one sample from `[start, end)` (or `[start, end]` when
    /// `inclusive`). The range must be non-empty (asserted).
    fn sample_between<R: Rng + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        inclusive: bool,
    ) -> Self;
}

/// Maps 64 random bits onto `[0, span)` with Lemire's widening multiply.
/// A `span` of 0 means the full 64-bit domain.
#[inline]
fn bounded(bits: u64, span: u64) -> u64 {
    if span == 0 {
        bits
    } else {
        ((u128::from(bits) * u128::from(span)) >> 64) as u64
    }
}

macro_rules! impl_int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: Rng + ?Sized>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                if inclusive {
                    assert!(start <= end, "gen_range: empty range");
                } else {
                    assert!(start < end, "gen_range: empty range");
                }
                let span = (end as u64)
                    .wrapping_sub(start as u64)
                    .wrapping_add(u64::from(inclusive));
                start.wrapping_add(bounded(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    /// Uniform on `[start, end)`; the `inclusive` flag is ignored because
    /// the endpoint has measure zero at `f64` resolution.
    fn sample_between<R: Rng + ?Sized>(
        rng: &mut R,
        start: Self,
        end: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(start < end, "gen_range: empty range");
        start + rng.gen_f64() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_reference_vectors() {
        // First outputs for seed 1234567, from the public-domain reference
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_reference_vectors() {
        // xoshiro256** seeded with SplitMix64(0) state expansion; values
        // cross-checked against the reference C implementation.
        let mut sm = SplitMix64::new(0);
        let state = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        let mut a = Xoshiro256StarStar::from_state(state);
        let mut b = Xoshiro256StarStar::seed_from_u64(0);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = (0..32)
            .map({
                let mut r = Prng::seed_from_u64(99);
                move |_| r.next_u64()
            })
            .collect();
        let b: Vec<u64> = (0..32)
            .map({
                let mut r = Prng::seed_from_u64(99);
                move |_| r.next_u64()
            })
            .collect();
        let c: Vec<u64> = (0..32)
            .map({
                let mut r = Prng::seed_from_u64(100);
                move |_| r.next_u64()
            })
            .collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Prng::seed_from_u64(5);
        for _ in 0..10_000 {
            let v = rng.gen_range(10..20u64);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=3usize);
            assert!((1..=3).contains(&w));
            let x = rng.gen_range(-8..8i64);
            assert!((-8..8).contains(&x));
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = Prng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            // Expected 10_000 per bucket; allow ±5%.
            assert!((9_500..10_500).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Prng::seed_from_u64(21);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.01, "observed {frac}");
        let mut rng = Prng::seed_from_u64(22);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        let mut rng = Prng::seed_from_u64(23);
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_f64_is_half_open_unit() {
        let mut rng = Prng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 100_000;
        for _ in 0..n {
            let f = rng.gen_f64();
            assert!((0.0..1.0).contains(&f));
            sum += f;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn derive_yields_decoupled_streams() {
        let root = Prng::seed_from_u64(1);
        let mut a = root.derive(0);
        let mut b = root.derive(1);
        let overlap = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn zero_state_is_repaired() {
        let mut r = Xoshiro256StarStar::from_state([0; 4]);
        assert_ne!(r.next_u64(), 0u64.wrapping_mul(0)); // stream is live
        let mut r2 = Xoshiro256StarStar::seed_from_u64(0);
        let mut r1 = Xoshiro256StarStar::from_state([0; 4]);
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn full_u64_range_is_supported() {
        let mut rng = Prng::seed_from_u64(9);
        // span wraps to 0 → raw 64-bit output, no panic.
        let _ = rng.gen_range(0..=u64::MAX);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_asserts() {
        let mut rng = Prng::seed_from_u64(0);
        let _ = rng.gen_range(5..5u64);
    }
}
