//! CLI entry point.
//!
//! ```text
//! mocktails-lint [OPTIONS] [CRATES_DIR]
//!
//! Options:
//!   --format <text|json>   report rendering (default: text)
//!   --rules <L00X,...>     only report the named rules
//!   --threads <N>          per-file analysis threads (default: the
//!                          process-wide MOCKTAILS_THREADS setting)
//!   --update-baselines     rewrite crates/lint/baselines/*.api instead of
//!                          diffing against them
//!   --explain <L0NN>       print one rule's documentation (invariant,
//!                          rationale, example finding, waiver shape) and
//!                          exit without linting
//! ```
//!
//! Exits 0 on a clean tree, 1 on violations, 2 on usage or I/O errors.
//! Reports are byte-identical across runs and thread counts.

use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

use mocktails_lint::RunOptions;
use mocktails_pool::Parallelism;

enum Format {
    Text,
    Json,
}

struct Args {
    root: String,
    format: Format,
    options: RunOptions,
}

/// What the command line asked for: a lint run, or a `--explain` page
/// (already printed by the parser, nothing left to do).
enum Parsed {
    Lint(Box<Args>),
    Explained,
}

fn parse_args() -> Result<Parsed, String> {
    let mut args = std::env::args().skip(1);
    let mut root: Option<String> = None;
    let mut format = Format::Text;
    let mut options = RunOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        return Err(format!(
                            "--format expects `text` or `json`, got {}",
                            other.unwrap_or("nothing")
                        ))
                    }
                };
            }
            "--rules" => {
                let list = args
                    .next()
                    .ok_or("--rules expects a comma-separated list")?;
                let set: BTreeSet<String> = list.split(',').map(|r| r.trim().to_string()).collect();
                options.rules = Some(set);
            }
            "--threads" => {
                let n: usize = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads expects a positive integer")?;
                options.parallelism = Parallelism::new(n);
            }
            "--update-baselines" => options.update_baselines = true,
            "--explain" => {
                let id = args.next().ok_or("--explain expects a rule id like L016")?;
                return match mocktails_lint::explain::rule_doc(id.trim()) {
                    Some(doc) => {
                        print!("{}", mocktails_lint::explain::render(doc));
                        Ok(Parsed::Explained)
                    }
                    None => Err(format!(
                        "--explain: unknown rule `{id}`; rules run L001 through L019"
                    )),
                };
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            dir => {
                if root.replace(dir.to_string()).is_some() {
                    return Err("more than one CRATES_DIR given".to_string());
                }
            }
        }
    }
    Ok(Parsed::Lint(Box::new(Args {
        root: root.unwrap_or_else(|| "crates".to_string()),
        format,
        options,
    })))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Parsed::Lint(args)) => args,
        Ok(Parsed::Explained) => return ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mocktails-lint: usage error: {msg}");
            return ExitCode::from(2);
        }
    };
    match mocktails_lint::run_with(Path::new(&args.root), &args.options) {
        Ok(report) => {
            match args.format {
                Format::Json => print!("{}", report.to_json()),
                Format::Text => {
                    print!("{report}");
                    if report.is_clean() {
                        println!(
                            "mocktails-lint: {} files checked, no violations",
                            report.files_checked
                        );
                    } else {
                        println!(
                            "mocktails-lint: {} violation(s) in {} files checked",
                            report.diagnostics.len(),
                            report.files_checked
                        );
                    }
                }
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mocktails-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
