//! CLI entry point: `mocktails-lint [CRATES_DIR]` (default `crates`).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "crates".to_string());
    match mocktails_lint::run(Path::new(&root)) {
        Ok(report) => {
            print!("{report}");
            if report.is_clean() {
                println!(
                    "mocktails-lint: {} files checked, no violations",
                    report.files_checked
                );
                ExitCode::SUCCESS
            } else {
                println!(
                    "mocktails-lint: {} violation(s) in {} files checked",
                    report.diagnostics.len(),
                    report.files_checked
                );
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("mocktails-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
