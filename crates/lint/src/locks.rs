//! The workspace lock-discipline analysis: rules L012–L014.
//!
//! Three layers stack up to make these rules cheap and deterministic:
//!
//! * [`crate::cfg`] gives every non-test function a control-flow graph
//!   with marked loop back-edges and a lexical scope tree.
//! * [`crate::dataflow`] iterates a guard-region analysis over it: which
//!   lock guards are live at each statement, where they were acquired,
//!   and whether a condvar `wait` sanctions them.
//! * The same conservative name resolution the L008 taint pass uses
//!   turns bare, qualified and method calls into workspace call edges,
//!   so blocking behaviour and lock acquisitions propagate through real
//!   call chains only — ambiguity never produces an edge.
//!
//! The rules:
//!
//! * **L012** — a cycle in the workspace lock-order graph (lock A held
//!   while B is acquired, and elsewhere B while A) is a potential
//!   deadlock; the diagnostic lists every acquisition edge of the cycle
//!   with its `file:line` site.
//! * **L013** — a blocking call (socket/file I/O, channel `recv`,
//!   `thread::sleep`, `WorkerPool::submit`/`join`/`drain`) while holding
//!   a guard, directly or through any resolved call chain, stalls every
//!   thread behind that lock.
//! * **L014** — a guard held across a loop back-edge on the
//!   streaming/synthesis crates pins the lock for the whole iteration;
//!   collect under the lock, release, then iterate.
//!
//! Deliberate approximations (see DESIGN.md "Static analysis v3"):
//!
//! * A lock's identity is `{crate}::{receiver}` where the receiver is
//!   the last field/variable name before `.lock()`/`.read()`/`.write()`.
//!   That identifies locks by their storage site, which is how this
//!   workspace names them consistently; two different fields with one
//!   name in one crate would alias.
//! * Methods *named* `lock`/`read`/`write`/`wait`/`wait_timeout` are
//!   always treated as the std primitives, even when a workspace type
//!   wraps them (the pool's `Shared::lock` does); the wrapper's callers
//!   then acquire under the wrapper's receiver name, which stays
//!   consistent per crate.
//! * A `let` binds a guard only when everything after the acquisition is
//!   a poison adapter (`unwrap`/`expect`/`unwrap_or_else`) or `?`; any
//!   other adaptor chain is assumed to consume the guard. Guards that
//!   escape through returns or closures are not tracked — wrapper
//!   functions whose signature names a guard type are resolved to the
//!   lock they acquire instead.
//! * Condvar `wait(guard)` sanctions the guard: it is the one legitimate
//!   way to sleep holding a lock, so a sanctioned guard is exempt from
//!   L013 and L014 (the wait releases the lock while sleeping).

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::{Cfg, CfgStmt, CfgStmtKind, FnCfg, ScopeId};
use crate::dataflow::{fixpoint, Analysis};
use crate::graph::{CallResolver, FileAnalysis, FileRole};
use crate::lexer::{Token, TokenKind};
use crate::parser;
use crate::rules::Diagnostic;

/// Crates whose loops L014 polices: the streaming/synthesis path, where
/// holding a lock across an iteration stalls the pipeline. The pool is
/// exempt by design — its condvar loops are the implementation of
/// waiting, and its guards are wait-sanctioned anyway.
const L014_CRATES: [&str; 7] = [
    "core",
    "trace",
    "workloads",
    "baselines",
    "serve",
    "store",
    "sample",
];

/// Call names treated as blocking regardless of argument shape. Shared
/// with the L016–L019 effects pass, so "blocking" means the same thing to
/// both analyses.
pub(crate) const BLOCKING_ANY: [&str; 10] = [
    "sleep",
    "recv",
    "recv_timeout",
    "accept",
    "connect",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
    "submit",
];

/// Method names treated as blocking only with an empty argument list:
/// `handle.join()` and `pool.drain()` block, `Vec::drain(..)` and
/// `Path::join(x)` do not. Shared with the effects pass like
/// [`BLOCKING_ANY`].
pub(crate) const BLOCKING_EMPTY: [&str; 2] = ["join", "drain"];

/// Guard type names whose appearance in a signature marks a function as
/// guard-returning (a lock-acquisition wrapper).
const GUARD_TYPES: [&str; 3] = ["MutexGuard", "RwLockReadGuard", "RwLockWriteGuard"];

/// Adapters that keep a lock guard alive when chained onto the
/// acquisition call.
const POISON_ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// One live guard in the dataflow state.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Guard {
    /// The `{crate}::{receiver}` lock identity.
    lock: String,
    /// 1-based source line of the acquisition.
    line: usize,
    /// Lexical scope the binding lives in (killed on scope exit).
    scope: ScopeId,
    /// True once a condvar `wait(guard)` has blessed this guard.
    sanctioned: bool,
}

/// One lock-relevant event inside a statement, in token order.
#[derive(Debug)]
enum Event {
    /// A std `.lock()`/`.read()`/`.write()` or a resolved call to a
    /// guard-returning wrapper.
    Acquire {
        /// The acquired lock's identity.
        lock: String,
        /// Token index of the call name (keys the bind table).
        tok: usize,
        /// 1-based line of the acquisition.
        line: usize,
    },
    /// `drop(name)` — kills the named guard.
    Drop {
        /// The dropped binding.
        name: String,
    },
    /// `cv.wait(name)` / `cv.wait_timeout(name, ..)` — sanctions `name`.
    Wait {
        /// The guard passed to the condvar.
        name: String,
    },
    /// A direct blocking call by marker name.
    Blocking {
        /// The marker (`flush`, `recv`, ...), for the diagnostic.
        what: &'static str,
        /// 1-based line of the call.
        line: usize,
    },
    /// A name-resolved call to another workspace function.
    Call {
        /// Index into the function table.
        callee: usize,
        /// 1-based line of the call.
        line: usize,
    },
}

/// The precomputed event script of one statement: the dataflow transfer
/// and the reporting walk replay exactly this, so their states agree.
#[derive(Debug, Default)]
struct StmtFacts {
    /// Events in token order.
    events: Vec<Event>,
    /// Acquire token index → binding name, for acquisitions whose guard
    /// outlives the statement (`let` bindings and `for`-iterator
    /// temporaries).
    binds: BTreeMap<usize, String>,
}

/// Why a function transitively blocks, mirroring the L008 taint causes.
#[derive(Debug, Clone)]
enum BlockCause {
    /// The body contains the marker itself.
    Direct(&'static str),
    /// The function calls `qual`, whose root marker is the second field.
    Via(String, &'static str),
}

/// One function in the lock analysis: its CFG plus workspace identity.
struct FnInfo<'a> {
    /// Index of the defining file in the input slice.
    file: usize,
    /// The function's CFG and token ranges.
    fc: &'a FnCfg,
    /// Display name: `Type::name` or `name`.
    qual: String,
}

/// Runs the whole lock-discipline analysis over the analyzed workspace.
/// Returned diagnostics are sorted and deduplicated; directive filtering
/// happens in [`crate::graph::cross_file`] like every cross-file rule.
pub(crate) fn lock_analysis(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    // 1. The function table, in deterministic (file, body-start) order.
    let mut fns: Vec<FnInfo<'_>> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.role != FileRole::Lint {
            continue;
        }
        for fc in &f.fn_cfgs {
            let qual = match &fc.self_type {
                Some(ty) => format!("{ty}::{}", fc.name),
                None => fc.name.clone(),
            };
            fns.push(FnInfo { file: fi, fc, qual });
        }
    }
    fns.sort_by_key(|i| (i.file, i.fc.body.0));

    // 2. The shared conservative resolver, the same one the L008 taint
    // pass and the L016–L019 effects pass use.
    let resolver = CallResolver::new(fns.iter().map(|info| {
        (
            info.fc.name.as_str(),
            info.fc.self_type.as_deref(),
            info.file,
        )
    }));

    // 3. Guard-returning wrappers: a signature naming a guard type plus
    // the first direct acquisition in the body gives the lock the
    // wrapper hands out.
    let wrapper_lock: Vec<Option<String>> = fns
        .iter()
        .map(|info| {
            let f = &files[info.file];
            let sig = parser::render(&f.tokens, info.fc.sig);
            if !GUARD_TYPES.iter().any(|g| sig.contains(g)) {
                return None;
            }
            first_direct_acquire(&f.tokens, info.fc.body, &f.crate_name)
        })
        .collect();

    // 4. Per-statement event scripts plus each function's direct facts.
    let mut all_facts: Vec<BTreeMap<(usize, usize), StmtFacts>> = Vec::with_capacity(fns.len());
    let mut direct_block: Vec<Option<&'static str>> = vec![None; fns.len()];
    let mut acq_all: Vec<BTreeSet<String>> = vec![BTreeSet::new(); fns.len()];
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
    for (id, info) in fns.iter().enumerate() {
        let f = &files[info.file];
        let mut facts: BTreeMap<(usize, usize), StmtFacts> = BTreeMap::new();
        let mut first_marker: Option<(usize, &'static str)> = None;
        for (b, block) in info.fc.cfg.blocks.iter().enumerate() {
            for (i, stmt) in block.stmts.iter().enumerate() {
                let sf = stmt_facts(
                    &f.tokens,
                    stmt,
                    id,
                    info.file,
                    &f.crate_name,
                    &resolver,
                    &wrapper_lock,
                );
                for ev in &sf.events {
                    match ev {
                        Event::Acquire { lock, .. } => {
                            acq_all[id].insert(lock.clone());
                        }
                        Event::Blocking { what, line } => {
                            let key = (*line, *what);
                            if first_marker.map(|m| key < m).unwrap_or(true) {
                                first_marker = Some(key);
                            }
                        }
                        Event::Call { callee, .. } if *callee != id => {
                            callees[id].insert(*callee);
                        }
                        _ => {}
                    }
                }
                facts.insert((b, i), sf);
            }
        }
        direct_block[id] = first_marker.map(|(_, what)| what);
        all_facts.push(facts);
    }

    // 5a. Transitive acquisition sets, to a fixpoint.
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..fns.len() {
            let callee_ids: Vec<usize> = callees[id].iter().copied().collect();
            for c in callee_ids {
                let extra: Vec<String> = acq_all[c]
                    .iter()
                    .filter(|l| !acq_all[id].contains(*l))
                    .cloned()
                    .collect();
                for l in extra {
                    acq_all[id].insert(l);
                    changed = true;
                }
            }
        }
    }

    // 5b. Transitive blocking causes, with the same deterministic
    // smallest-callee tie-break the taint pass uses.
    let mut bcause: Vec<Option<BlockCause>> = direct_block
        .iter()
        .map(|d| d.map(BlockCause::Direct))
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..fns.len() {
            if bcause[id].is_some() {
                continue;
            }
            let blocking_callee = callees[id]
                .iter()
                .filter_map(|&c| bcause[c].as_ref().map(|why| (c, why)))
                .min_by_key(|&(c, _)| (&fns[c].qual, c));
            if let Some((c, why)) = blocking_callee {
                let root = match why {
                    BlockCause::Direct(what) => what,
                    BlockCause::Via(_, root) => root,
                };
                bcause[id] = Some(BlockCause::Via(fns[c].qual.clone(), root));
                changed = true;
            }
        }
    }

    // 6. The reporting walk: per-function dataflow, then per-statement
    // replay collecting observations, then the global cycle check.
    let mut diags: Vec<Diagnostic> = Vec::new();
    let mut edges: BTreeMap<(String, String), (String, usize)> = BTreeMap::new();
    for (id, info) in fns.iter().enumerate() {
        let f = &files[info.file];
        let analysis = GuardAnalysis {
            cfg: &info.fc.cfg,
            facts: &all_facts[id],
        };
        let entries = fixpoint(&info.fc.cfg, &analysis);
        for (b, entry) in entries.iter().enumerate() {
            let Some(entry) = entry else {
                continue;
            };
            let mut state = entry.clone();
            for (i, stmt) in info.fc.cfg.blocks[b].stmts.iter().enumerate() {
                let mut obs = Vec::new();
                step(
                    &info.fc.cfg,
                    stmt,
                    all_facts[id].get(&(b, i)),
                    &mut state,
                    Some(&mut obs),
                );
                for o in obs {
                    report(o, f, &fns, &acq_all, &bcause, &mut diags, &mut edges);
                }
            }
            // L014: a guard live at a loop back-edge whose scope strictly
            // encloses the loop body was acquired outside the iteration.
            if !L014_CRATES.contains(&f.crate_name.as_str()) {
                continue;
            }
            for edge in &info.fc.cfg.blocks[b].succs {
                let Some(body_scope) = edge.back else {
                    continue;
                };
                for (name, g) in &state {
                    if g.sanctioned
                        || g.scope == body_scope
                        || !info.fc.cfg.scope_contains(g.scope, body_scope)
                    {
                        continue;
                    }
                    diags.push(Diagnostic {
                        file: f.path.clone(),
                        line: g.line,
                        rule: "L014",
                        message: format!(
                            "guard `{}` on `{}` (acquired line {}) is held across a loop back-edge in `{}`; collect under the lock, release it, then iterate",
                            display_name(name), g.lock, g.line, info.qual
                        ),
                    });
                }
            }
        }
    }
    diags.extend(cycle_diagnostics(&edges));
    diags.sort();
    diags.dedup();
    diags
}

/// Converts one observation into diagnostics and lock-order edges.
fn report(
    o: Obs,
    f: &FileAnalysis,
    fns: &[FnInfo<'_>],
    acq_all: &[BTreeSet<String>],
    bcause: &[Option<BlockCause>],
    diags: &mut Vec<Diagnostic>,
    edges: &mut BTreeMap<(String, String), (String, usize)>,
) {
    match o {
        Obs::Acquire { lock, line, held } => {
            for (_, g) in &held {
                edges
                    .entry((g.lock.clone(), lock.clone()))
                    .or_insert_with(|| (f.path.clone(), line));
            }
        }
        Obs::Blocking { what, line, held } => {
            if let Some((name, g)) = held.iter().find(|(_, g)| !g.sanctioned) {
                diags.push(Diagnostic {
                    file: f.path.clone(),
                    line,
                    rule: "L013",
                    message: format!(
                        "blocking call `{what}` while holding guard `{}` on `{}` (acquired line {}); release the guard before blocking or allowlist with a reason",
                        display_name(name), g.lock, g.line
                    ),
                });
            }
        }
        Obs::Call { callee, line, held } => {
            for (_, g) in &held {
                for lock in &acq_all[callee] {
                    edges
                        .entry((g.lock.clone(), lock.clone()))
                        .or_insert_with(|| (f.path.clone(), line));
                }
            }
            if let Some((name, g)) = held.iter().find(|(_, g)| !g.sanctioned) {
                if let Some(cause) = &bcause[callee] {
                    let (root, hop) = match cause {
                        BlockCause::Direct(what) => (what, String::new()),
                        BlockCause::Via(next, root) => (root, format!(" through `{next}`")),
                    };
                    diags.push(Diagnostic {
                        file: f.path.clone(),
                        line,
                        rule: "L013",
                        message: format!(
                            "call to `{}` reaches blocking `{root}`{hop} while holding guard `{}` on `{}` (acquired line {}); release the guard before blocking or allowlist with a reason",
                            fns[callee].qual, display_name(name), g.lock, g.line
                        ),
                    });
                }
            }
        }
    }
}

/// L012: strongly-connected components of the lock-order graph. Two
/// locks in one component (or a self-edge) mean two code paths acquire
/// them in opposite orders.
fn cycle_diagnostics(edges: &BTreeMap<(String, String), (String, usize)>) -> Vec<Diagnostic> {
    let mut nodes: BTreeSet<String> = BTreeSet::new();
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (a, b) in edges.keys() {
        nodes.insert(a.clone());
        nodes.insert(b.clone());
        adj.entry(a).or_default().insert(b);
    }
    // Path-of-length-≥1 reachability; the graphs here are tiny (one node
    // per lock in the workspace), so BFS per query is plenty.
    let reach = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut queue: Vec<&str> = adj
            .get(from)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        while let Some(n) = queue.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    queue.extend(next.iter().copied());
                }
            }
        }
        false
    };

    let mut out = Vec::new();
    let mut assigned: BTreeSet<String> = BTreeSet::new();
    for n in &nodes {
        if assigned.contains(n) {
            continue;
        }
        let group: Vec<&String> = nodes
            .iter()
            .filter(|m| *m == n || (reach(n, m) && reach(m, n)))
            .collect();
        for m in &group {
            assigned.insert((*m).clone());
        }
        let cyclic = group.len() > 1 || edges.contains_key(&(n.clone(), n.clone()));
        if !cyclic {
            continue;
        }
        let cycle_edges: Vec<_> = edges
            .iter()
            .filter(|((a, b), _)| group.contains(&a) && group.contains(&b))
            .collect();
        let segs: Vec<String> = cycle_edges
            .iter()
            .map(|((a, b), (file, line))| format!("`{a}` -> `{b}` ({file}:{line})"))
            .collect();
        let Some((_, (file, line))) = cycle_edges.first() else {
            continue;
        };
        out.push(Diagnostic {
            file: file.clone(),
            line: *line,
            rule: "L012",
            message: format!(
                "lock-order cycle (potential deadlock): {}; acquire locks in one global order",
                segs.join(", ")
            ),
        });
    }
    out
}

/// What the reporting walk observed while replaying one statement. Each
/// observation snapshots the guards live at that exact event, in
/// deterministic (bound names first, then temporaries) order.
enum Obs {
    /// A lock was acquired with `held` guards live.
    Acquire {
        /// The acquired lock.
        lock: String,
        /// 1-based line of the acquisition.
        line: usize,
        /// Live guards at the event.
        held: Vec<(String, Guard)>,
    },
    /// A direct blocking marker ran with `held` guards live.
    Blocking {
        /// The marker name.
        what: &'static str,
        /// 1-based line of the call.
        line: usize,
        /// Live guards at the event.
        held: Vec<(String, Guard)>,
    },
    /// A resolved workspace call ran with `held` guards live.
    Call {
        /// Index into the function table.
        callee: usize,
        /// 1-based line of the call.
        line: usize,
        /// Live guards at the event.
        held: Vec<(String, Guard)>,
    },
}

/// The guard-region dataflow: state maps binding name → [`Guard`].
struct GuardAnalysis<'a> {
    cfg: &'a Cfg,
    facts: &'a BTreeMap<(usize, usize), StmtFacts>,
}

impl Analysis for GuardAnalysis<'_> {
    type State = BTreeMap<String, Guard>;

    fn boundary(&self) -> Self::State {
        BTreeMap::new()
    }

    fn transfer(&self, stmt: &CfgStmt, block: usize, idx: usize, state: &mut Self::State) {
        step(self.cfg, stmt, self.facts.get(&(block, idx)), state, None);
    }

    fn edge(&self, edge: &crate::cfg::Edge, state: &mut Self::State) {
        // A back edge ends the iteration: bindings made inside the loop
        // body die at its closing brace before control re-enters the
        // head, so only guards from enclosing scopes (the L014 targets)
        // survive the trip around.
        if let Some(body_scope) = edge.back {
            state.retain(|_, g| !self.cfg.scope_contains(body_scope, g.scope));
        }
    }

    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool {
        let mut changed = false;
        for (k, g) in other {
            match into.get_mut(k) {
                None => {
                    into.insert(k.clone(), g.clone());
                    changed = true;
                }
                Some(cur) => {
                    // Keep the smaller Guard: deterministic, and since
                    // `sanctioned: false < true`, a guard unsanctioned on
                    // any path joins as unsanctioned (pessimistic).
                    if *g < *cur {
                        *cur = g.clone();
                        changed = true;
                    }
                }
            }
        }
        changed
    }
}

/// Applies one statement to the guard state; with `obs` set, also records
/// what the lock rules need to see. Used by both the dataflow transfer
/// (silently) and the reporting walk, so their states evolve identically.
fn step(
    cfg: &Cfg,
    stmt: &CfgStmt,
    facts: Option<&StmtFacts>,
    state: &mut BTreeMap<String, Guard>,
    mut obs: Option<&mut Vec<Obs>>,
) {
    // Lexical death: a binding made in a scope that does not enclose this
    // statement has been dropped on the way here.
    state.retain(|_, g| cfg.scope_contains(g.scope, stmt.scope));
    let Some(facts) = facts else {
        return;
    };
    // Temporaries live to the end of their statement only.
    let mut temps: BTreeMap<String, Guard> = BTreeMap::new();
    for ev in &facts.events {
        match ev {
            Event::Acquire { lock, tok, line } => {
                if let Some(out) = obs.as_deref_mut() {
                    out.push(Obs::Acquire {
                        lock: lock.clone(),
                        line: *line,
                        held: snapshot(state, &temps),
                    });
                }
                let guard = Guard {
                    lock: lock.clone(),
                    line: *line,
                    scope: stmt.scope,
                    sanctioned: false,
                };
                match facts.binds.get(tok) {
                    Some(name) => {
                        state.insert(name.clone(), guard);
                    }
                    None => {
                        temps.insert(format!("<temporary@{tok}>"), guard);
                    }
                }
            }
            Event::Drop { name } => {
                state.remove(name);
                temps.remove(name);
            }
            Event::Wait { name } => {
                if let Some(g) = state.get_mut(name) {
                    g.sanctioned = true;
                }
            }
            Event::Blocking { what, line } => {
                if let Some(out) = obs.as_deref_mut() {
                    out.push(Obs::Blocking {
                        what,
                        line: *line,
                        held: snapshot(state, &temps),
                    });
                }
            }
            Event::Call { callee, line } => {
                if let Some(out) = obs.as_deref_mut() {
                    out.push(Obs::Call {
                        callee: *callee,
                        line: *line,
                        held: snapshot(state, &temps),
                    });
                }
            }
        }
    }
}

/// How a binding name reads in a diagnostic: `for`-iterator temporaries
/// carry a token index internally (to stay unique per acquisition) that
/// would only confuse the reader.
fn display_name(name: &str) -> &str {
    if name.starts_with("<temporary@") {
        "<temporary>"
    } else {
        name
    }
}

/// The live guards at an event: bound guards, then statement-local
/// temporaries, each in name order.
fn snapshot(
    state: &BTreeMap<String, Guard>,
    temps: &BTreeMap<String, Guard>,
) -> Vec<(String, Guard)> {
    let mut held: Vec<(String, Guard)> =
        state.iter().map(|(n, g)| (n.clone(), g.clone())).collect();
    held.extend(
        temps
            .values()
            .map(|g| ("<temporary>".to_string(), g.clone())),
    );
    held
}

/// Extracts one statement's event script.
fn stmt_facts(
    tokens: &[Token],
    stmt: &CfgStmt,
    self_id: usize,
    file: usize,
    crate_name: &str,
    resolver: &CallResolver<'_>,
    wrapper_lock: &[Option<String>],
) -> StmtFacts {
    let mut facts = StmtFacts::default();
    let (start, end) = stmt.range;
    let end = end.min(tokens.len());
    let mut i = start;
    while i < end {
        let Some(name) = tokens[i].kind.ident() else {
            i += 1;
            continue;
        };
        if !matches!(tokens.get(i + 1).map(|t| &t.kind), Some(k) if k.is_punct('(')) {
            i += 1;
            continue;
        }
        let line = tokens[i].line;
        let prev = i.checked_sub(1).map(|j| &tokens[j].kind);
        let is_method = matches!(prev, Some(k) if k.is_punct('.'));
        let empty = matches!(tokens.get(i + 2).map(|t| &t.kind), Some(k) if k.is_punct(')'));

        // The std lock vocabulary always means std, never a workspace
        // wrapper — resolving `self.cache.lock()` to some unrelated
        // method named `lock` would mis-seed every rule downstream.
        if is_method && matches!(name, "lock" | "read" | "write") {
            if empty {
                facts.events.push(Event::Acquire {
                    lock: lock_identity(tokens, i, crate_name),
                    tok: i,
                    line,
                });
            }
            // `.read(buf)` and friends are I/O calls; the explicit
            // markers (`read_exact`, ...) cover the blocking ones.
            i += 1;
            continue;
        }
        if is_method && matches!(name, "wait" | "wait_timeout") {
            if let Some(arg) = tokens.get(i + 2).and_then(|t| t.kind.ident()) {
                facts.events.push(Event::Wait {
                    name: arg.to_string(),
                });
            }
            i += 1;
            continue;
        }
        if name == "drop"
            && !is_method
            && !matches!(prev, Some(k) if k.is_op("::"))
            && matches!(tokens.get(i + 3).map(|t| &t.kind), Some(k) if k.is_punct(')'))
        {
            if let Some(arg) = tokens.get(i + 2).and_then(|t| t.kind.ident()) {
                facts.events.push(Event::Drop {
                    name: arg.to_string(),
                });
                i += 1;
                continue;
            }
        }
        if matches!(prev, Some(TokenKind::Ident(kw)) if kw == "fn") {
            i += 1;
            continue; // a nested definition, not a call
        }
        if let Some(what) = BLOCKING_ANY.iter().copied().find(|m| *m == name) {
            facts.events.push(Event::Blocking { what, line });
        } else if is_method && empty {
            if let Some(what) = BLOCKING_EMPTY.iter().copied().find(|m| *m == name) {
                facts.events.push(Event::Blocking { what, line });
            }
        }
        for callee in resolver.resolve_callees(tokens, i, name, file) {
            if let Some(lock) = &wrapper_lock[callee] {
                // Calling a guard-returning wrapper IS acquiring its lock.
                facts.events.push(Event::Acquire {
                    lock: lock.clone(),
                    tok: i,
                    line,
                });
            } else if callee != self_id {
                facts.events.push(Event::Call { callee, line });
            }
        }
        i += 1;
    }

    // Which acquisitions bind a guard that outlives the statement?
    match &stmt.kind {
        CfgStmtKind::Let { name } => {
            let last_acquire = facts.events.iter().rev().find_map(|e| match e {
                Event::Acquire { tok, .. } => Some(*tok),
                _ => None,
            });
            if let Some(tok) = last_acquire {
                let after = skip_call(tokens, tok);
                if guard_survives(tokens, after, end) {
                    facts.binds.insert(tok, name.clone());
                }
            }
        }
        CfgStmtKind::ForIter => {
            // Every temporary born in a `for` iterator expression lives
            // until the loop ends (Rust extends their lifetime), so every
            // acquisition here binds an anonymous loop-scoped guard.
            let toks: Vec<usize> = facts
                .events
                .iter()
                .filter_map(|e| match e {
                    Event::Acquire { tok, .. } => Some(*tok),
                    _ => None,
                })
                .collect();
            for tok in toks {
                facts.binds.insert(tok, format!("<temporary@{tok}>"));
            }
        }
        CfgStmtKind::Expr => {}
    }
    facts
}

/// The `{crate}::{receiver}` identity of the lock acquired at token `i`
/// (the `lock`/`read`/`write` name). The receiver is the identifier
/// directly before the dot — the field or variable storing the lock —
/// or `<expr>` when the receiver is a computed expression.
fn lock_identity(tokens: &[Token], i: usize, crate_name: &str) -> String {
    let recv = i
        .checked_sub(2)
        .and_then(|j| tokens[j].kind.ident())
        .unwrap_or("<expr>");
    let krate = if crate_name.is_empty() {
        "ws"
    } else {
        crate_name
    };
    format!("{krate}::{recv}")
}

/// The first direct std lock acquisition in a body's token range, as a
/// lock identity — how a guard-returning wrapper declares which lock its
/// guard protects.
fn first_direct_acquire(
    tokens: &[Token],
    body: (usize, usize),
    crate_name: &str,
) -> Option<String> {
    let end = body.1.min(tokens.len());
    for i in body.0..end {
        let Some(name) = tokens[i].kind.ident() else {
            continue;
        };
        if !matches!(name, "lock" | "read" | "write") {
            continue;
        }
        let is_method = i
            .checked_sub(1)
            .map(|j| tokens[j].kind.is_punct('.'))
            .unwrap_or(false);
        let empty = matches!(tokens.get(i + 1).map(|t| &t.kind), Some(k) if k.is_punct('('))
            && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(k) if k.is_punct(')'));
        if is_method && empty {
            return Some(lock_identity(tokens, i, crate_name));
        }
    }
    None
}

/// Index just past the call's closing parenthesis, where the call name is
/// at `i` and its argument list opens at `i + 1`.
fn skip_call(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0usize;
    let mut j = i + 1;
    while j < tokens.len() {
        if tokens[j].kind.is_punct('(') {
            depth += 1;
        } else if tokens[j].kind.is_punct(')') {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// True when everything from `i` to `end` is a guard-preserving adapter
/// chain: `?` and `.unwrap()`/`.expect(..)`/`.unwrap_or_else(..)` only.
/// Anything else (a field projection, a map, a method on the protected
/// data) consumes the guard expression into some other value.
fn guard_survives(tokens: &[Token], mut i: usize, end: usize) -> bool {
    let end = end.min(tokens.len());
    while i < end {
        let k = &tokens[i].kind;
        if k.is_punct('?') || k.is_op("?") {
            i += 1;
            continue;
        }
        if k.is_punct('.') {
            let adapter = tokens.get(i + 1).and_then(|t| t.kind.ident());
            if !matches!(adapter, Some(a) if POISON_ADAPTERS.contains(&a)) {
                return false;
            }
            if !matches!(tokens.get(i + 2).map(|t| &t.kind), Some(k) if k.is_punct('(')) {
                return false;
            }
            i = skip_call(tokens, i + 1);
            continue;
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn lock_identity_uses_the_last_receiver_segment() {
        let toks = lex("self.shared.conns.lock()").tokens;
        let at = toks
            .iter()
            .position(|t| t.kind.ident() == Some("lock"))
            .expect("lock token");
        assert_eq!(lock_identity(&toks, at, "serve"), "serve::conns");
    }

    #[test]
    fn guard_survives_poison_adapters_only() {
        let ok = lex("m.lock().unwrap_or_else(PoisonError::into_inner)").tokens;
        let at = ok
            .iter()
            .position(|t| t.kind.ident() == Some("lock"))
            .expect("lock token");
        let after = skip_call(&ok, at);
        assert!(guard_survives(&ok, after, ok.len()));

        let consumed = lex("m.lock().unwrap().clone()").tokens;
        let at = consumed
            .iter()
            .position(|t| t.kind.ident() == Some("lock"))
            .expect("lock token");
        let after = skip_call(&consumed, at);
        assert!(!guard_survives(&consumed, after, consumed.len()));
    }

    #[test]
    fn wrapper_bodies_reveal_their_lock() {
        let toks =
            lex("fn cache(&self) { self.cache.lock().unwrap_or_else(PoisonError::into_inner) }")
                .tokens;
        assert_eq!(
            first_direct_acquire(&toks, (0, toks.len()), "serve"),
            Some("serve::cache".to_string())
        );
    }
}
