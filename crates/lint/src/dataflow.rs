//! A small intraprocedural forward-dataflow framework over [`crate::cfg`].
//!
//! An [`Analysis`] supplies a boundary state, a per-statement transfer
//! function and a join; [`fixpoint`] iterates block entry states to a
//! fixed point in deterministic block order. The framework is
//! deliberately minimal — finite lattices, forward direction only —
//! which is all the lock-discipline analysis needs.
//!
//! Termination: joins must only grow states (set-union-like) and
//! transfer must be deterministic. As a belt-and-braces guarantee the
//! iteration is also capped; hitting the cap under-approximates, which
//! for a linter means missing a diagnostic, never inventing one.

use crate::cfg::{Cfg, CfgStmt, Edge};

/// One forward dataflow analysis over a function CFG.
pub trait Analysis {
    /// The abstract state attached to each block entry.
    type State: Clone + PartialEq;

    /// State on entry to the function.
    fn boundary(&self) -> Self::State;

    /// Applies one statement's effect to the state in place.
    fn transfer(&self, stmt: &CfgStmt, block: usize, idx: usize, state: &mut Self::State);

    /// Adjusts the state flowing along one CFG edge, before the join at
    /// its target. The default keeps it unchanged; the lock analysis
    /// uses the loop-body scope a back edge carries to kill bindings
    /// whose lexical life ends with the iteration.
    fn edge(&self, _edge: &Edge, _state: &mut Self::State) {}

    /// Merges `other` into `into`; returns true if `into` changed.
    fn join(&self, into: &mut Self::State, other: &Self::State) -> bool;
}

/// Runs `analysis` to a fixed point, returning the entry state of every
/// block (`None` for blocks control flow cannot reach).
pub fn fixpoint<A: Analysis>(cfg: &Cfg, analysis: &A) -> Vec<Option<A::State>> {
    let mut entries: Vec<Option<A::State>> = vec![None; cfg.blocks.len()];
    if cfg.blocks.is_empty() {
        return entries;
    }
    entries[0] = Some(analysis.boundary());
    // Blocks are created in roughly topological order, so index-order
    // sweeps converge in very few rounds; the cap only guards against a
    // non-monotone Analysis implementation.
    let max_rounds = 4 * cfg.blocks.len() + 16;
    for _ in 0..max_rounds {
        let mut changed = false;
        for b in 0..cfg.blocks.len() {
            let Some(entry) = entries[b].clone() else {
                continue;
            };
            let exit = block_exit(cfg, analysis, b, entry);
            for edge in &cfg.blocks[b].succs {
                let mut flowed = exit.clone();
                analysis.edge(edge, &mut flowed);
                match &mut entries[edge.to] {
                    Some(existing) => changed |= analysis.join(existing, &flowed),
                    slot @ None => {
                        *slot = Some(flowed);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    entries
}

/// Replays a block's statements from its entry state, returning the state
/// at the block's exit.
pub fn block_exit<A: Analysis>(cfg: &Cfg, analysis: &A, block: usize, entry: A::State) -> A::State {
    let mut state = entry;
    for (i, stmt) in cfg.blocks[block].stmts.iter().enumerate() {
        analysis.transfer(stmt, block, i, &mut state);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::{build, CfgStmtKind};
    use crate::lexer::lex;
    use crate::parser::{parse, parse_body};
    use std::collections::BTreeSet;

    fn cfg_of(src: &str) -> Cfg {
        let toks = lex(src).tokens;
        let ast = parse(&toks);
        build(&parse_body(&toks, ast.items[0].body.expect("body")))
    }

    /// Collects the set of `let` names bound on any path so far — a toy
    /// may-analysis exercising join and loop convergence.
    struct Bindings;

    impl Analysis for Bindings {
        type State = BTreeSet<String>;

        fn boundary(&self) -> Self::State {
            BTreeSet::new()
        }

        fn transfer(&self, stmt: &CfgStmt, _b: usize, _i: usize, state: &mut Self::State) {
            if let CfgStmtKind::Let { name } = &stmt.kind {
                state.insert(name.clone());
            }
        }

        fn join(&self, into: &mut Self::State, other: &Self::State) -> bool {
            let before = into.len();
            into.extend(other.iter().cloned());
            into.len() != before
        }
    }

    #[test]
    fn straight_line_accumulates() {
        let cfg = cfg_of("fn f() { let a = x(); let b = y(); }");
        let entries = fixpoint(&cfg, &Bindings);
        let exit = block_exit(&cfg, &Bindings, 0, entries[0].clone().unwrap());
        assert_eq!(
            exit.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string()]
        );
    }

    #[test]
    fn branches_join_as_union() {
        let cfg = cfg_of("fn f(c: bool) { if c { let a = x(); } else { let b = y(); } tail(); }");
        let entries = fixpoint(&cfg, &Bindings);
        // Find the join block (the one holding `tail()` on line 1 with
        // two predecessors): its entry has both names.
        let join = cfg
            .blocks
            .iter()
            .enumerate()
            .find(|(i, b)| {
                !b.stmts.is_empty()
                    && cfg
                        .blocks
                        .iter()
                        .flat_map(|p| &p.succs)
                        .filter(|e| e.to == *i)
                        .count()
                        == 2
            })
            .map(|(i, _)| i)
            .expect("join block");
        let st = entries[join].as_ref().expect("join reachable");
        assert!(st.contains("a") && st.contains("b"));
    }

    #[test]
    fn loops_converge() {
        let cfg = cfg_of("fn f() { loop { let a = x(); if done() { break; } } after(); }");
        let entries = fixpoint(&cfg, &Bindings);
        // The loop head sees `a` via the back edge.
        let head = cfg
            .blocks
            .iter()
            .flat_map(|b| &b.succs)
            .find(|e| e.back.is_some())
            .map(|e| e.to)
            .expect("back edge");
        assert!(entries[head]
            .as_ref()
            .expect("head reachable")
            .contains("a"));
    }

    #[test]
    fn unreachable_blocks_have_no_state() {
        let cfg = cfg_of("fn f() { return; }");
        let entries = fixpoint(&cfg, &Bindings);
        assert!(entries[0].is_some());
        // The block after `return` is unreachable.
        assert!(entries.iter().skip(1).all(Option::is_none));
    }
}
