//! A recursive-descent *item* parser over the token skeleton.
//!
//! The per-file rules (L001–L007) get by on raw tokens, but the cross-file
//! analyses need structure: which items a file declares, what is `pub`,
//! which tokens form a signature versus a body, which `use` paths a file
//! imports, and which functions own which token ranges. This module
//! recovers exactly that — an *item-level* AST. Expression grammar is
//! deliberately out of scope: bodies are kept as token ranges and scanned,
//! not parsed, which keeps the parser small, total (it cannot fail — at
//! worst it skips tokens), and fast.
//!
//! Guarantees:
//!
//! * **Progress** — every loop consumes at least one token, so malformed
//!   input can never hang the linter.
//! * **Determinism** — the AST is a pure function of the token stream.
//! * **Test scoping** — items under `#[cfg(test)]` / `#[test]` are marked,
//!   transitively, so analyses can skip test-only code.

use crate::lexer::{Token, TokenKind};

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn` (free function, method, or trait method declaration).
    Fn,
    /// `struct` (unit, tuple, or braced).
    Struct,
    /// `enum`.
    Enum,
    /// `union`.
    Union,
    /// `trait` definition.
    Trait,
    /// `mod` (inline or out-of-line).
    Mod,
    /// `const` item.
    Const,
    /// `static` item.
    Static,
    /// `type` alias.
    TypeAlias,
    /// `use` declaration (paths recorded in [`Item::uses`]).
    Use,
    /// `impl` block (children hold its items).
    Impl,
    /// `macro_rules!` definition.
    MacroRules,
    /// `extern crate`.
    ExternCrate,
    /// `extern "abi" { ... }` foreign module.
    ForeignMod,
}

/// Item visibility, as far as the surface scan needs to distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub`.
    Private,
    /// `pub(crate)`, `pub(super)`, `pub(in ...)`.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// One `#[...]` or `#![...]` attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attr {
    /// 1-based line of the `#`.
    pub line: usize,
    /// First path segment (`allow`, `cfg`, `derive`, `deprecated`, ...).
    pub name: String,
    /// Every identifier inside the attribute after the name, flattened
    /// (`#[allow(clippy::x)]` → `["clippy", "x"]`).
    pub args: Vec<String>,
    /// True for inner attributes (`#![...]`).
    pub inner: bool,
}

/// One flattened path of a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsePath {
    /// Path segments (`use a::b::{c, d}` yields `[a,b,c]` and `[a,b,d]`).
    pub segments: Vec<String>,
    /// `use path as alias` rename, if any.
    pub alias: Option<String>,
    /// True for `use path::*`.
    pub glob: bool,
}

/// One parsed item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Item name; empty for `impl` blocks, foreign mods and `use`.
    pub name: String,
    /// Token index of the name, if the item has one.
    pub name_tok: Option<usize>,
    /// 1-based source line the item starts on (its keyword).
    pub line: usize,
    /// Visibility.
    pub vis: Visibility,
    /// True if a doc comment sits directly before the item.
    pub has_doc: bool,
    /// Outer attributes on the item.
    pub attrs: Vec<Attr>,
    /// True for `unsafe fn` / `unsafe impl` / `unsafe trait`.
    pub is_unsafe: bool,
    /// True if the item lives under `#[cfg(test)]` / `#[test]`.
    pub in_test: bool,
    /// Token range `[start, end)` of the header: keyword through the last
    /// token before the body brace (or through the terminating `;`,
    /// exclusive).
    pub sig: (usize, usize),
    /// Token range `[start, end)` of the tokens inside the body braces,
    /// if the item has a braced body.
    pub body: Option<(usize, usize)>,
    /// For `impl` blocks: last path segment of the self type.
    pub self_type: Option<String>,
    /// For trait impls: last path segment of the trait.
    pub trait_name: Option<String>,
    /// Nested items (of `mod`, `trait` and `impl` bodies).
    pub children: Vec<Item>,
    /// Flattened paths (only for [`ItemKind::Use`]).
    pub uses: Vec<UsePath>,
}

impl Item {
    /// True if the item carries the named attribute.
    pub fn has_attr(&self, name: &str) -> bool {
        self.attrs.iter().any(|a| a.name == name)
    }

    /// True for plain-`pub` items.
    pub fn is_pub(&self) -> bool {
        self.vis == Visibility::Public
    }
}

/// The item-level AST of one file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ast {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// Parses a token stream into its item AST. Total: cannot fail.
pub fn parse(tokens: &[Token]) -> Ast {
    let mut p = Parser { toks: tokens, i: 0 };
    let items = p.items(tokens.len(), false);
    Ast { items }
}

/// Item keywords the dispatcher recognizes.
const ITEM_KEYWORDS: [&str; 13] = [
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "mod",
    "const",
    "static",
    "type",
    "use",
    "impl",
    "macro_rules",
    "extern",
];

struct Parser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn kind(&self, at: usize) -> Option<&'a TokenKind> {
        self.toks.get(at).map(|t| &t.kind)
    }

    fn ident(&self, at: usize) -> Option<&'a str> {
        self.kind(at).and_then(|k| k.ident())
    }

    fn line(&self, at: usize) -> usize {
        self.toks.get(at).map(|t| t.line).unwrap_or(0)
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        matches!(self.kind(at), Some(k) if k.is_punct(c))
    }

    /// Parses items until `end`, always making progress.
    fn items(&mut self, end: usize, in_test: bool) -> Vec<Item> {
        let mut out = Vec::new();
        while self.i < end {
            let before = self.i;
            if let Some(item) = self.item(end, in_test) {
                out.push(item);
            }
            if self.i <= before {
                // Safety net: whatever happened, never loop in place.
                self.i = before + 1;
            }
        }
        out
    }

    /// Parses one item (or skips one unrecognized token, returning None).
    fn item(&mut self, end: usize, in_test: bool) -> Option<Item> {
        let mut has_doc = false;
        let mut attrs: Vec<Attr> = Vec::new();
        // Doc comments and attributes, in any interleaving.
        loop {
            match self.kind(self.i) {
                Some(TokenKind::DocComment) => {
                    has_doc = true;
                    self.i += 1;
                }
                Some(k) if k.is_punct('#') => {
                    let looks_like_attr = self.is_punct(self.i + 1, '[')
                        || (self.is_punct(self.i + 1, '!') && self.is_punct(self.i + 2, '['));
                    if !looks_like_attr {
                        self.i += 1;
                        return None;
                    }
                    let attr = self.attr();
                    attrs.push(attr);
                }
                _ => break,
            }
            if self.i >= end {
                return None;
            }
        }

        // Visibility.
        let mut vis = Visibility::Private;
        if self.ident(self.i) == Some("pub") {
            self.i += 1;
            vis = if self.is_punct(self.i, '(') {
                self.skip_balanced('(', ')');
                Visibility::Restricted
            } else {
                Visibility::Public
            };
        }

        // Qualifiers before the item keyword.
        let mut is_unsafe = false;
        loop {
            match self.ident(self.i) {
                Some("unsafe") => {
                    is_unsafe = true;
                    self.i += 1;
                }
                Some("async") | Some("default") => self.i += 1,
                Some("const")
                    if matches!(self.ident(self.i + 1), Some("fn" | "unsafe" | "extern")) =>
                {
                    self.i += 1;
                }
                Some("extern")
                    if matches!(self.kind(self.i + 1), Some(TokenKind::Lit(_)))
                        && self.ident(self.i + 2) == Some("fn") =>
                {
                    self.i += 2;
                }
                _ => break,
            }
        }

        let in_test = in_test || attrs.iter().any(is_test_attr);
        let kw_tok = self.i;
        let line = self.line(kw_tok);
        let kw = match self.ident(self.i) {
            Some(k) if ITEM_KEYWORDS.contains(&k) => k,
            Some(_) if self.is_punct(self.i + 1, '!') => {
                // Item-level macro invocation: `name! { ... }` / `name!(...);`
                self.i += 2;
                if self.ident(self.i).is_some() {
                    self.i += 1; // `macro_name! ident { ... }` form
                }
                self.skip_macro_group();
                return None;
            }
            _ => {
                self.i += 1;
                return None;
            }
        };
        self.i += 1;

        let mut item = Item {
            kind: ItemKind::Fn,
            name: String::new(),
            name_tok: None,
            line,
            vis,
            has_doc,
            attrs,
            is_unsafe,
            in_test,
            sig: (kw_tok, kw_tok),
            body: None,
            self_type: None,
            trait_name: None,
            children: Vec::new(),
            uses: Vec::new(),
        };

        match kw {
            "fn" => {
                item.kind = ItemKind::Fn;
                self.take_name(&mut item);
                self.header_then_body(&mut item, end, false);
            }
            "struct" | "union" => {
                item.kind = if kw == "struct" {
                    ItemKind::Struct
                } else {
                    ItemKind::Union
                };
                self.take_name(&mut item);
                self.header_then_body(&mut item, end, false);
            }
            "enum" => {
                item.kind = ItemKind::Enum;
                self.take_name(&mut item);
                self.header_then_body(&mut item, end, false);
            }
            "trait" => {
                item.kind = ItemKind::Trait;
                self.take_name(&mut item);
                self.header_then_body(&mut item, end, true);
                let body = item.body;
                if let Some((bs, be)) = body {
                    item.children = self.parse_range(bs, be, item.in_test);
                }
            }
            "mod" => {
                item.kind = ItemKind::Mod;
                self.take_name(&mut item);
                self.header_then_body(&mut item, end, true);
                let body = item.body;
                if let Some((bs, be)) = body {
                    item.children = self.parse_range(bs, be, item.in_test);
                }
            }
            "const" | "static" => {
                item.kind = if kw == "const" {
                    ItemKind::Const
                } else {
                    ItemKind::Static
                };
                if self.ident(self.i) == Some("mut") {
                    self.i += 1;
                }
                self.take_name(&mut item);
                self.until_semicolon(&mut item, end);
            }
            "type" => {
                item.kind = ItemKind::TypeAlias;
                self.take_name(&mut item);
                self.until_semicolon(&mut item, end);
            }
            "use" => {
                item.kind = ItemKind::Use;
                let stmt_end = self.find_semicolon(end);
                item.uses = self.use_paths(stmt_end);
                item.sig = (kw_tok, stmt_end);
                self.i = (stmt_end + 1).min(end); // past the `;`
            }
            "impl" => {
                item.kind = ItemKind::Impl;
                self.impl_header(&mut item, end);
                let body = item.body;
                if let Some((bs, be)) = body {
                    item.children = self.parse_range(bs, be, item.in_test);
                }
            }
            "macro_rules" => {
                item.kind = ItemKind::MacroRules;
                if self.is_punct(self.i, '!') {
                    self.i += 1;
                }
                self.take_name(&mut item);
                item.sig = (kw_tok, self.i);
                self.skip_macro_group();
            }
            "extern" => {
                if self.ident(self.i) == Some("crate") {
                    item.kind = ItemKind::ExternCrate;
                    self.i += 1;
                    self.take_name(&mut item);
                    self.until_semicolon(&mut item, end);
                } else {
                    item.kind = ItemKind::ForeignMod;
                    if matches!(self.kind(self.i), Some(TokenKind::Lit(_))) {
                        self.i += 1;
                    }
                    item.sig = (kw_tok, self.i);
                    if self.is_punct(self.i, '{') {
                        let (bs, be) = self.skip_balanced('{', '}');
                        item.body = Some((bs, be));
                    }
                }
            }
            _ => unreachable!("dispatcher only passes ITEM_KEYWORDS"),
        }
        Some(item)
    }

    /// Records the item's name if the next token is an identifier.
    fn take_name(&mut self, item: &mut Item) {
        if let Some(name) = self.ident(self.i) {
            item.name = name.to_string();
            item.name_tok = Some(self.i);
            self.i += 1;
        }
    }

    /// Scans the header until a body `{` or a terminating `;` at nesting
    /// depth zero; on `{`, records the brace-matched body. `recurse_body`
    /// is informational only — recursion happens at the caller, which owns
    /// the returned ranges.
    fn header_then_body(&mut self, item: &mut Item, end: usize, _recurse_body: bool) {
        let sig_start = item.sig.0;
        let mut depth = 0i64; // ( ) and [ ] nesting inside the header
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(')) | Some(TokenKind::Punct('[')) => depth += 1,
                Some(TokenKind::Punct(')')) | Some(TokenKind::Punct(']')) => depth -= 1,
                Some(TokenKind::Punct('{')) if depth <= 0 => {
                    item.sig = (sig_start, self.i);
                    let (bs, be) = self.skip_balanced('{', '}');
                    item.body = Some((bs, be));
                    return;
                }
                Some(TokenKind::Punct(';')) if depth <= 0 => {
                    item.sig = (sig_start, self.i);
                    self.i += 1;
                    return;
                }
                _ => {}
            }
            self.i += 1;
        }
        item.sig = (sig_start, self.i);
    }

    /// Scans a `const`/`static`/`type` item through its `;`, counting all
    /// bracket kinds so struct-literal initializers cannot end it early.
    fn until_semicolon(&mut self, item: &mut Item, end: usize) {
        let stmt_end = self.find_semicolon(end);
        item.sig = (item.sig.0, stmt_end);
        self.i = (stmt_end + 1).min(end);
    }

    /// Index of the statement-terminating `;` (all brackets balanced), or
    /// `end` if the file runs out first. Does not move the cursor.
    fn find_semicolon(&self, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = self.i;
        while j < end {
            match self.kind(j) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Punct(';')) if depth <= 0 => return j,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Skips a balanced pair starting at the current `open` token; returns
    /// the token range strictly inside the pair. If the closer is missing,
    /// consumes to the end of input.
    fn skip_balanced(&mut self, open: char, close: char) -> (usize, usize) {
        debug_assert!(self.is_punct(self.i, open));
        self.i += 1;
        let start = self.i;
        let mut depth = 1i64;
        while self.i < self.toks.len() {
            match self.kind(self.i) {
                Some(k) if k.is_punct(open) => depth += 1,
                Some(k) if k.is_punct(close) => {
                    depth -= 1;
                    if depth == 0 {
                        let inner_end = self.i;
                        self.i += 1;
                        return (start, inner_end);
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Skips a macro body group: `{...}`, `(...);` or `[...];`.
    fn skip_macro_group(&mut self) {
        match self.kind(self.i) {
            Some(TokenKind::Punct('{')) => {
                self.skip_balanced('{', '}');
            }
            Some(TokenKind::Punct('(')) => {
                self.skip_balanced('(', ')');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            }
            Some(TokenKind::Punct('[')) => {
                self.skip_balanced('[', ']');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            }
            _ => {}
        }
    }

    /// Parses the child items of a braced range, restoring the cursor.
    fn parse_range(&mut self, start: usize, end: usize, in_test: bool) -> Vec<Item> {
        let saved = self.i;
        self.i = start;
        let items = self.items(end, in_test);
        self.i = saved;
        items
    }

    /// Parses one `#[...]` / `#![...]` attribute starting at the `#`.
    fn attr(&mut self) -> Attr {
        let line = self.line(self.i);
        self.i += 1; // '#'
        let inner = self.is_punct(self.i, '!');
        if inner {
            self.i += 1;
        }
        let mut name = String::new();
        let mut args = Vec::new();
        if self.is_punct(self.i, '[') {
            let (start, end) = self.skip_balanced('[', ']');
            for j in start..end {
                if let Some(id) = self.ident(j) {
                    if name.is_empty() {
                        name = id.to_string();
                    } else {
                        args.push(id.to_string());
                    }
                }
            }
        }
        Attr {
            line,
            name,
            args,
            inner,
        }
    }

    /// Parses the `impl` header (generics, self type, optional trait) up to
    /// the body brace, then records the body range.
    fn impl_header(&mut self, item: &mut Item, end: usize) {
        let sig_start = item.sig.0;
        // Skip the generic parameter list, if any.
        if self.is_punct(self.i, '<') {
            let mut angle = 0i64;
            while self.i < end {
                match self.kind(self.i) {
                    Some(TokenKind::Punct('<')) => angle += 1,
                    Some(TokenKind::Punct('>')) => {
                        angle -= 1;
                        if angle == 0 {
                            self.i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                self.i += 1;
            }
        }
        // Collect the header: `TypeA` or `TraitA for TypeB`, until `{`.
        let mut first_path_last_ident: Option<String> = None;
        let mut second_path_last_ident: Option<String> = None;
        let mut saw_for = false;
        let mut angle = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('{')) if angle <= 0 => {
                    item.sig = (sig_start, self.i);
                    let (bs, be) = self.skip_balanced('{', '}');
                    item.body = Some((bs, be));
                    break;
                }
                Some(TokenKind::Punct('<')) => angle += 1,
                Some(TokenKind::Punct('>')) => angle -= 1,
                Some(TokenKind::Ident(id)) if angle <= 0 => {
                    if id == "for" {
                        saw_for = true;
                    } else if id == "where" {
                        // Bounds follow; the paths are already collected.
                    } else if id != "mut" && id != "dyn" {
                        let slot = if saw_for {
                            &mut second_path_last_ident
                        } else {
                            &mut first_path_last_ident
                        };
                        *slot = Some(id.clone());
                    }
                }
                _ => {}
            }
            if item.body.is_some() {
                break;
            }
            self.i += 1;
        }
        if saw_for {
            item.trait_name = first_path_last_ident;
            item.self_type = second_path_last_ident;
        } else {
            item.self_type = first_path_last_ident;
        }
    }

    /// Flattens the use tree between the cursor and `stmt_end`.
    fn use_paths(&mut self, stmt_end: usize) -> Vec<UsePath> {
        let mut out = Vec::new();
        if matches!(self.kind(self.i), Some(k) if k.is_op("::")) {
            self.i += 1; // `use ::absolute::path`
        }
        self.use_tree(Vec::new(), stmt_end, &mut out);
        self.i = stmt_end;
        out
    }

    /// One use-tree node: `seg::rest`, `{a, b}`, `*`, or a leaf.
    fn use_tree(&mut self, mut path: Vec<String>, end: usize, out: &mut Vec<UsePath>) {
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('{')) => {
                    self.i += 1;
                    loop {
                        if self.i >= end || self.is_punct(self.i, '}') {
                            self.i += 1;
                            return;
                        }
                        self.use_tree(path.clone(), end, out);
                        if self.is_punct(self.i, ',') {
                            self.i += 1;
                        }
                    }
                }
                Some(TokenKind::Punct('*')) => {
                    self.i += 1;
                    out.push(UsePath {
                        segments: path,
                        alias: None,
                        glob: true,
                    });
                    return;
                }
                Some(TokenKind::Ident(seg)) => {
                    let seg = seg.clone();
                    self.i += 1;
                    if matches!(self.kind(self.i), Some(k) if k.is_op("::")) {
                        path.push(seg);
                        self.i += 1;
                        continue;
                    }
                    let mut alias = None;
                    if self.ident(self.i) == Some("as") {
                        self.i += 1;
                        if let Some(a) = self.ident(self.i) {
                            alias = Some(a.to_string());
                            self.i += 1;
                        }
                    }
                    path.push(seg);
                    out.push(UsePath {
                        segments: path,
                        alias,
                        glob: false,
                    });
                    return;
                }
                _ => {
                    self.i += 1;
                    return;
                }
            }
        }
    }
}

fn is_test_attr(attr: &Attr) -> bool {
    attr.name == "test" || (attr.name == "cfg" && attr.args.iter().any(|a| a == "test"))
}

// ---------------------------------------------------------------------------
// Function-body statement grammar (static analysis v3).
//
// The item parser above deliberately keeps bodies as opaque token ranges;
// the lock-discipline analyses ([`crate::cfg`], [`crate::locks`]) need one
// more level of structure: statements, blocks, and the control-flow
// keywords between them. This grammar recovers exactly that and nothing
// more — expressions stay opaque ranges, closures stay embedded in their
// statement, and anything unrecognized degrades to an `Expr` statement.
// Like the item parser it is total: it cannot fail, only lose precision.
// ---------------------------------------------------------------------------

/// A brace-delimited sequence of parsed statements.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

/// One statement of a parsed function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// 1-based line the statement starts on.
    pub line: usize,
    /// Token range `[start, end)` of the whole statement, nested blocks
    /// included.
    pub range: (usize, usize),
    /// The statement's shape.
    pub kind: StmtKind,
}

/// The statement shapes the control-flow graph distinguishes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StmtKind {
    /// `let PAT = INIT;`. `name` is set for plain `let [mut] name`
    /// bindings (destructuring patterns bind nothing the lock analysis can
    /// track). When the initializer is a bare `{ ... }` block it is parsed
    /// recursively into `init_block` so bindings inside it get their own
    /// lexical scope.
    Let {
        /// The bound identifier for plain bindings.
        name: Option<String>,
        /// Token range of the initializer expression.
        init: (usize, usize),
        /// Recursively parsed initializer for `let x = { ... };`.
        init_block: Option<Block>,
    },
    /// `if COND { THEN } [else ...]`; an `else if` chain nests as a single
    /// `If` statement inside `else_block`.
    If {
        /// Token range of the condition (including `let` patterns).
        cond: (usize, usize),
        /// The `then` branch.
        then_block: Block,
        /// The `else` branch, when present.
        else_block: Option<Block>,
    },
    /// `match SCRUTINEE { ARMS }`; every arm body is a block (expression
    /// arms become single-statement blocks).
    Match {
        /// Token range of the scrutinee expression.
        scrutinee: (usize, usize),
        /// One parsed body per arm, in source order.
        arms: Vec<Block>,
    },
    /// `loop { ... }`.
    Loop {
        /// The loop body.
        body: Block,
    },
    /// `while COND { ... }` (including `while let`).
    While {
        /// Token range of the condition.
        cond: (usize, usize),
        /// The loop body.
        body: Block,
    },
    /// `for PAT in ITER { ... }`.
    For {
        /// Token range of the iterator expression (evaluated once; Rust
        /// extends its temporaries to the end of the whole loop).
        iter: (usize, usize),
        /// The loop body.
        body: Block,
    },
    /// `return [EXPR];`.
    Return,
    /// `break [LABEL] [EXPR];`.
    Break,
    /// `continue [LABEL];`.
    Continue,
    /// A bare `{ ... }` or `unsafe { ... }` block statement.
    BlockStmt {
        /// The nested block.
        body: Block,
    },
    /// Anything else: one opaque expression statement.
    Expr,
}

/// Parses the token range of a function body into its statement tree.
/// Total like the item parser: malformed input degrades to opaque
/// [`StmtKind::Expr`] statements, never an error.
pub fn parse_body(tokens: &[Token], range: (usize, usize)) -> Block {
    let mut p = BodyParser {
        toks: tokens,
        i: range.0,
    };
    p.block(range.1.min(tokens.len()))
}

struct BodyParser<'a> {
    toks: &'a [Token],
    i: usize,
}

impl<'a> BodyParser<'a> {
    fn kind(&self, at: usize) -> Option<&'a TokenKind> {
        self.toks.get(at).map(|t| &t.kind)
    }

    fn ident(&self, at: usize) -> Option<&'a str> {
        self.kind(at).and_then(|k| k.ident())
    }

    fn line(&self, at: usize) -> usize {
        self.toks.get(at).map(|t| t.line).unwrap_or(0)
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        matches!(self.kind(at), Some(k) if k.is_punct(c))
    }

    fn block(&mut self, end: usize) -> Block {
        let mut stmts = Vec::new();
        while self.i < end {
            let before = self.i;
            if let Some(s) = self.stmt(end) {
                stmts.push(s);
            }
            if self.i <= before {
                // Progress guarantee: never loop in place.
                self.i = before + 1;
            }
        }
        Block { stmts }
    }

    /// Advances past one statement, returning it (or `None` for trivia:
    /// doc comments, attributes, stray semicolons).
    fn stmt(&mut self, end: usize) -> Option<Stmt> {
        match self.kind(self.i) {
            Some(TokenKind::DocComment) => {
                self.i += 1;
                return None;
            }
            Some(k) if k.is_punct(';') => {
                self.i += 1;
                return None;
            }
            Some(k) if k.is_punct('#') => {
                // A statement attribute: skip `#[...]` and let the next
                // round parse the statement it decorates.
                self.i += 1;
                if self.is_punct(self.i, '!') {
                    self.i += 1;
                }
                if self.is_punct(self.i, '[') {
                    self.skip_balanced('[', ']', end);
                }
                return None;
            }
            _ => {}
        }
        let start = self.i;
        let line = self.line(start);
        // Loop labels: `'outer: loop { ... }`.
        if matches!(self.kind(self.i), Some(TokenKind::Lifetime(_)))
            && self.is_punct(self.i + 1, ':')
            && matches!(self.ident(self.i + 2), Some("loop" | "while" | "for"))
        {
            self.i += 2;
        }
        let kind = match self.ident(self.i) {
            Some("let") => self.let_stmt(end),
            Some("if") => self.if_stmt(end),
            Some("match") => self.match_stmt(end),
            Some("loop") => {
                self.i += 1;
                StmtKind::Loop {
                    body: self.braced_block(end),
                }
            }
            Some("while") => {
                self.i += 1;
                let cond = self.scan_until_brace(end);
                StmtKind::While {
                    cond,
                    body: self.braced_block(end),
                }
            }
            Some("for") => self.for_stmt(end),
            Some("return") => {
                self.scan_past_semicolon(end);
                StmtKind::Return
            }
            Some("break") => {
                self.scan_past_semicolon(end);
                StmtKind::Break
            }
            Some("continue") => {
                self.scan_past_semicolon(end);
                StmtKind::Continue
            }
            Some("unsafe") if self.is_punct(self.i + 1, '{') => {
                self.i += 1;
                StmtKind::BlockStmt {
                    body: self.braced_block(end),
                }
            }
            _ if self.is_punct(self.i, '{') => StmtKind::BlockStmt {
                body: self.braced_block(end),
            },
            _ => {
                self.scan_past_semicolon(end);
                StmtKind::Expr
            }
        };
        // `}`-terminated statements may carry a trailing `;`.
        if self.is_punct(self.i, ';') {
            self.i += 1;
        }
        Some(Stmt {
            line,
            range: (start, self.i),
            kind,
        })
    }

    fn let_stmt(&mut self, end: usize) -> StmtKind {
        self.i += 1; // `let`
        if self.ident(self.i) == Some("mut") {
            self.i += 1;
        }
        // A plain binding is an identifier whose next token is `=` or `:`;
        // anything else is a destructuring pattern.
        let name = match (self.ident(self.i), self.kind(self.i + 1)) {
            (Some(id), Some(k)) if k.is_punct('=') || k.is_punct(':') => Some(id.to_string()),
            _ => None,
        };
        // Find the `=` that starts the initializer. Angle brackets are
        // tracked here because we are in pattern/type position, where `<`
        // cannot be a comparison.
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[' | '{' | '<')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}' | '>')) => depth -= 1,
                Some(TokenKind::Punct('=')) if depth <= 0 => break,
                Some(TokenKind::Punct(';')) if depth <= 0 => {
                    // `let x;` — no initializer.
                    self.i += 1;
                    return StmtKind::Let {
                        name,
                        init: (self.i - 1, self.i - 1),
                        init_block: None,
                    };
                }
                _ => {}
            }
            self.i += 1;
        }
        self.i += 1; // `=`
        let init_start = self.i;
        let init_block = if self.is_punct(self.i, '{') {
            let (bs, be) = self.skip_balanced('{', '}', end);
            Some(self.sub_block(bs, be))
        } else {
            None
        };
        let init_end = self.scan_past_semicolon(end);
        StmtKind::Let {
            name,
            init: (init_start, init_end.max(init_start)),
            init_block,
        }
    }

    fn if_stmt(&mut self, end: usize) -> StmtKind {
        self.i += 1; // `if`
        let cond = self.scan_until_brace(end);
        let then_block = self.braced_block(end);
        let mut else_block = None;
        if self.ident(self.i) == Some("else") {
            self.i += 1;
            if self.ident(self.i) == Some("if") {
                // `else if`: nest the chain as a one-statement block.
                let start = self.i;
                let line = self.line(start);
                let kind = self.if_stmt(end);
                else_block = Some(Block {
                    stmts: vec![Stmt {
                        line,
                        range: (start, self.i),
                        kind,
                    }],
                });
            } else if self.is_punct(self.i, '{') {
                else_block = Some(self.braced_block(end));
            }
        }
        StmtKind::If {
            cond,
            then_block,
            else_block,
        }
    }

    fn match_stmt(&mut self, end: usize) -> StmtKind {
        self.i += 1; // `match`
        let scrutinee = self.scan_until_brace(end);
        let mut arms = Vec::new();
        if self.is_punct(self.i, '{') {
            let (bs, be) = self.skip_balanced('{', '}', end);
            let saved = self.i;
            self.i = bs;
            while self.i < be {
                let before = self.i;
                if let Some(arm) = self.match_arm(be) {
                    arms.push(arm);
                }
                if self.i <= before {
                    self.i = before + 1;
                }
            }
            self.i = saved;
        }
        StmtKind::Match { scrutinee, arms }
    }

    /// One `PAT => BODY,` arm; the body becomes a block either way.
    fn match_arm(&mut self, end: usize) -> Option<Block> {
        // Trivia before the pattern.
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::DocComment) => self.i += 1,
                Some(k) if k.is_punct('#') => {
                    self.i += 1;
                    if self.is_punct(self.i, '[') {
                        self.skip_balanced('[', ']', end);
                    }
                }
                Some(k) if k.is_punct(',') => self.i += 1,
                _ => break,
            }
        }
        if self.i >= end {
            return None;
        }
        // Pattern (including any `if` guard) up to `=>`.
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Op("=>")) if depth <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        if self.i >= end {
            return None;
        }
        self.i += 1; // `=>`
        if self.is_punct(self.i, '{') {
            let (bs, be) = self.skip_balanced('{', '}', end);
            return Some(self.sub_block(bs, be));
        }
        // Expression arm: runs to the `,` at depth zero (or the end).
        let arm_start = self.i;
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Punct(',')) if depth <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        Some(self.sub_block(arm_start, self.i))
    }

    fn for_stmt(&mut self, end: usize) -> StmtKind {
        self.i += 1; // `for`
                     // Pattern up to `in` at depth zero.
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Ident(id)) if id == "in" && depth <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        self.i += 1; // `in`
        let iter = self.scan_until_brace(end);
        StmtKind::For {
            iter,
            body: self.braced_block(end),
        }
    }

    /// Scans to the next `{` at depth zero, returning the tokens before it
    /// (a condition, scrutinee, or iterator expression).
    fn scan_until_brace(&mut self, end: usize) -> (usize, usize) {
        let start = self.i;
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[')) => depth += 1,
                Some(TokenKind::Punct(')' | ']')) => depth -= 1,
                Some(TokenKind::Punct('{')) if depth <= 0 => break,
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }

    /// Parses the `{ ... }` at the cursor into a block (empty if absent).
    fn braced_block(&mut self, end: usize) -> Block {
        if !self.is_punct(self.i, '{') {
            return Block::default();
        }
        let (bs, be) = self.skip_balanced('{', '}', end);
        self.sub_block(bs, be)
    }

    /// Parses a sub-range as a block, restoring the cursor.
    fn sub_block(&mut self, start: usize, end: usize) -> Block {
        let saved = self.i;
        self.i = start;
        let b = self.block(end);
        self.i = saved;
        b
    }

    /// Advances past the statement-terminating `;` at depth zero (or to
    /// `end`), counting every bracket kind so block expressions, closures
    /// and struct literals stay inside the statement. Returns the index of
    /// the `;` itself (or `end`), i.e. the exclusive end of the expression.
    fn scan_past_semicolon(&mut self, end: usize) -> usize {
        let mut depth = 0i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(TokenKind::Punct('(' | '[' | '{')) => depth += 1,
                Some(TokenKind::Punct(')' | ']' | '}')) => depth -= 1,
                Some(TokenKind::Punct(';')) if depth <= 0 => {
                    let at = self.i;
                    self.i += 1;
                    return at;
                }
                _ => {}
            }
            self.i += 1;
        }
        end
    }

    /// Skips a balanced pair at the cursor, returning the inner range.
    fn skip_balanced(&mut self, open: char, close: char, end: usize) -> (usize, usize) {
        debug_assert!(self.is_punct(self.i, open));
        self.i += 1;
        let start = self.i;
        let mut depth = 1i64;
        while self.i < end {
            match self.kind(self.i) {
                Some(k) if k.is_punct(open) => depth += 1,
                Some(k) if k.is_punct(close) => {
                    depth -= 1;
                    if depth == 0 {
                        let inner_end = self.i;
                        self.i += 1;
                        return (start, inner_end);
                    }
                }
                _ => {}
            }
            self.i += 1;
        }
        (start, self.i)
    }
}

/// Renders a token range back to deterministic, compact source text.
///
/// The output is a pure function of the tokens: one canonical spacing, no
/// comments, lifetimes and literals preserved. Used for API-surface
/// baselines, where byte-stability matters more than prettiness.
pub fn render(tokens: &[Token], range: (usize, usize)) -> String {
    let mut out = String::new();
    let mut prev: Option<&TokenKind> = None;
    for tok in tokens.get(range.0..range.1).unwrap_or(&[]) {
        let piece: String = match &tok.kind {
            TokenKind::Ident(s) => s.clone(),
            TokenKind::Punct(c) => c.to_string(),
            TokenKind::Op(o) => (*o).to_string(),
            TokenKind::Lit(s) | TokenKind::FloatLit(s) => s.clone(),
            TokenKind::Lifetime(s) => format!("'{s}"),
            TokenKind::DocComment => continue,
        };
        if let Some(p) = prev {
            if needs_space(p, &tok.kind) {
                out.push(' ');
            }
        }
        out.push_str(&piece);
        prev = Some(&tok.kind);
    }
    out
}

/// Canonical spacing between two adjacent rendered tokens.
fn needs_space(prev: &TokenKind, next: &TokenKind) -> bool {
    // No space after openers, path separators, or reference/attr markers.
    match prev {
        TokenKind::Punct('(' | '[' | '<' | '&' | '#' | '!' | '.') => return false,
        TokenKind::Op("::") => return false,
        // Other operators (`->`, `=`, `+`) always take a trailing space,
        // even before an opener: `-> [u8; 4]`.
        TokenKind::Op(_) => return true,
        _ => {}
    }
    // No space before closers, separators, or argument lists.
    match next {
        TokenKind::Punct(')' | ']' | '>' | ',' | ';' | ':' | '(' | '[' | '<' | '?' | '!' | '.') => {
            false
        }
        TokenKind::Op("::") => false,
        // `&'a`, `<'a` read better unspaced after their opener (handled
        // above); between words a lifetime gets a space like any ident.
        _ => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).tokens)
    }

    #[test]
    fn parses_top_level_items() {
        let ast = parse_src(
            "//! file docs\n\
             use std::fmt;\n\
             /// Docs.\n\
             pub struct S { x: u64 }\n\
             pub(crate) enum E { A, B }\n\
             const N: usize = 4;\n\
             pub fn f(x: u64) -> u64 { x + 1 }\n",
        );
        let kinds: Vec<ItemKind> = ast.items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            vec![
                ItemKind::Use,
                ItemKind::Struct,
                ItemKind::Enum,
                ItemKind::Const,
                ItemKind::Fn
            ]
        );
        assert_eq!(ast.items[1].name, "S");
        assert!(ast.items[1].has_doc);
        assert!(ast.items[1].is_pub());
        assert_eq!(ast.items[2].vis, Visibility::Restricted);
        assert_eq!(ast.items[3].vis, Visibility::Private);
        assert_eq!(ast.items[4].name, "f");
        assert!(ast.items[4].body.is_some());
    }

    #[test]
    fn flattens_use_trees() {
        let ast = parse_src("use a::b::{c, d::e, f as g, *};\n");
        let paths: Vec<Vec<String>> = ast.items[0]
            .uses
            .iter()
            .map(|u| u.segments.clone())
            .collect();
        assert_eq!(
            paths,
            vec![
                vec!["a", "b", "c"],
                vec!["a", "b", "d", "e"],
                vec!["a", "b", "f"],
                vec!["a", "b"],
            ]
        );
        assert_eq!(ast.items[0].uses[2].alias.as_deref(), Some("g"));
        assert!(ast.items[0].uses[3].glob);
    }

    #[test]
    fn impl_blocks_expose_self_type_and_children() {
        let ast = parse_src(
            "impl<T: Clone> Wrapper<T> {\n\
                 pub fn get(&self) -> &T { &self.0 }\n\
                 fn private(&self) {}\n\
             }\n\
             impl std::fmt::Display for Wrapper<u64> {\n\
                 fn fmt(&self) {}\n\
             }\n",
        );
        assert_eq!(ast.items[0].self_type.as_deref(), Some("Wrapper"));
        assert_eq!(ast.items[0].children.len(), 2);
        assert_eq!(ast.items[0].children[0].name, "get");
        assert!(ast.items[0].children[0].is_pub());
        assert_eq!(ast.items[1].trait_name.as_deref(), Some("Display"));
        assert_eq!(ast.items[1].self_type.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn nested_mods_and_test_scoping() {
        let ast = parse_src(
            "pub mod outer {\n\
                 pub fn exported() {}\n\
                 #[cfg(test)]\n\
                 mod tests {\n\
                     #[test]\n\
                     fn check() {}\n\
                 }\n\
             }\n",
        );
        let outer = &ast.items[0];
        assert_eq!(outer.kind, ItemKind::Mod);
        assert!(!outer.children[0].in_test);
        assert!(outer.children[1].in_test);
        assert!(outer.children[1].children[0].in_test);
    }

    #[test]
    fn fn_signature_range_excludes_body() {
        let src = "pub fn f<T>(items: &[T], n: usize) -> Vec<T> where T: Clone { unreachable() }";
        let toks = lex(src).tokens;
        let ast = parse(&toks);
        let item = &ast.items[0];
        let sig = render(&toks, item.sig);
        assert_eq!(
            sig,
            "fn f<T>(items: &[T], n: usize) -> Vec<T> where T: Clone"
        );
        let (bs, be) = item.body.unwrap();
        assert_eq!(render(&toks, (bs, be)), "unreachable()");
    }

    #[test]
    fn render_preserves_lifetimes_and_literals() {
        let src = "fn f<'a>(x: &'a str) -> [u8; 4] {}";
        let toks = lex(src).tokens;
        let ast = parse(&toks);
        assert_eq!(
            render(&toks, ast.items[0].sig),
            "fn f<'a>(x: &'a str) -> [u8; 4]"
        );
    }

    #[test]
    fn const_with_struct_literal_initializer() {
        let ast = parse_src(
            "pub const DEFAULT: Config = Config { threads: 1, strict: true };\npub fn after() {}",
        );
        assert_eq!(ast.items[0].kind, ItemKind::Const);
        assert_eq!(ast.items[0].name, "DEFAULT");
        assert_eq!(ast.items[1].name, "after");
    }

    #[test]
    fn tuple_struct_and_unit_struct() {
        let ast = parse_src("pub struct Wrap(pub u64);\npub struct Unit;\n");
        assert_eq!(ast.items[0].name, "Wrap");
        assert_eq!(ast.items[1].name, "Unit");
        assert_eq!(ast.items.len(), 2);
    }

    #[test]
    fn trait_with_method_declarations() {
        let ast = parse_src(
            "pub trait Rng {\n\
                 fn next_u64(&mut self) -> u64;\n\
                 fn gen_range(&mut self, r: Range<u64>) -> u64 { 0 }\n\
             }\n",
        );
        let t = &ast.items[0];
        assert_eq!(t.kind, ItemKind::Trait);
        assert_eq!(t.children.len(), 2);
        assert!(t.children[0].body.is_none());
        assert!(t.children[1].body.is_some());
    }

    #[test]
    fn attributes_are_recorded() {
        let ast = parse_src(
            "#[allow(clippy::too_many_arguments)]\n#[derive(Debug, Clone)]\npub fn f() {}\n",
        );
        let item = &ast.items[0];
        assert!(item.has_attr("allow"));
        assert!(item.has_attr("derive"));
        assert_eq!(item.attrs[0].args, vec!["clippy", "too_many_arguments"]);
    }

    #[test]
    fn deprecated_attr_is_visible() {
        let ast =
            parse_src("#[deprecated(since = \"0.2.0\", note = \"use X\")]\npub fn old() {}\n");
        assert!(ast.items[0].has_attr("deprecated"));
    }

    #[test]
    fn item_macro_invocations_are_skipped() {
        let ast = parse_src("macro_call! { fn not_an_item() {} }\npub fn real() {}\n");
        assert_eq!(ast.items.len(), 1);
        assert_eq!(ast.items[0].name, "real");
    }

    #[test]
    fn malformed_input_terminates() {
        // Unbalanced braces, stray punctuation, truncated items: the parser
        // must always terminate and never panic.
        for src in [
            "pub fn f(",
            "impl {",
            "use ;",
            "}}}{{{",
            "pub",
            "#[",
            "const",
            "pub struct",
            "macro_rules!",
        ] {
            let _ = parse_src(src);
        }
    }

    #[test]
    fn unsafe_fn_is_marked() {
        let ast = parse_src("pub unsafe fn danger() {}\n");
        assert!(ast.items[0].is_unsafe);
        assert_eq!(ast.items[0].kind, ItemKind::Fn);
    }

    fn body_of(src: &str) -> (Vec<Token>, Block) {
        let toks = lex(src).tokens;
        let ast = parse(&toks);
        let body = ast.items[0].body.expect("fn has a body");
        let block = parse_body(&toks, body);
        (toks, block)
    }

    #[test]
    fn body_let_bindings_and_shapes() {
        let (toks, b) = body_of(
            "fn f() {\n\
                 let mut g = m.lock().unwrap();\n\
                 let (a, b) = pair();\n\
                 let scoped = { inner(); 4 };\n\
                 g.push(1);\n\
             }",
        );
        assert_eq!(b.stmts.len(), 4);
        match &b.stmts[0].kind {
            StmtKind::Let {
                name,
                init,
                init_block,
            } => {
                assert_eq!(name.as_deref(), Some("g"));
                assert!(init_block.is_none());
                assert_eq!(render(&toks, *init), "m.lock().unwrap()");
            }
            k => panic!("expected let, got {k:?}"),
        }
        match &b.stmts[1].kind {
            StmtKind::Let { name, .. } => assert_eq!(*name, None),
            k => panic!("expected let, got {k:?}"),
        }
        match &b.stmts[2].kind {
            StmtKind::Let {
                name, init_block, ..
            } => {
                assert_eq!(name.as_deref(), Some("scoped"));
                assert_eq!(init_block.as_ref().map(|ib| ib.stmts.len()), Some(2));
            }
            k => panic!("expected let with block init, got {k:?}"),
        }
        assert_eq!(b.stmts[3].kind, StmtKind::Expr);
        assert_eq!(b.stmts[3].line, 5);
    }

    #[test]
    fn body_if_else_chain_nests() {
        let (toks, b) = body_of(
            "fn f(x: u8) {\n\
                 if x == 0 { zero(); } else if x == 1 { one(); } else { many(); }\n\
             }",
        );
        let StmtKind::If {
            cond,
            then_block,
            else_block,
        } = &b.stmts[0].kind
        else {
            panic!("expected if");
        };
        assert_eq!(render(&toks, *cond), "x == 0");
        assert_eq!(then_block.stmts.len(), 1);
        let chain = else_block.as_ref().expect("else present");
        let StmtKind::If { else_block, .. } = &chain.stmts[0].kind else {
            panic!("else-if nests as an If statement");
        };
        assert!(else_block.is_some());
    }

    #[test]
    fn body_match_arms_become_blocks() {
        let (_, b) = body_of(
            "fn f(x: Option<u8>) {\n\
                 match x {\n\
                     Some(0) | None => {}\n\
                     Some(n) if n > 3 => big(n),\n\
                     Some(_) => return,\n\
                 }\n\
             }",
        );
        let StmtKind::Match { arms, .. } = &b.stmts[0].kind else {
            panic!("expected match");
        };
        assert_eq!(arms.len(), 3);
        assert!(arms[0].stmts.is_empty());
        assert_eq!(arms[1].stmts.len(), 1);
        assert_eq!(arms[2].stmts[0].kind, StmtKind::Return);
    }

    #[test]
    fn body_loops_and_labels() {
        let (toks, b) = body_of(
            "fn f() {\n\
                 'outer: loop { break 'outer; }\n\
                 while x < 4 { x += 1; }\n\
                 for conn in conns.drain(..) { close(conn); }\n\
             }",
        );
        let StmtKind::Loop { body } = &b.stmts[0].kind else {
            panic!("expected loop");
        };
        assert_eq!(body.stmts[0].kind, StmtKind::Break);
        let StmtKind::While { cond, body } = &b.stmts[1].kind else {
            panic!("expected while");
        };
        assert_eq!(render(&toks, *cond), "x<4");
        assert_eq!(body.stmts.len(), 1);
        let StmtKind::For { iter, body } = &b.stmts[2].kind else {
            panic!("expected for");
        };
        assert_eq!(render(&toks, *iter), "conns.drain(.. )");
        assert_eq!(body.stmts.len(), 1);
    }

    #[test]
    fn body_closures_stay_inside_their_statement() {
        let (_, b) = body_of(
            "fn f() {\n\
                 pool.submit(move || { job(); done(); }).unwrap();\n\
                 after();\n\
             }",
        );
        // The closure's inner statements must not leak out as siblings.
        assert_eq!(b.stmts.len(), 2);
        assert_eq!(b.stmts[0].kind, StmtKind::Expr);
    }

    #[test]
    fn body_parser_survives_malformed_input() {
        for src in [
            "fn f() { let = ; }",
            "fn f() { if { } }",
            "fn f() { match }",
            "fn f() { for in { } }",
            "fn f() { { { }",
            "fn f() { 'a: }",
        ] {
            let toks = lex(src).tokens;
            let ast = parse(&toks);
            if let Some(body) = ast.items.first().and_then(|i| i.body) {
                let _ = parse_body(&toks, body);
            }
        }
    }
}
