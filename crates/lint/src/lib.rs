//! `mocktails-lint` — the workspace's dependency-free static-analysis
//! gate.
//!
//! A reproduction of a memory-behaviour paper lives or dies on two
//! properties: *determinism* (every fit/synthesize run must replay
//! bit-identically from a seed) and *hermeticity* (the workspace must
//! build offline, forever, with no registry access). Both are invariants
//! the type system cannot see, so this crate enforces them the way a
//! compiler would: a hand-rolled lexer ([`lexer`]) turns every source
//! file into a token skeleton, an item parser ([`parser`]) recovers the
//! AST the cross-file analyses need, a rule engine ([`rules`]) walks each
//! file, and a workspace symbol graph ([`graph`]) runs the cross-file
//! rules.
//!
//! The rules:
//!
//! * **L001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test library code.
//! * **L002** — no external-crate imports; the dependency graph is std +
//!   path-only workspace members, which is what keeps offline builds
//!   possible.
//! * **L003** — every `pub` item in the foundational crates (`core`,
//!   `trace`, `dram`, `cache`) carries a doc comment.
//! * **L004** — no float-literal `==`/`!=` in model/similarity code.
//! * **L005** — no `SystemTime`/`Instant` on the synthesis path; model
//!   time comes from the fitted profile, never the wall clock.
//! * **L006** — no `io::Error::{new,other,from}` construction outside
//!   `fault.rs`; codec paths propagate real faults, never forge them.
//! * **L007** — no `std::thread`/`std::net` outside `crates/pool` and
//!   `crates/serve`; all parallelism goes through
//!   `mocktails_pool::Parallelism`, whose fixed work partitioning keeps
//!   results bit-identical at any thread count, and all networking stays
//!   behind the serving layer.
//! * **L008** — determinism taint: no `HashMap`/`HashSet` iteration or
//!   `env::var` on the fit/synthesize/codec path, nor any transitive call
//!   into a function that does; the seeded-PRNG modules are the only
//!   sanctioned randomness.
//! * **L009** — no dead `pub` surface: every exported item is referenced
//!   somewhere else in the workspace (code or cross-crate import).
//! * **L010** — public-API snapshots: each crate's exported surface is
//!   pinned in `crates/lint/baselines/<crate>.api`; undeclared drift
//!   fails the gate (`scripts/update-api-baselines.sh` declares it).
//! * **L011** — escape-hatch audit: every `unsafe` and blanket
//!   `#[allow(...)]` carries a reasoned `// lint: allow(L011, ...)`
//!   companion.
//! * **L012** — lock-order cycles: two code paths that acquire the same
//!   locks in opposite orders are a potential deadlock; the diagnostic
//!   lists every acquisition edge of the cycle with its `file:line`.
//! * **L013** — no blocking call (I/O, channel `recv`, `thread::sleep`,
//!   `WorkerPool::submit`/`join`/`drain`) while holding a lock guard,
//!   directly or through any name-resolved call chain.
//! * **L014** — no guard held across a loop back-edge on the
//!   streaming/synthesis crates; collect under the lock, release, then
//!   iterate.
//! * **L015** — no `.unwrap()`/`.expect(..)` directly on a
//!   `lock()`/`read()`/`write()` result; recover poisoned locks with
//!   `unwrap_or_else(PoisonError::into_inner)`.
//! * **L016** — panic-reachability: no panic source (unwrap/expect,
//!   panic-family macros, non-constant indexing, division by a
//!   non-constant divisor) reachable from `Synthesizer::next`, the codec
//!   decode paths, or the reactor sweep loop; findings carry the full
//!   `file:line → file:line` call chain.
//! * **L017** — reactor-blocking: no blocking effect reachable from the
//!   reactor sweep loop except the allowlisted nonblocking-socket
//!   helpers and the `WakeFlag` idle park.
//! * **L018** — hot-loop allocation: no allocation effect (direct or
//!   via a resolved call) inside a loop on the synthesis/codec hot path.
//! * **L019** — unbounded growth: no `self`-rooted collection growth in
//!   the serve crate without same-file cap/evict/truncate evidence.
//!
//! L012–L014 are body-level: [`cfg`] lowers every non-test function into
//! a control-flow graph, [`dataflow`] runs a guard-region analysis over
//! it, and the lock pass combines both with the symbol graph's call
//! edges. L016–L019 are interprocedural: a bottom-up pass over
//! call-graph SCCs computes per-function panic/blocking/allocation
//! effect summaries, parallelized per-SCC with deterministic merging.
//!
//! Escape hatch: `// lint: allow(L001, reason)` on the violating line or
//! the line above. The reason is mandatory and is itself reviewed. Rule
//! lists and ranges (`allow(L012-L014, reason)`) and a file-scoped form
//! (`// lint: allow-file(L013, reason)`) are accepted.
//!
//! The binary exits 0 on a clean tree, 1 on violations, 2 on I/O errors:
//!
//! ```text
//! cargo run -p mocktails-lint -- crates/
//! cargo run -p mocktails-lint -- --format json crates/
//! ```

pub mod cfg;
pub mod dataflow;
mod effects;
pub mod explain;
pub mod graph;
pub mod lexer;
mod locks;
pub mod parser;
pub mod report;
pub mod rules;
pub mod walk;

pub use report::Report;
pub use rules::{lint_source, Diagnostic};

use std::collections::BTreeSet;
use std::io;
use std::path::{Path, PathBuf};

use mocktails_pool::Parallelism;

use graph::{CrossFileOptions, FileRole};

/// Options for a full workspace run.
#[derive(Debug)]
pub struct RunOptions {
    /// Thread configuration for the per-file analysis. Work is split into
    /// fixed contiguous chunks and merged in submission order, so the
    /// report is byte-identical at any thread count.
    pub parallelism: Parallelism,
    /// When true, L010 rewrites the API baselines instead of diffing them.
    pub update_baselines: bool,
    /// When set, only diagnostics of these rules are reported.
    pub rules: Option<BTreeSet<String>>,
    /// Where the `<crate>.api` baselines live; defaults to
    /// `<crates_root>/lint/baselines`.
    pub baselines_dir: Option<PathBuf>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            parallelism: Parallelism::current(),
            update_baselines: false,
            rules: None,
            baselines_dir: None,
        }
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `crates_root` with the
/// process-wide parallelism and default options.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn run(crates_root: &Path) -> io::Result<Report> {
    run_with(crates_root, &RunOptions::default())
}

/// Lints the workspace under `crates_root` with explicit options.
///
/// The per-file stage (lex, parse, per-file rules, CFG lowering) runs on
/// the configured [`Parallelism`]; the cross-file stage (L008 taint,
/// L009, L010, the L012–L014 lock pass) is a pure sequential function of
/// the per-file results. Both stages are
/// deterministic, so the returned report is byte-identical across runs
/// and thread counts.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree, and from
/// reading (or, in update mode, writing) the API baselines.
pub fn run_with(crates_root: &Path, options: &RunOptions) -> io::Result<Report> {
    let mut inputs: Vec<(PathBuf, String, FileRole)> = Vec::new();
    for path in walk::workspace_files(crates_root)? {
        let src = std::fs::read_to_string(&path)?;
        inputs.push((path, src, FileRole::Lint));
    }
    for path in walk::reference_files(crates_root)? {
        let src = std::fs::read_to_string(&path)?;
        inputs.push((path, src, FileRole::Reference));
    }

    // Body-level analysis (CFG lowering + the lock and effects passes)
    // only pays for itself when one of L012–L014 or L016–L019 is
    // actually requested; a `--rules` run restricted to the v2 rule set
    // costs v2 time.
    let lock_rules = options
        .rules
        .as_ref()
        .is_none_or(|r| ["L012", "L013", "L014"].iter().any(|x| r.contains(*x)));
    let effect_rules = options.rules.as_ref().is_none_or(|r| {
        ["L016", "L017", "L018", "L019"]
            .iter()
            .any(|x| r.contains(*x))
    });
    let body_rules = lock_rules || effect_rules;

    let analyses = options.parallelism.map(&inputs, |(path, src, role)| {
        graph::analyze_source_opts(path, src, *role, body_rules)
    });

    let files_checked = analyses.iter().filter(|a| a.role == FileRole::Lint).count();
    let mut diagnostics: Vec<Diagnostic> = analyses
        .iter()
        .flat_map(|a| a.diagnostics.iter().cloned())
        .collect();

    let default_dir = crates_root.join("lint").join("baselines");
    let baselines_dir = options.baselines_dir.as_deref().unwrap_or(&default_dir);
    diagnostics.extend(graph::cross_file(
        &analyses,
        &CrossFileOptions {
            baselines_dir,
            update_baselines: options.update_baselines,
            lock_rules,
            effect_rules,
            parallelism: options.parallelism,
        },
    )?);

    if let Some(filter) = &options.rules {
        diagnostics.retain(|d| filter.contains(d.rule));
    }
    diagnostics.sort();
    diagnostics.dedup();
    Ok(Report {
        diagnostics,
        files_checked,
    })
}
