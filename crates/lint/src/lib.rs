//! `mocktails-lint` — the workspace's dependency-free static-analysis
//! gate.
//!
//! A reproduction of a memory-behaviour paper lives or dies on two
//! properties: *determinism* (every fit/synthesize run must replay
//! bit-identically from a seed) and *hermeticity* (the workspace must
//! build offline, forever, with no registry access). Both are invariants
//! the type system cannot see, so this crate enforces them the way a
//! compiler would: a hand-rolled lexer ([`lexer`]) turns every source
//! file into a token skeleton, and a rule engine ([`rules`]) walks it.
//!
//! The rules:
//!
//! * **L001** — no `unwrap()`/`expect()`/`panic!`/`todo!`/
//!   `unimplemented!` in non-test library code.
//! * **L002** — no external-crate imports; the dependency graph is std +
//!   path-only workspace members, which is what keeps offline builds
//!   possible.
//! * **L003** — every `pub` item in the foundational crates (`core`,
//!   `trace`, `dram`, `cache`) carries a doc comment.
//! * **L004** — no float-literal `==`/`!=` in model/similarity code.
//! * **L005** — no `SystemTime`/`Instant` on the synthesis path; model
//!   time comes from the fitted profile, never the wall clock.
//! * **L006** — no `io::Error::{new,other,from}` construction outside
//!   `fault.rs`; codec paths propagate real faults, never forge them.
//! * **L007** — no `std::thread` outside `crates/pool`; all parallelism
//!   goes through `mocktails_pool::Parallelism`, whose fixed work
//!   partitioning keeps results bit-identical at any thread count.
//!
//! Escape hatch: `// lint: allow(L001, reason)` on the violating line or
//! the line above. The reason is mandatory and is itself reviewed.
//!
//! The binary exits 0 on a clean tree, 1 on violations, 2 on I/O errors:
//!
//! ```text
//! cargo run -p mocktails-lint -- crates/
//! ```

pub mod lexer;
pub mod rules;
pub mod walk;

pub use rules::{lint_source, Diagnostic};

use std::io;
use std::path::Path;

/// The outcome of linting a source tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// All violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// How many files were checked.
    pub files_checked: usize,
}

impl Report {
    /// True when no rule fired.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

impl std::fmt::Display for Report {
    /// Renders one `file:line: [RULE] message` line per diagnostic. The
    /// rendering is a pure function of the sorted diagnostics, so equal
    /// reports are byte-identical — the determinism tests rely on this.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

/// Lints every `crates/*/src/**/*.rs` file under `crates_root`.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn run(crates_root: &Path) -> io::Result<Report> {
    let files = walk::workspace_files(crates_root)?;
    let mut diagnostics = Vec::new();
    let files_checked = files.len();
    for file in files {
        let src = std::fs::read_to_string(&file)?;
        diagnostics.extend(rules::lint_source(&file, &src));
    }
    diagnostics.sort();
    Ok(Report {
        diagnostics,
        files_checked,
    })
}
