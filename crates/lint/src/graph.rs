//! The workspace-wide symbol graph and the cross-file analyses.
//!
//! Per-file rules see one token stream at a time; the properties this
//! module checks only exist at workspace scope:
//!
//! * **L008 (transitive)** — determinism taint. A function whose body
//!   contains a direct nondeterminism site ([`crate::rules`] finds those)
//!   taints every transitive caller on the fit/synthesize/codec path. The
//!   call graph is name-resolved conservatively: `Type::method` calls bind
//!   to that type's impl, bare calls prefer the defining file and
//!   otherwise require a unique workspace definition, and `.method(...)`
//!   calls bind only when exactly one impl defines the name — ambiguity
//!   never produces an edge, so taint spreads through real call chains
//!   only.
//! * **L009** — dead `pub` surface: a `pub` item nothing references
//!   outside its own definition — in any file, including its own
//!   (same-crate `pub use` re-exports do not count as references — a
//!   re-export of a dead item is just a dead re-export).
//! * **L010** — public-API snapshots: each crate's exported surface is
//!   rendered to a sorted, deterministic `.api` file and diffed against
//!   the checked-in baseline under `crates/lint/baselines/`; undeclared
//!   additions and removals fail the gate until the baseline is
//!   regenerated (`scripts/update-api-baselines.sh`).
//!
//! Everything here is a pure function of the analyzed files, so reports
//! are byte-identical across runs and thread counts.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::path::Path;

use mocktails_pool::Parallelism;

use crate::cfg::FnCfg;
use crate::lexer::{lex, Directive, Token, TokenKind};
use crate::parser::{self, Ast, Item, ItemKind, Visibility};
use crate::rules::{self, Diagnostic, L008Site};

/// How a file participates in the analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileRole {
    /// A `crates/*/src` file: linted by every rule and part of the API
    /// surface.
    Lint,
    /// A test, example or root-crate file: lexed and parsed only as a
    /// reference source, so that items used solely by tests are not dead.
    Reference,
}

/// One analyzed source file: tokens, AST, per-file diagnostics and the
/// data the cross-file passes need.
#[derive(Debug)]
pub struct FileAnalysis {
    /// The file path, `/`-normalized, as given to the linter.
    pub path: String,
    /// How the file participates.
    pub role: FileRole,
    /// The `crates/<name>/` the file belongs to, or `""` outside `crates/`.
    pub crate_name: String,
    /// True for binary targets (`main.rs`, `src/bin/`).
    pub is_bin: bool,
    /// The token skeleton.
    pub tokens: Vec<Token>,
    /// `// lint: allow` directives by line.
    pub directives: BTreeMap<usize, Vec<Directive>>,
    /// File-scoped `// lint: allow-file` directives.
    pub file_directives: Vec<Directive>,
    /// The item AST.
    pub ast: Ast,
    /// Per-token test-scope flags.
    pub in_test: Vec<bool>,
    /// Per-file diagnostics (L001–L008 direct, L011, L015),
    /// directive-filtered.
    pub diagnostics: Vec<Diagnostic>,
    /// Surviving (unsuppressed) L008 direct sites, for taint seeding.
    pub l008_sites: Vec<L008Site>,
    /// Per-function control-flow graphs for the body-level lock rules;
    /// empty for reference files and when body analysis is disabled.
    pub fn_cfgs: Vec<FnCfg>,
}

/// Lexes, parses and per-file-lints one source file, with body-level
/// (CFG) analysis enabled.
pub fn analyze_source(path: &Path, src: &str, role: FileRole) -> FileAnalysis {
    analyze_source_opts(path, src, role, true)
}

/// Like [`analyze_source`], but `body_analysis: false` skips control-flow
/// graph construction, leaving [`FileAnalysis::fn_cfgs`] empty — the lint
/// CLI uses this when a `--rules` filter excludes every body-level rule
/// (L012–L014), so a signature-only run costs what it did before those
/// rules existed.
pub fn analyze_source_opts(
    path: &Path,
    src: &str,
    role: FileRole,
    body_analysis: bool,
) -> FileAnalysis {
    let lexed = lex(src);
    let ast = parser::parse(&lexed.tokens);
    let in_test = rules::test_flags(&lexed.tokens);
    let norm = path.to_string_lossy().replace('\\', "/");
    let scope = rules::Scope::of(path);

    let mut diagnostics = Vec::new();
    let mut l008_sites = Vec::new();
    if role == FileRole::Lint {
        diagnostics = rules::file_diagnostics(path, &lexed);
        rules::apply_directives(&mut diagnostics, &lexed.directives, &lexed.file_directives);
        diagnostics.sort();
        if scope.wants_determinism() {
            l008_sites = rules::l008_sites(&lexed.tokens, &in_test)
                .into_iter()
                .filter(|s| !suppressed(&lexed.directives, &lexed.file_directives, s.line, "L008"))
                .collect();
        }
    }

    let fn_cfgs = if role == FileRole::Lint && body_analysis {
        crate::cfg::build_fn_cfgs(&lexed.tokens, &ast)
    } else {
        Vec::new()
    };

    FileAnalysis {
        crate_name: crate_of(&norm),
        is_bin: norm.ends_with("/main.rs") || norm == "main.rs" || norm.contains("/src/bin/"),
        path: norm,
        role,
        tokens: lexed.tokens,
        directives: lexed.directives,
        file_directives: lexed.file_directives,
        ast,
        in_test,
        diagnostics,
        l008_sites,
        fn_cfgs,
    }
}

/// Options for the cross-file pass.
#[derive(Debug)]
pub struct CrossFileOptions<'a> {
    /// Where the `<crate>.api` baselines live.
    pub baselines_dir: &'a Path,
    /// When true, L010 rewrites the baselines instead of diffing them.
    pub update_baselines: bool,
    /// When true, runs the lock-discipline rules (L012–L014) over the
    /// per-function CFGs; pointless without body analysis in
    /// [`analyze_source_opts`].
    pub lock_rules: bool,
    /// When true, runs the effect-summary rules (L016–L019); like the
    /// lock rules, these need body analysis.
    pub effect_rules: bool,
    /// Thread configuration for the per-SCC effect-summary stage. The
    /// merge is in submission order, so the report stays byte-identical
    /// at any thread count.
    pub parallelism: Parallelism,
}

/// Runs the cross-file analyses (L008 transitive, L009, L010, and the
/// L012–L014 lock discipline) over the analyzed workspace. Returned
/// diagnostics are directive-filtered and sorted.
///
/// # Errors
///
/// Propagates I/O errors from reading or (in update mode) writing the API
/// baseline files.
pub fn cross_file(
    files: &[FileAnalysis],
    opts: &CrossFileOptions<'_>,
) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    diags.extend(taint_analysis(files));
    diags.extend(dead_pub_surface(files));
    diags.extend(api_snapshots(files, opts)?);
    if opts.lock_rules {
        diags.extend(crate::locks::lock_analysis(files));
    }
    if opts.effect_rules {
        diags.extend(crate::effects::effects_analysis(files, opts.parallelism));
    }

    // Cross-file diagnostics honor the same `// lint: allow` directives at
    // the line they point at.
    let directives: BTreeMap<&str, &FileAnalysis> =
        files.iter().map(|f| (f.path.as_str(), f)).collect();
    diags.retain(|d| {
        directives
            .get(d.file.as_str())
            .map(|f| !suppressed(&f.directives, &f.file_directives, d.line, d.rule))
            .unwrap_or(true)
    });
    diags.sort();
    Ok(diags)
}

fn suppressed(
    directives: &BTreeMap<usize, Vec<Directive>>,
    file_directives: &[Directive],
    line: usize,
    rule: &str,
) -> bool {
    if file_directives.iter().any(|dir| dir.covers(rule)) {
        return true;
    }
    [line, line.saturating_sub(1)].iter().any(|l| {
        directives
            .get(l)
            .map(|ds| ds.iter().any(|dir| dir.covers(rule)))
            .unwrap_or(false)
    })
}

/// The `crates/<name>/` a normalized path belongs to.
fn crate_of(path: &str) -> String {
    match path.split_once("crates/") {
        Some((_, rest)) => rest.split('/').next().unwrap_or("").to_string(),
        None => String::new(),
    }
}

// ---------------------------------------------------------------------------
// Shared conservative call resolution
// ---------------------------------------------------------------------------

/// Conservative name resolution over a workspace function table, shared by
/// every interprocedural pass (L008 taint, L012–L014 locks, L016–L019
/// effects) so the rules agree on what the call graph is.
///
/// The resolution policy:
///
/// * `Type::name(...)` binds to the functions the named type's impls (or
///   the trait of that name) define.
/// * `name(...)` bare calls prefer same-file definitions and otherwise
///   require a unique workspace definition.
/// * `.name(...)` method calls bind only when exactly one impl anywhere
///   defines the name.
///
/// Ambiguity never produces an edge, so the passes only follow call
/// chains they can actually prove. Results are memoised per (call shape,
/// caller file), which makes repeated resolution of the same hot names —
/// every pass re-walks the same bodies — a map lookup.
pub(crate) struct CallResolver<'a> {
    /// Free functions by name.
    free_by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Methods by bare name, across all impls.
    method_by_name: BTreeMap<&'a str, Vec<usize>>,
    /// Methods by (self type, name).
    by_qual: BTreeMap<(&'a str, &'a str), Vec<usize>>,
    /// Defining file of each function id, for same-file preference.
    files: Vec<usize>,
    /// Memoised resolutions. Interior mutability keeps the public surface
    /// `&self`; resolution runs on the sequential cross-file stage, so a
    /// `RefCell` suffices.
    memo: RefCell<BTreeMap<MemoKey, Vec<usize>>>,
}

/// A memo key: the call shape plus (for bare calls) the caller's file.
type MemoKey = (u8, String, String, usize);

/// A call site, as specifically as the tokens identify the callee.
#[derive(Debug)]
pub(crate) enum Call {
    /// `name(...)` — a bare call.
    Bare(String),
    /// `Type::name(...)` — a qualified call.
    Qualified(String, String),
    /// `.name(...)` — a method call with unknown receiver type.
    Method(String),
}

impl<'a> CallResolver<'a> {
    /// Builds the resolver over `(name, self_type, file)` triples in
    /// function-id order — the id of a triple is its position.
    pub(crate) fn new(fns: impl Iterator<Item = (&'a str, Option<&'a str>, usize)>) -> Self {
        let mut free_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut method_by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
        let mut files = Vec::new();
        for (id, (name, self_type, file)) in fns.enumerate() {
            match self_type {
                Some(ty) => {
                    method_by_name.entry(name).or_default().push(id);
                    by_qual.entry((ty, name)).or_default().push(id);
                }
                None => free_by_name.entry(name).or_default().push(id),
            }
            files.push(file);
        }
        CallResolver {
            free_by_name,
            method_by_name,
            by_qual,
            files,
            memo: RefCell::new(BTreeMap::new()),
        }
    }

    /// Classifies the call at token `i` (an identifier followed by `(`)
    /// from its token context and resolves it. Returns no ids for nested
    /// `fn` definitions and for qualified calls whose type token is not a
    /// plain identifier.
    pub(crate) fn resolve_callees(
        &self,
        tokens: &[Token],
        i: usize,
        name: &str,
        caller_file: usize,
    ) -> Vec<usize> {
        let prev = i.checked_sub(1).map(|j| &tokens[j].kind);
        let call = match prev {
            Some(TokenKind::Punct('.')) => Call::Method(name.to_string()),
            Some(k) if k.is_op("::") => match i.checked_sub(2).map(|j| &tokens[j].kind) {
                Some(TokenKind::Ident(ty)) => Call::Qualified(ty.clone(), name.to_string()),
                _ => return Vec::new(),
            },
            Some(TokenKind::Ident(kw)) if kw == "fn" => return Vec::new(), // a definition
            _ => Call::Bare(name.to_string()),
        };
        self.resolve(&call, caller_file)
    }

    /// Resolves a classified call from `caller_file` to function ids.
    pub(crate) fn resolve(&self, call: &Call, caller_file: usize) -> Vec<usize> {
        let key: MemoKey = match call {
            Call::Bare(name) => (0, String::new(), name.clone(), caller_file),
            Call::Qualified(ty, name) => (1, ty.clone(), name.clone(), 0),
            Call::Method(name) => (2, String::new(), name.clone(), 0),
        };
        if let Some(hit) = self.memo.borrow().get(&key) {
            return hit.clone();
        }
        let resolved = match call {
            Call::Qualified(ty, name) => self
                .by_qual
                .get(&(ty.as_str(), name.as_str()))
                .cloned()
                .unwrap_or_default(),
            Call::Bare(name) => {
                let all = self
                    .free_by_name
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default();
                let same_file: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|&c| self.files[c] == caller_file)
                    .collect();
                if !same_file.is_empty() {
                    same_file
                } else if all.len() == 1 {
                    all
                } else {
                    Vec::new()
                }
            }
            Call::Method(name) => {
                let all = self
                    .method_by_name
                    .get(name.as_str())
                    .cloned()
                    .unwrap_or_default();
                if all.len() == 1 {
                    all
                } else {
                    Vec::new()
                }
            }
        };
        self.memo.borrow_mut().insert(key, resolved.clone());
        resolved
    }
}

/// The call sites of a body token range: each `(token index, name)` where
/// an identifier is followed by `(`.
pub(crate) fn call_sites(tokens: &[Token], body: (usize, usize)) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    for i in body.0..body.1.min(tokens.len()) {
        let name = match tokens[i].kind.ident() {
            Some(s) => s,
            None => continue,
        };
        if matches!(tokens.get(i + 1).map(|t| &t.kind), Some(k) if k.is_punct('(')) {
            out.push((i, name));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// L008: determinism taint
// ---------------------------------------------------------------------------

/// One function definition in the workspace call graph.
#[derive(Debug)]
struct FnDef {
    file: usize,
    name: String,
    /// The impl'd type (or trait, for default methods), if a method.
    self_type: Option<String>,
    body: (usize, usize),
    line: usize,
    /// Display name: `Type::name` or `name`.
    qual: String,
}

/// Why a function is tainted, for the diagnostic message.
#[derive(Debug, Clone)]
enum Cause {
    /// The function body contains the described direct site.
    Direct(String),
    /// The function calls `qual`, whose root cause is the description.
    Via(String, String),
}

fn taint_analysis(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    // Collect every non-test function with a body, workspace-wide.
    let mut fns: Vec<FnDef> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.role != FileRole::Lint {
            continue;
        }
        collect_fns(&f.ast.items, fi, None, &mut fns);
    }
    // Deterministic order regardless of collection details.
    fns.sort_by_key(|a| (a.file, a.body.0));

    // The shared conservative resolver over the function table.
    let resolver = CallResolver::new(
        fns.iter()
            .map(|fd| (fd.name.as_str(), fd.self_type.as_deref(), fd.file)),
    );

    // Seed taint from surviving direct sites.
    let mut cause: Vec<Option<Cause>> = vec![None; fns.len()];
    for (id, fd) in fns.iter().enumerate() {
        for site in &files[fd.file].l008_sites {
            if site.tok >= fd.body.0 && site.tok < fd.body.1 {
                cause[id] = Some(Cause::Direct(site.what.clone()));
                break;
            }
        }
    }

    // Resolve call edges: caller -> callees.
    let mut callees: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); fns.len()];
    for (id, fd) in fns.iter().enumerate() {
        let tokens = &files[fd.file].tokens;
        for (i, name) in call_sites(tokens, fd.body) {
            for c in resolver.resolve_callees(tokens, i, name, fd.file) {
                if c != id {
                    callees[id].insert(c);
                }
            }
        }
    }

    // Fixpoint: a caller of a tainted function is tainted. Iterating fns in
    // index order until stable keeps the cause assignment deterministic.
    let mut changed = true;
    while changed {
        changed = false;
        for id in 0..fns.len() {
            if cause[id].is_some() {
                continue;
            }
            // The lexicographically-smallest tainted callee gives the cause.
            let tainted_callee = callees[id]
                .iter()
                .filter_map(|&c| cause[c].as_ref().map(|why| (c, why)))
                .min_by_key(|&(c, _)| (&fns[c].qual, c));
            if let Some((c, why)) = tainted_callee {
                let root = match why {
                    Cause::Direct(what) => what.clone(),
                    Cause::Via(_, root) => root.clone(),
                };
                cause[id] = Some(Cause::Via(fns[c].qual.clone(), root));
                changed = true;
            }
        }
    }

    // Report transitive taint for functions on the synthesis path. Direct
    // sites already carry their own per-file L008 diagnostics.
    let mut out = Vec::new();
    for (id, fd) in fns.iter().enumerate() {
        if let Some(Cause::Via(callee, root)) = &cause[id] {
            let f = &files[fd.file];
            if !rules::Scope::of(Path::new(&f.path)).wants_determinism() {
                continue;
            }
            out.push(Diagnostic {
                file: f.path.clone(),
                line: fd.line,
                rule: "L008",
                message: format!(
                    "fn `{}` calls `{callee}`, which transitively performs {root}; the synthesis path must be deterministic",
                    fd.qual
                ),
            });
        }
    }
    out
}

/// Recursively collects callable function definitions (free fns, inherent
/// and trait-impl methods, trait default methods), skipping test code.
fn collect_fns(items: &[Item], file: usize, self_type: Option<&str>, out: &mut Vec<FnDef>) {
    for item in items {
        if item.in_test {
            continue;
        }
        match item.kind {
            ItemKind::Fn => {
                if let Some(body) = item.body {
                    let qual = match self_type {
                        Some(ty) => format!("{ty}::{}", item.name),
                        None => item.name.clone(),
                    };
                    out.push(FnDef {
                        file,
                        name: item.name.clone(),
                        self_type: self_type.map(str::to_string),
                        body,
                        line: item.line,
                        qual,
                    });
                }
            }
            ItemKind::Mod => collect_fns(&item.children, file, None, out),
            ItemKind::Impl => {
                let ty = item.self_type.as_deref();
                collect_fns(&item.children, file, ty, out);
            }
            ItemKind::Trait => {
                collect_fns(&item.children, file, Some(item.name.as_str()), out);
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// L009: dead pub surface
// ---------------------------------------------------------------------------

/// Item kinds L009 considers part of the exported surface.
fn is_surface_kind(kind: ItemKind) -> bool {
    matches!(
        kind,
        ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Union
            | ItemKind::Trait
            | ItemKind::Const
            | ItemKind::Static
            | ItemKind::TypeAlias
    )
}

fn kind_word(kind: ItemKind) -> &'static str {
    match kind {
        ItemKind::Fn => "fn",
        ItemKind::Struct => "struct",
        ItemKind::Enum => "enum",
        ItemKind::Union => "union",
        ItemKind::Trait => "trait",
        ItemKind::Const => "const",
        ItemKind::Static => "static",
        ItemKind::TypeAlias => "type",
        ItemKind::Mod => "mod",
        _ => "item",
    }
}

fn dead_pub_surface(files: &[FileAnalysis]) -> Vec<Diagnostic> {
    // Candidates: pub items of library files, at the top level or nested in
    // pub mods. Impl methods and re-exports are not candidates.
    struct Candidate {
        file: usize,
        name: String,
        line: usize,
        kind: ItemKind,
        /// The item's own token range (signature through body), whose
        /// mentions of the name do not count as references.
        def_range: (usize, usize),
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    fn collect(items: &[Item], file: usize, out: &mut Vec<Candidate>) {
        for item in items {
            if item.in_test || item.vis != Visibility::Public {
                continue;
            }
            if is_surface_kind(item.kind) && !item.name.is_empty() && item.name != "main" {
                let end = item.body.map(|(_, e)| e + 1).unwrap_or(item.sig.1 + 1);
                out.push(Candidate {
                    file,
                    name: item.name.clone(),
                    line: item.line,
                    kind: item.kind,
                    def_range: (item.sig.0, end),
                });
            }
            if item.kind == ItemKind::Mod {
                collect(&item.children, file, out);
            }
        }
    }
    for (fi, f) in files.iter().enumerate() {
        if f.role == FileRole::Lint && !f.is_bin {
            collect(&f.ast.items, fi, &mut candidates);
        }
    }

    // Reference index: per file, idents outside `use` ranges (with the
    // token index of each occurrence, so a candidate can exclude its own
    // definition) and idents inside them. Use-statement idents count only
    // cross-crate — a same-crate `pub use` of a dead item is just a dead
    // re-export, not a reference.
    struct Refs {
        crate_name: String,
        code_idents: BTreeMap<String, Vec<usize>>,
        use_idents: BTreeSet<String>,
    }
    let refs: Vec<Refs> = files
        .iter()
        .map(|f| {
            let mut use_ranges: Vec<(usize, usize)> = Vec::new();
            collect_use_ranges(&f.ast.items, &mut use_ranges);
            let mut code_idents: BTreeMap<String, Vec<usize>> = BTreeMap::new();
            let mut use_idents = BTreeSet::new();
            for (i, t) in f.tokens.iter().enumerate() {
                if let Some(id) = t.kind.ident() {
                    if use_ranges.iter().any(|&(s, e)| i >= s && i < e) {
                        use_idents.insert(id.to_string());
                    } else {
                        code_idents.entry(id.to_string()).or_default().push(i);
                    }
                }
            }
            Refs {
                crate_name: f.crate_name.clone(),
                code_idents,
                use_idents,
            }
        })
        .collect();

    let mut out = Vec::new();
    for c in &candidates {
        let def_crate = &files[c.file].crate_name;
        let referenced = refs.iter().enumerate().any(|(fi, r)| {
            let code_hit = r.code_idents.get(&c.name).is_some_and(|occurrences| {
                // A mention inside the candidate's own definition is not a
                // reference; any other mention — same file or not — is.
                fi != c.file
                    || occurrences
                        .iter()
                        .any(|&i| i < c.def_range.0 || i >= c.def_range.1)
            });
            code_hit || (r.crate_name != *def_crate && r.use_idents.contains(&c.name))
        });
        if !referenced {
            out.push(Diagnostic {
                file: files[c.file].path.clone(),
                line: c.line,
                rule: "L009",
                message: format!(
                    "`pub {} {}` is never referenced outside its own definition; reduce its visibility or allowlist with a reason",
                    kind_word(c.kind),
                    c.name
                ),
            });
        }
    }
    out
}

fn collect_use_ranges(items: &[Item], out: &mut Vec<(usize, usize)>) {
    for item in items {
        if item.kind == ItemKind::Use {
            out.push(item.sig);
        }
        if !item.children.is_empty() {
            collect_use_ranges(&item.children, out);
        }
    }
}

// ---------------------------------------------------------------------------
// L010: public-API snapshots
// ---------------------------------------------------------------------------

/// The rendered API surface of one crate: sorted unique lines, plus the
/// definition site of each line for addition diagnostics.
pub struct ApiSurface {
    /// Sorted, deduplicated surface lines.
    pub lines: Vec<String>,
    /// `line text -> (file path, source line)` for diagnostics.
    pub sites: BTreeMap<String, (String, usize)>,
}

impl ApiSurface {
    /// The baseline file content: the lines joined with `\n`, with a
    /// trailing newline when non-empty.
    pub fn render(&self) -> String {
        if self.lines.is_empty() {
            String::new()
        } else {
            let mut s = self.lines.join("\n");
            s.push('\n');
            s
        }
    }
}

/// Computes the exported API surface of `crate_name` from its analyzed
/// library files.
pub fn crate_api_surface(files: &[FileAnalysis], crate_name: &str) -> ApiSurface {
    // Out-of-line module visibility: `mod m;` declarations name the module
    // files of the crate. A file's items are exported only if every module
    // segment on its path is declared `pub`.
    let mut decl_vis: BTreeMap<Vec<String>, Visibility> = BTreeMap::new();
    let lib_files: Vec<&FileAnalysis> = files
        .iter()
        .filter(|f| f.role == FileRole::Lint && f.crate_name == crate_name && !f.is_bin)
        .collect();
    for f in &lib_files {
        let base = module_path_of(&f.path);
        collect_mod_decls(&f.ast.items, &base, &mut decl_vis);
    }
    let exported_file = |path: &str| -> bool {
        let mp = module_path_of(path);
        (1..=mp.len()).all(|n| {
            decl_vis
                .get(&mp[..n])
                .map(|v| *v == Visibility::Public)
                // An undeclared module segment (e.g. a path target of a
                // `#[path]` attr we cannot see) is assumed exported, which
                // errs toward pinning too much rather than too little.
                .unwrap_or(true)
        })
    };

    // Public type names of the crate, to filter impl lines.
    let mut public_types: BTreeSet<String> = BTreeSet::new();
    for f in &lib_files {
        collect_public_type_names(&f.ast.items, &mut public_types);
    }

    let mut lines: BTreeSet<String> = BTreeSet::new();
    let mut sites: BTreeMap<String, (String, usize)> = BTreeMap::new();
    for f in &lib_files {
        if !exported_file(&f.path) {
            continue;
        }
        let base = module_path_of(&f.path);
        surface_of_items(
            &f.ast.items,
            f,
            &base,
            &public_types,
            &mut lines,
            &mut sites,
        );
    }
    ApiSurface {
        lines: lines.into_iter().collect(),
        sites,
    }
}

/// The module path of a crate source file: `src/lib.rs` is the root,
/// `src/a/b.rs` is `a::b`, `src/a/mod.rs` is `a`.
fn module_path_of(path: &str) -> Vec<String> {
    let rel = match path.split_once("/src/") {
        Some((_, rel)) => rel,
        None => return Vec::new(),
    };
    let rel = rel.strip_suffix(".rs").unwrap_or(rel);
    let mut segs: Vec<String> = rel.split('/').map(str::to_string).collect();
    if segs.last().is_some_and(|s| s == "mod") {
        segs.pop();
    }
    if segs.len() == 1 && segs[0] == "lib" {
        segs.clear();
    }
    segs
}

/// Records the visibility of every out-of-line `mod m;` declaration.
fn collect_mod_decls(items: &[Item], base: &[String], out: &mut BTreeMap<Vec<String>, Visibility>) {
    for item in items {
        if item.in_test {
            continue;
        }
        if item.kind == ItemKind::Mod {
            if item.body.is_none() {
                let mut path = base.to_vec();
                path.push(item.name.clone());
                out.insert(path, item.vis);
            } else {
                let mut path = base.to_vec();
                path.push(item.name.clone());
                collect_mod_decls(&item.children, &path, out);
            }
        }
    }
}

/// Collects the names of `pub` type-like items (for impl-line filtering).
fn collect_public_type_names(items: &[Item], out: &mut BTreeSet<String>) {
    for item in items {
        if item.in_test {
            continue;
        }
        match item.kind {
            ItemKind::Struct | ItemKind::Enum | ItemKind::Union | ItemKind::TypeAlias
                if item.vis == Visibility::Public =>
            {
                out.insert(item.name.clone());
            }
            ItemKind::Mod => collect_public_type_names(&item.children, out),
            _ => {}
        }
    }
}

/// Renders the surface lines of one item list (recursing through pub mods
/// and impls).
fn surface_of_items(
    items: &[Item],
    f: &FileAnalysis,
    mod_path: &[String],
    public_types: &BTreeSet<String>,
    lines: &mut BTreeSet<String>,
    sites: &mut BTreeMap<String, (String, usize)>,
) {
    let prefix = if mod_path.is_empty() {
        "crate".to_string()
    } else {
        format!("crate::{}", mod_path.join("::"))
    };
    for item in items {
        if item.in_test {
            continue;
        }
        match item.kind {
            ItemKind::Impl => {
                let ty = match &item.self_type {
                    Some(t) if public_types.contains(t) => t.clone(),
                    _ => continue,
                };
                match &item.trait_name {
                    Some(tr) => {
                        let line = format!("{prefix} impl {tr} for {ty}");
                        sites
                            .entry(line.clone())
                            .or_insert((f.path.clone(), item.line));
                        lines.insert(line);
                    }
                    None => {
                        for m in &item.children {
                            if m.kind != ItemKind::Fn || m.vis != Visibility::Public || m.in_test {
                                continue;
                            }
                            let line = format!(
                                "{prefix} impl {ty} pub {}{}{}",
                                if m.is_unsafe { "unsafe " } else { "" },
                                parser::render(&f.tokens, m.sig),
                                deprecated_marker(m),
                            );
                            sites
                                .entry(line.clone())
                                .or_insert((f.path.clone(), m.line));
                            lines.insert(line);
                        }
                    }
                }
            }
            ItemKind::Mod if item.vis == Visibility::Public && item.body.is_some() => {
                let mut nested = mod_path.to_vec();
                nested.push(item.name.clone());
                surface_of_items(&item.children, f, &nested, public_types, lines, sites);
            }
            ItemKind::Use if item.vis == Visibility::Public => {
                for u in &item.uses {
                    let mut line = format!("{prefix} pub use {}", u.segments.join("::"));
                    if u.glob {
                        line.push_str("::*");
                    }
                    if let Some(a) = &u.alias {
                        line.push_str(&format!(" as {a}"));
                    }
                    sites
                        .entry(line.clone())
                        .or_insert((f.path.clone(), item.line));
                    lines.insert(line);
                }
            }
            kind if is_surface_kind(kind) && item.vis == Visibility::Public => {
                let mut sig = parser::render(&f.tokens, item.sig);
                // Initializers are not API surface: cut consts/statics at
                // the `=`.
                if matches!(
                    kind,
                    ItemKind::Const | ItemKind::Static | ItemKind::TypeAlias
                ) {
                    if let Some(pos) = sig.find(" = ") {
                        sig.truncate(pos);
                    }
                }
                let line = format!(
                    "{prefix} pub {}{sig}{}",
                    if item.is_unsafe { "unsafe " } else { "" },
                    deprecated_marker(item),
                );
                sites
                    .entry(line.clone())
                    .or_insert((f.path.clone(), item.line));
                lines.insert(line);
            }
            _ => {}
        }
    }
}

fn deprecated_marker(item: &Item) -> &'static str {
    if item.has_attr("deprecated") {
        " [deprecated]"
    } else {
        ""
    }
}

fn api_snapshots(
    files: &[FileAnalysis],
    opts: &CrossFileOptions<'_>,
) -> io::Result<Vec<Diagnostic>> {
    let crates: BTreeSet<&str> = files
        .iter()
        .filter(|f| f.role == FileRole::Lint && !f.crate_name.is_empty())
        .map(|f| f.crate_name.as_str())
        .collect();

    let mut out = Vec::new();
    for name in crates {
        let surface = crate_api_surface(files, name);
        let baseline_path = opts.baselines_dir.join(format!("{name}.api"));
        let display = baseline_path.to_string_lossy().replace('\\', "/");
        if opts.update_baselines {
            std::fs::create_dir_all(opts.baselines_dir)?;
            std::fs::write(&baseline_path, surface.render())?;
            continue;
        }
        let baseline = match std::fs::read_to_string(&baseline_path) {
            Ok(s) => s,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                out.push(Diagnostic {
                    file: display,
                    line: 1,
                    rule: "L010",
                    message: format!(
                        "missing API baseline for crate `{name}`; run scripts/update-api-baselines.sh and commit the result"
                    ),
                });
                continue;
            }
            Err(e) => return Err(e),
        };
        let baseline_lines: Vec<&str> = baseline.lines().collect();
        let baseline_set: BTreeSet<&str> = baseline_lines.iter().copied().collect();
        let current_set: BTreeSet<&str> = surface.lines.iter().map(String::as_str).collect();
        for added in current_set.difference(&baseline_set) {
            let (file, line) = surface
                .sites
                .get(*added)
                .cloned()
                .unwrap_or_else(|| (display.clone(), 1));
            out.push(Diagnostic {
                file,
                line,
                rule: "L010",
                message: format!(
                    "public API addition not in baseline: `{added}`; run scripts/update-api-baselines.sh to declare the change"
                ),
            });
        }
        for (idx, line) in baseline_lines.iter().enumerate() {
            if !current_set.contains(line) {
                out.push(Diagnostic {
                    file: display.clone(),
                    line: idx + 1,
                    rule: "L010",
                    message: format!(
                        "public API removal: `{line}` is no longer exported; declared breaks require regenerating the baseline"
                    ),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn analyze(path: &str, src: &str) -> FileAnalysis {
        analyze_source(&PathBuf::from(path), src, FileRole::Lint)
    }

    fn cross(files: &[FileAnalysis]) -> Vec<Diagnostic> {
        let dir = std::env::temp_dir().join(format!("mocktails-lint-none-{}", std::process::id()));
        // Point baselines at a directory that stays absent so L010 yields
        // only per-crate "missing baseline" diags, filtered out here.
        let opts = CrossFileOptions {
            baselines_dir: &dir,
            update_baselines: false,
            lock_rules: true,
            effect_rules: false,
            parallelism: Parallelism::sequential(),
        };
        cross_file(files, &opts)
            .expect("cross-file pass")
            .into_iter()
            .filter(|d| d.rule != "L010")
            .collect()
    }

    #[test]
    fn resolver_pins_two_impl_ambiguity() {
        // Two impls defining the same method name: `.step()` must resolve
        // to nothing (ambiguous), `A::step` / `B::step` to exactly their
        // impl, and a bare call must prefer the same file before falling
        // back to a unique workspace definition.
        let table = [
            ("step", Some("A"), 0), // 0: A::step in file 0
            ("step", Some("B"), 1), // 1: B::step in file 1
            ("only", Some("A"), 0), // 2: A::only — the one impl of `only`
            ("helper", None, 0),    // 3: free helper in file 0
            ("helper", None, 1),    // 4: free helper in file 1
            ("unique_fn", None, 0), // 5: the only free fn of that name
        ];
        let r = CallResolver::new(table.iter().map(|&(n, t, f)| (n, t, f)));

        assert_eq!(
            r.resolve(&Call::Method("step".into()), 0),
            Vec::<usize>::new()
        );
        assert_eq!(r.resolve(&Call::Method("only".into()), 1), vec![2]);
        assert_eq!(
            r.resolve(&Call::Qualified("A".into(), "step".into()), 1),
            vec![0]
        );
        assert_eq!(
            r.resolve(&Call::Qualified("B".into(), "step".into()), 0),
            vec![1]
        );
        assert_eq!(
            r.resolve(&Call::Qualified("C".into(), "step".into()), 0),
            Vec::<usize>::new()
        );
        // Bare calls: same file wins; ambiguity across files yields nothing
        // unless the definition is unique workspace-wide.
        assert_eq!(r.resolve(&Call::Bare("helper".into()), 0), vec![3]);
        assert_eq!(r.resolve(&Call::Bare("helper".into()), 1), vec![4]);
        assert_eq!(
            r.resolve(&Call::Bare("helper".into()), 2),
            Vec::<usize>::new()
        );
        assert_eq!(r.resolve(&Call::Bare("unique_fn".into()), 2), vec![5]);
        // Memoised: a second identical query returns the same answer.
        assert_eq!(r.resolve(&Call::Bare("helper".into()), 0), vec![3]);
    }

    #[test]
    fn transitive_taint_reaches_callers_across_files() {
        let a = analyze(
            "crates/core/src/value.rs",
            "use std::collections::HashMap;\n\
             pub fn entropy() -> f64 {\n\
                 let counts: HashMap<u64, u64> = HashMap::new();\n\
                 counts.values().count() as f64\n\
             }\n",
        );
        let b = analyze(
            "crates/core/src/model/leaf.rs",
            "pub fn fit_leaf() -> f64 { entropy() }\n\
             pub fn unrelated() -> u64 { 7 }\n",
        );
        let diags = cross(&[a, b]);
        let l008: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L008").collect();
        // entropy() itself is flagged per-file (direct); fit_leaf is the
        // transitive caller the graph pass adds.
        assert!(
            l008.iter()
                .any(|d| d.file.contains("leaf.rs") && d.message.contains("fit_leaf")),
            "expected a transitive diagnostic, got: {l008:?}"
        );
        assert!(!l008.iter().any(|d| d.message.contains("unrelated")));
    }

    #[test]
    fn allowed_direct_site_does_not_seed_taint() {
        let a = analyze(
            "crates/core/src/value.rs",
            "use std::collections::HashMap;\n\
             pub fn entropy() -> f64 {\n\
                 let counts: HashMap<u64, u64> = HashMap::new();\n\
                 // lint: allow(L008, order-insensitive count, not a sum)\n\
                 counts.values().count() as f64\n\
             }\n",
        );
        let b = analyze(
            "crates/core/src/model/leaf.rs",
            "pub fn fit_leaf() -> f64 { entropy() }\n",
        );
        let diags = cross(&[a, b]);
        assert!(
            diags.iter().all(|d| d.rule != "L008"),
            "sanctioned site must not taint: {diags:?}"
        );
    }

    #[test]
    fn taint_does_not_leave_the_synthesis_scope() {
        let a = analyze(
            "crates/core/src/value.rs",
            "use std::collections::HashMap;\n\
             pub fn entropy() -> f64 {\n\
                 let counts: HashMap<u64, u64> = HashMap::new();\n\
                 counts.values().count() as f64\n\
             }\n",
        );
        // The bench crate is off the synthesis path: its callers stay quiet.
        let b = analyze(
            "crates/bench/src/lib.rs",
            "pub fn bench_entropy() -> f64 { entropy() }\n",
        );
        let diags = cross(&[a, b]);
        assert!(!diags
            .iter()
            .any(|d| d.rule == "L008" && d.file.contains("bench")));
    }

    #[test]
    fn ambiguous_method_calls_do_not_taint() {
        let a = analyze(
            "crates/core/src/value.rs",
            "use std::collections::HashMap;\n\
             pub struct A;\n\
             impl A { pub fn sample(&self) { let m: HashMap<u64,u64> = HashMap::new(); for v in m { let _ = v; } } }\n\
             pub struct B;\n\
             impl B { pub fn sample(&self) {} }\n",
        );
        let b = analyze(
            "crates/core/src/synth.rs",
            "pub fn run(x: &X) { x.sample() }\n",
        );
        let diags = cross(&[a, b]);
        assert!(
            !diags
                .iter()
                .any(|d| d.rule == "L008" && d.file.contains("synth.rs")),
            "two impls define `sample`: no edge, no taint: {diags:?}"
        );
    }

    #[test]
    fn dead_pub_item_is_flagged_and_used_one_is_not() {
        let a = analyze(
            "crates/sim/src/lib.rs",
            "pub fn used_helper() -> u64 { 1 }\npub fn dead_helper() -> u64 { 2 }\n",
        );
        let b = analyze(
            "crates/dram/src/lib.rs",
            "pub fn consumer() -> u64 { used_helper() }\n",
        );
        let diags = cross(&[a, b]);
        let l009: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == "L009").collect();
        assert!(l009.iter().any(|d| d.message.contains("dead_helper")));
        assert!(!l009.iter().any(|d| d.message.contains("used_helper")));
        // `consumer` is itself unreferenced — also dead.
        assert!(l009.iter().any(|d| d.message.contains("consumer")));
    }

    #[test]
    fn same_crate_reexport_does_not_launder_deadness() {
        let a = analyze("crates/sim/src/inner.rs", "pub fn orphan() -> u64 { 3 }\n");
        let b = analyze(
            "crates/sim/src/lib.rs",
            "pub mod inner;\npub use inner::orphan;\n",
        );
        let diags = cross(&[a, b]);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "L009" && d.message.contains("orphan")),
            "a same-crate re-export alone must not keep `orphan` alive: {diags:?}"
        );
    }

    #[test]
    fn cross_crate_import_keeps_an_item_alive() {
        let a = analyze("crates/sim/src/lib.rs", "pub fn exported() -> u64 { 4 }\n");
        let b = analyze("crates/dram/src/lib.rs", "use mocktails_sim::exported;\n");
        let diags = cross(&[a, b]);
        assert!(!diags
            .iter()
            .any(|d| d.rule == "L009" && d.message.contains("exported")));
    }

    #[test]
    fn test_references_keep_items_alive() {
        let a = analyze(
            "crates/sim/src/lib.rs",
            "pub fn test_only_api() -> u64 { 5 }\n",
        );
        let t = analyze_source(
            &PathBuf::from("crates/sim/tests/integration.rs"),
            "#[test]\nfn covers() { assert_eq!(test_only_api(), 5); }\n",
            FileRole::Reference,
        );
        let diags = cross(&[a, t]);
        assert!(!diags
            .iter()
            .any(|d| d.rule == "L009" && d.message.contains("test_only_api")));
    }

    #[test]
    fn api_surface_is_sorted_and_respects_module_visibility() {
        let lib = analyze(
            "crates/cache/src/lib.rs",
            "mod private_impl;\npub mod config;\npub use private_impl::Cache;\npub fn top() {}\n",
        );
        let hidden = analyze(
            "crates/cache/src/private_impl.rs",
            "pub struct Cache;\nimpl Cache { pub fn lookup(&self) {} }\n",
        );
        let cfg = analyze(
            "crates/cache/src/config.rs",
            "pub struct Config { pub ways: usize }\n",
        );
        let files = [lib, hidden, cfg];
        let surface = crate_api_surface(&files, "cache");
        let mut sorted = surface.lines.clone();
        sorted.sort();
        assert_eq!(surface.lines, sorted);
        // Items of the private module are not surface; the re-export is.
        assert!(surface
            .lines
            .iter()
            .any(|l| l.contains("pub use private_impl::Cache")));
        assert!(!surface.lines.iter().any(|l| l.contains("pub struct Cache")));
        assert!(surface
            .lines
            .iter()
            .any(|l| l == "crate::config pub struct Config"));
        assert!(surface.lines.iter().any(|l| l == "crate pub fn top()"));
    }

    #[test]
    fn api_baseline_diffs_and_update_roundtrip() {
        let dir = std::env::temp_dir().join(format!("mocktails-lint-l010-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let files = [analyze(
            "crates/sim/src/lib.rs",
            "pub fn alpha() {}\npub fn beta() {}\n",
        )];
        let update = CrossFileOptions {
            baselines_dir: &dir,
            update_baselines: true,
            lock_rules: true,
            effect_rules: false,
            parallelism: Parallelism::sequential(),
        };
        cross_file(&files, &update).expect("baseline write");
        let check = CrossFileOptions {
            baselines_dir: &dir,
            update_baselines: false,
            lock_rules: true,
            effect_rules: false,
            parallelism: Parallelism::sequential(),
        };
        // Unchanged surface: clean.
        let diags = cross_file(&files, &check).expect("diff");
        assert!(diags.iter().all(|d| d.rule != "L010"), "{diags:?}");
        // A new export is an undeclared addition; a removed one a break.
        let changed = [analyze(
            "crates/sim/src/lib.rs",
            "pub fn alpha() {}\npub fn gamma() {}\n",
        )];
        let diags = cross_file(&changed, &check).expect("diff");
        assert!(diags.iter().any(|d| d.rule == "L010"
            && d.message.contains("addition")
            && d.message.contains("gamma")));
        assert!(diags.iter().any(|d| d.rule == "L010"
            && d.message.contains("removal")
            && d.message.contains("beta")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deprecated_items_are_marked_in_the_surface() {
        let files = [analyze(
            "crates/trace/src/lib.rs",
            "#[deprecated(since = \"0.2.0\", note = \"x\")]\npub fn old_api() {}\n",
        )];
        let surface = crate_api_surface(&files, "trace");
        assert!(surface
            .lines
            .iter()
            .any(|l| l.contains("old_api") && l.ends_with("[deprecated]")));
    }
}
