//! The lint rules, evaluated over the token skeleton of one file.
//!
//! | Rule | Scope | Invariant |
//! |------|-------|-----------|
//! | L001 | library code, non-test | no `unwrap()`/`expect()`/`panic!`/`todo!`/`unimplemented!` |
//! | L002 | library code | no external-crate imports (std + workspace only) |
//! | L003 | `core`/`trace`/`dram`/`cache`, non-test | every `pub` item documented |
//! | L004 | model & similarity code, non-test | no float-literal `==`/`!=` |
//! | L005 | synthesis crates, non-test | no `SystemTime`/`Instant` |
//! | L006 | library code except `fault.rs`, non-test | no `io::Error::{new,other,from}` construction |
//! | L007 | library code except `crates/pool`/`crates/serve`, non-test | no direct `std::thread`/`std::net` use |
//! | L008 | synthesis crates except `rng` modules, non-test | no nondeterministic iteration (`HashMap`/`HashSet`), no `env::var` |
//! | L011 | library code, non-test | every `unsafe` and blanket `#[allow(...)]` carries a reasoned companion |
//! | L015 | library code, non-test | no `.unwrap()`/`.expect(..)` directly on a `lock()`/`read()`/`write()` result |
//!
//! L008 and L011 are the per-file halves of the cross-file analyses in
//! [`crate::graph`]: L008's *direct* sites seed the determinism-taint
//! propagation, and L011 audits the escape hatches themselves. The other
//! body-level lock rules (L012–L014) live in [`crate::locks`], because
//! they need the workspace call graph; L015 stays here because a
//! poisoned-lock unwrap is visible in one token window.
//!
//! Any diagnostic can be suppressed with a `// lint: allow(RULE, reason)`
//! comment on the same line or the line directly above; the reason is
//! mandatory — a bare `allow(L001)` does not suppress anything.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{lex, Directive, Lexed, Token, TokenKind};

/// One reported rule violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Diagnostic {
    /// The file the violation is in, as the path was given to the linter.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule identifier, e.g. `L001`.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Crate roots whose `use` declarations L002 accepts: the standard
/// library facade plus path-only workspace members.
const ALLOWED_USE_ROOTS: [&str; 6] = ["std", "core", "alloc", "crate", "self", "super"];

/// Item keywords L003 requires documentation in front of.
const DOC_ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "mod", "const", "static", "type", "union",
];

/// How the path of a file maps onto rule scopes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Scope {
    /// Binary targets (`main.rs`, `src/bin/`) are exempt from L001/L002:
    /// a CLI's top level may exit via `expect` and link anything it wants.
    is_lib: bool,
    /// L003 applies only to the foundational crates the rest build on.
    wants_docs: bool,
    /// L004 applies to statistical model and similarity-metric code.
    is_model_code: bool,
    /// L005 applies to crates on the fit/synthesize path, which must stay
    /// deterministic and therefore must not read wall-clock time.
    is_synthesis_code: bool,
    /// L006 exempts the fault-injection module, the one place allowed to
    /// construct (rather than propagate) `std::io::Error` values.
    is_fault_module: bool,
    /// L007 exempts the pool and serve crates, the only places allowed to
    /// touch `std::thread` and `std::net` — everyone else goes through
    /// `Parallelism` (compute) or `mocktails-serve` (networking).
    owns_concurrency: bool,
    /// L008 exempts the seeded-PRNG modules: they are the one sanctioned
    /// source of randomness, and their output is a pure function of the
    /// seed.
    is_rng_module: bool,
}

impl Scope {
    pub(crate) fn of(path: &Path) -> Self {
        let p = normalize_path(&path.to_string_lossy().replace('\\', "/"));
        let is_bin = p.ends_with("/main.rs") || p == "main.rs" || p.contains("/src/bin/");
        let in_crate = |name: &str| p.contains(&format!("crates/{name}/src/"));
        Scope {
            is_lib: !is_bin,
            wants_docs: in_crate("core")
                || in_crate("trace")
                || in_crate("dram")
                || in_crate("cache"),
            is_model_code: p.contains("core/src/model/") || p.contains("similarity"),
            is_synthesis_code: in_crate("core")
                || in_crate("trace")
                || in_crate("workloads")
                || in_crate("baselines"),
            is_fault_module: p.ends_with("/fault.rs"),
            owns_concurrency: in_crate("pool") || in_crate("serve"),
            is_rng_module: p.ends_with("/rng.rs") || p.contains("/rng/"),
        }
    }

    /// True if L008 applies to the file at all: the fit/synthesize/codec
    /// path, minus the sanctioned seeded-PRNG modules.
    pub(crate) fn wants_determinism(&self) -> bool {
        self.is_synthesis_code && !self.is_rng_module
    }
}

/// Lints one file's source text. `path` is used both for scoping (which
/// rules apply) and for diagnostics; the file is not read from disk.
///
/// Runs the per-file rules (L001–L008 direct sites, L011) and applies the
/// `// lint: allow` directives. The cross-file rules (L008 transitive
/// taint, L009, L010) need the whole workspace and live in
/// [`crate::graph`].
pub fn lint_source(path: &Path, src: &str) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let mut diags = file_diagnostics(path, &lexed);
    apply_directives(&mut diags, &lexed.directives, &lexed.file_directives);
    diags.sort();
    diags
}

/// Removes every diagnostic suppressed by a reasoned directive on its own
/// line or the line directly above, or by a file-scoped
/// `// lint: allow-file(...)` directive anywhere in the file.
pub(crate) fn apply_directives(
    diags: &mut Vec<Diagnostic>,
    directives: &BTreeMap<usize, Vec<Directive>>,
    file_directives: &[Directive],
) {
    diags.retain(|d| {
        if file_directives.iter().any(|dir| dir.covers(d.rule)) {
            return false;
        }
        ![d.line, d.line.saturating_sub(1)].iter().any(|l| {
            directives
                .get(l)
                .map(|ds| ds.iter().any(|dir| dir.covers(d.rule)))
                .unwrap_or(false)
        })
    });
}

/// All per-file diagnostics of one lexed file, unfiltered and unsorted.
pub(crate) fn file_diagnostics(path: &Path, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let scope = Scope::of(path);
    let in_test = test_flags(tokens);
    let local_modules = module_names(tokens);
    let file = path.to_string_lossy().replace('\\', "/");
    let mut diags = Vec::new();
    let mut push = |line: usize, rule: &'static str, message: String| {
        diags.push(Diagnostic {
            file: file.clone(),
            line,
            rule,
            message,
        });
    };

    for (i, t) in tokens.iter().enumerate() {
        let ident = match t.kind.ident() {
            Some(s) => s,
            None => continue,
        };
        let prev = i.checked_sub(1).map(|j| &tokens[j].kind);
        let next = tokens.get(i + 1).map(|t| &t.kind);

        // L001: no panicking calls in non-test library code.
        if scope.is_lib && !in_test[i] {
            let is_method_call = matches!(prev, Some(k) if k.is_punct('.'))
                && matches!(next, Some(k) if k.is_punct('('));
            let is_macro = matches!(next, Some(k) if k.is_punct('!'));
            if (ident == "unwrap" || ident == "expect") && is_method_call {
                push(t.line, "L001", format!("`.{ident}()` in library code; return a typed error or allowlist with a reason"));
            } else if (ident == "panic" || ident == "todo" || ident == "unimplemented") && is_macro
            {
                push(t.line, "L001", format!("`{ident}!` in library code; return a typed error or allowlist with a reason"));
            }
        }

        // L015: unwrapping a lock acquisition propagates a panic on one
        // thread into panics on every thread that touches the lock next.
        // `.lock()`/`.read()`/`.write()` with empty parens is a std lock
        // primitive (io `read(buf)` calls carry arguments), and the only
        // poison-safe adapters are the recovering ones.
        if scope.is_lib
            && !in_test[i]
            && (ident == "lock" || ident == "read" || ident == "write")
            && matches!(prev, Some(k) if k.is_punct('.'))
            && matches!(next, Some(k) if k.is_punct('('))
            && matches!(tokens.get(i + 2).map(|t| &t.kind), Some(k) if k.is_punct(')'))
            && matches!(tokens.get(i + 3).map(|t| &t.kind), Some(k) if k.is_punct('.'))
            && matches!(
                tokens.get(i + 4).and_then(|t| t.kind.ident()),
                Some("unwrap" | "expect")
            )
        {
            push(
                t.line,
                "L015",
                format!("`.{ident}()` result unwrapped; recover the guard with `unwrap_or_else(PoisonError::into_inner)` so a poisoned lock cannot cascade panics"),
            );
        }

        // L002: hermetic imports — std facade and workspace crates only.
        if scope.is_lib && ident == "use" && is_item_position(tokens, i) {
            if let Some(root) = use_root(tokens, i + 1) {
                if !use_root_allowed(&root) && !local_modules.contains(&root) {
                    push(
                        t.line,
                        "L002",
                        format!("import of external crate `{root}`; only std and path-only workspace crates are hermetic"),
                    );
                }
            }
        }
        if scope.is_lib
            && ident == "extern"
            && matches!(next, Some(TokenKind::Ident(k)) if k == "crate")
        {
            if let Some(TokenKind::Ident(root)) = tokens.get(i + 2).map(|t| &t.kind) {
                if !use_root_allowed(root) {
                    push(
                        t.line,
                        "L002",
                        format!("`extern crate {root}`; only std and path-only workspace crates are hermetic"),
                    );
                }
            }
        }

        // L003: public API of the foundational crates must be documented.
        if scope.wants_docs && !in_test[i] && ident == "pub" {
            if let Some((kw, name)) = pub_item(tokens, i) {
                if !has_doc_before(tokens, i) {
                    push(
                        t.line,
                        "L003",
                        format!("missing doc comment on `pub {kw} {name}`"),
                    );
                }
            }
        }

        // L006: constructing an `io::Error` in decode/encode paths forges a
        // fault that never happened — that power belongs to `fault.rs`.
        if scope.is_lib && !scope.is_fault_module && !in_test[i] && ident == "Error" {
            let after_io = i >= 2
                && tokens[i - 1].kind.is_op("::")
                && tokens[i - 2].kind.ident() == Some("io");
            let ctor = matches!(
                (tokens.get(i + 1), tokens.get(i + 2).map(|t| t.kind.ident())),
                (Some(t), Some(Some("new" | "other" | "from"))) if t.kind.is_op("::")
            );
            if after_io && ctor {
                push(
                    t.line,
                    "L006",
                    "`io::Error` constructed outside `fault.rs`; propagate the real error or return a typed codec error".to_string(),
                );
            }
        }

        // L007: spawning raw threads (or opening sockets) anywhere else
        // would let scheduling order or I/O timing leak into results —
        // concurrency has exactly two owners: the pool (compute) and the
        // serve crate (connections).
        if scope.is_lib
            && !scope.owns_concurrency
            && !in_test[i]
            && (ident == "thread" || ident == "net")
        {
            let after_std = i >= 2
                && tokens[i - 1].kind.is_op("::")
                && tokens[i - 2].kind.ident() == Some("std");
            if after_std {
                push(
                    t.line,
                    "L007",
                    format!("`std::{ident}` outside `mocktails-pool`/`mocktails-serve`; go through `Parallelism` or the serving layer so results stay deterministic at any thread count"),
                );
            }
        }

        // L005: no wall-clock reads on the fit/synthesize path.
        if scope.is_synthesis_code && !in_test[i] && (ident == "SystemTime" || ident == "Instant") {
            push(
                t.line,
                "L005",
                format!("`{ident}` in synthesis-path code; synthesis must be deterministic — derive timestamps from the model"),
            );
        }
    }

    // L004: float-literal equality in model/similarity code.
    if scope.is_model_code {
        for (i, t) in tokens.iter().enumerate() {
            if in_test[i] || !(t.kind.is_op("==") || t.kind.is_op("!=")) {
                continue;
            }
            let float_nbr = i
                .checked_sub(1)
                .map(|j| matches!(tokens[j].kind, TokenKind::FloatLit(_)))
                .unwrap_or(false)
                || matches!(
                    tokens.get(i + 1).map(|t| &t.kind),
                    Some(TokenKind::FloatLit(_))
                );
            if float_nbr {
                push(
                    t.line,
                    "L004",
                    "float equality against a literal in model code; compare with an epsilon or restructure".to_string(),
                );
            }
        }
    }

    // L008 (direct sites): nondeterministic iteration and env reads on the
    // synthesis path. The graph pass reuses `l008_sites` for taint seeding.
    if scope.wants_determinism() {
        for site in l008_sites(tokens, &in_test) {
            push(
                site.line,
                "L008",
                format!("{} on the synthesis path is nondeterministic; use a BTree collection or thread the value through explicitly", site.what),
            );
        }
    }

    // L011: the escape hatches themselves are audited. Every `unsafe` and
    // every blanket `#[allow(...)]` must carry a reasoned
    // `// lint: allow(L011, reason)` companion — the suppression mechanism
    // doubles as the justification record.
    if scope.is_lib {
        for (i, t) in tokens.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            match t.kind.ident() {
                Some("unsafe") => {
                    push(
                        t.line,
                        "L011",
                        "`unsafe` requires a reasoned `// lint: allow(L011, reason)` companion"
                            .to_string(),
                    );
                }
                Some("allow") if is_allow_attribute(tokens, i) => {
                    let what = allow_args(tokens, i);
                    push(
                        t.line,
                        "L011",
                        format!("blanket `#[allow({what})]` requires a reasoned `// lint: allow(L011, reason)` companion"),
                    );
                }
                _ => {}
            }
        }
    }

    diags
}

/// One L008 direct site: a token index (for taint attribution), its line,
/// and a human-readable description of the nondeterminism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L008Site {
    /// Index of the offending token.
    pub tok: usize,
    /// 1-based source line.
    pub line: usize,
    /// What the site does, e.g. "iteration over `counts` (HashMap)".
    pub what: String,
}

/// Methods whose call on a hash collection observes iteration order.
const HASH_ITER_METHODS: [&str; 8] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

/// Finds the direct nondeterminism sites of one file: iteration over
/// `HashMap`/`HashSet` bindings and `env::var` reads, outside test code.
///
/// Binding discovery is heuristic (name-based, file-wide): every `let`
/// binding, field or parameter whose type mentions `HashMap`/`HashSet`
/// contributes its name, and any iteration-observing method call or `for`
/// loop over such a name is a site. Names are matched per file, so a
/// same-named deterministic collection in another file is unaffected.
pub(crate) fn l008_sites(tokens: &[Token], in_test: &[bool]) -> Vec<L008Site> {
    let mut bindings: BTreeMap<String, &'static str> = BTreeMap::new();
    for (i, t) in tokens.iter().enumerate() {
        let hash_ty = match t.kind.ident() {
            Some(ty @ ("HashMap" | "HashSet")) => ty,
            _ => continue,
        };
        // `use std::collections::HashMap` introduces no binding.
        if matches!(i.checked_sub(1).map(|j| &tokens[j].kind), Some(k) if k.is_op("::")) {
            let mut s = i;
            let mut is_use = false;
            while s > 0 {
                s -= 1;
                match &tokens[s].kind {
                    TokenKind::Punct(';' | '{' | '}') => break,
                    TokenKind::Ident(id) if id == "use" => {
                        is_use = true;
                        break;
                    }
                    _ => {}
                }
            }
            if is_use {
                continue;
            }
        }
        if let Some(name) = binding_before(tokens, i) {
            let ty = if hash_ty == "HashMap" {
                "HashMap"
            } else {
                "HashSet"
            };
            bindings.entry(name).or_insert(ty);
        }
    }

    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if in_test[i] {
            continue;
        }
        let ident = match t.kind.ident() {
            Some(s) => s,
            None => continue,
        };
        let prev = i.checked_sub(1).map(|j| &tokens[j].kind);
        let next = tokens.get(i + 1).map(|t| &t.kind);

        // `name.iter()` / `name.values()` / ... on a hash binding.
        if HASH_ITER_METHODS.contains(&ident)
            && matches!(prev, Some(k) if k.is_punct('.'))
            && matches!(next, Some(k) if k.is_punct('('))
        {
            if let Some(TokenKind::Ident(recv)) = i.checked_sub(2).map(|j| &tokens[j].kind) {
                if let Some(ty) = bindings.get(recv.as_str()) {
                    sites.push(L008Site {
                        tok: i,
                        line: t.line,
                        what: format!("iteration over `{recv}` ({ty})"),
                    });
                }
            }
        }

        // `for pat in [&][mut] name { ... }` over a hash binding.
        if ident == "in" {
            let mut j = i + 1;
            while matches!(
                tokens.get(j).map(|t| &t.kind),
                Some(TokenKind::Punct('&')) | Some(TokenKind::Ident(_))
            ) {
                if let Some(TokenKind::Ident(name)) = tokens.get(j).map(|t| &t.kind) {
                    if name == "mut" {
                        j += 1;
                        continue;
                    }
                    if matches!(
                        tokens.get(j + 1).map(|t| &t.kind),
                        Some(TokenKind::Punct('{'))
                    ) {
                        if let Some(ty) = bindings.get(name.as_str()) {
                            sites.push(L008Site {
                                tok: j,
                                line: tokens[j].line,
                                what: format!("iteration over `{name}` ({ty})"),
                            });
                        }
                    }
                    break;
                }
                j += 1;
            }
        }

        // `env::var` / `env::vars` / `env::var_os`: ambient process state.
        if matches!(ident, "var" | "vars" | "var_os")
            && matches!(prev, Some(k) if k.is_op("::"))
            && i >= 2
            && tokens[i - 2].kind.ident() == Some("env")
        {
            sites.push(L008Site {
                tok: i,
                line: t.line,
                what: format!("`env::{ident}`"),
            });
        }
    }
    sites
}

/// The binding name a `HashMap`/`HashSet` type mention at `tokens[i]`
/// belongs to: the `let` pattern of the enclosing statement, or the
/// `name:` of the enclosing field/parameter declaration.
fn binding_before(tokens: &[Token], i: usize) -> Option<String> {
    // Window: back to the statement/field boundary.
    let mut start = i;
    while start > 0 {
        match &tokens[start - 1].kind {
            TokenKind::Punct(';' | '{' | '}') => break,
            _ => start -= 1,
        }
    }
    // `let [mut] name ... HashMap` anywhere in the window wins.
    for j in start..i {
        if tokens[j].kind.ident() == Some("let") {
            let mut k = j + 1;
            if tokens.get(k).and_then(|t| t.kind.ident()) == Some("mut") {
                k += 1;
            }
            if let Some(TokenKind::Ident(name)) = tokens.get(k).map(|t| &t.kind) {
                return Some(name.clone());
            }
        }
    }
    // Otherwise the nearest `name :` before the type (field or parameter).
    for j in (start..i).rev() {
        if tokens[j].kind.is_punct(':') {
            if let Some(TokenKind::Ident(name)) = j.checked_sub(1).map(|k| &tokens[k].kind) {
                return Some(name.clone());
            }
        }
    }
    None
}

/// True if the `allow` ident at `tokens[i]` is the head of an attribute
/// (`#[allow(...)]` or `#![allow(...)]`), as opposed to a stray ident.
fn is_allow_attribute(tokens: &[Token], i: usize) -> bool {
    let Some(j) = i.checked_sub(1) else {
        return false;
    };
    if !tokens[j].kind.is_punct('[') {
        return false;
    }
    match j.checked_sub(1).map(|k| &tokens[k].kind) {
        Some(TokenKind::Punct('#')) => true,
        Some(TokenKind::Punct('!')) => {
            matches!(
                j.checked_sub(2).map(|k| &tokens[k].kind),
                Some(TokenKind::Punct('#'))
            )
        }
        _ => false,
    }
}

/// The lint names inside an `#[allow(...)]` at `tokens[i]`, rendered
/// `a::b` style for the diagnostic message.
fn allow_args(tokens: &[Token], i: usize) -> String {
    let mut out = String::new();
    let mut j = i + 1;
    if !matches!(tokens.get(j).map(|t| &t.kind), Some(TokenKind::Punct('('))) {
        return out;
    }
    j += 1;
    let mut depth = 1usize;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Punct('(') => depth += 1,
            TokenKind::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            TokenKind::Ident(s) => {
                if !out.is_empty() && !out.ends_with("::") {
                    out.push_str(", ");
                }
                out.push_str(s);
            }
            TokenKind::Op("::") => out.push_str("::"),
            _ => {}
        }
        j += 1;
    }
    out
}

/// Collapses `.` and `..` segments so scope matching sees the canonical
/// path — `crates/lint/../pool/src/lib.rs` must scope as the pool crate.
fn normalize_path(p: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in p.split('/') {
        match seg {
            "." => {}
            ".." if matches!(out.last(), Some(&last) if last != ".." && !last.is_empty()) => {
                out.pop();
            }
            _ => out.push(seg),
        }
    }
    out.join("/")
}

fn use_root_allowed(root: &str) -> bool {
    ALLOWED_USE_ROOTS.contains(&root) || root.starts_with("mocktails")
}

/// Names of modules declared in this file (`mod foo;` / `pub mod foo {}`).
/// Edition-2018 uniform paths let `use foo::Bar` refer to such a sibling
/// module, so those roots are not external crates.
fn module_names(tokens: &[Token]) -> std::collections::BTreeSet<String> {
    let mut names = std::collections::BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind.ident() == Some("mod") {
            if let Some(TokenKind::Ident(name)) = tokens.get(i + 1).map(|t| &t.kind) {
                names.insert(name.clone());
            }
        }
    }
    names
}

/// The first path segment of a `use` declaration starting at `tokens[i]`.
fn use_root(tokens: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    if matches!(tokens.get(j), Some(t) if t.kind.is_op("::")) {
        j += 1; // `use ::std::...` — explicit global paths are fine too.
    }
    tokens.get(j)?.kind.ident().map(str::to_string)
}

/// True if `tokens[i]` sits where an item can start (not, say, a field
/// named `use`, which the grammar forbids anyway — this guards macro soup).
fn is_item_position(tokens: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|j| &tokens[j].kind) {
        None => true,
        Some(TokenKind::Punct(c)) => matches!(c, ';' | '{' | '}' | ']' | ')'),
        Some(TokenKind::Ident(k)) => k == "pub",
        _ => false,
    }
}

/// If `tokens[i]` is a `pub` introducing a documentable item, returns the
/// item keyword and name. `pub use` re-exports and restricted
/// `pub(crate)`/`pub(super)` visibilities are skipped.
fn pub_item(tokens: &[Token], i: usize) -> Option<(String, String)> {
    if matches!(tokens.get(i + 1), Some(t) if t.kind.is_punct('(')) {
        return None;
    }
    let mut kw: Option<String> = None;
    let mut j = i + 1;
    while let Some(t) = tokens.get(j) {
        match &t.kind {
            TokenKind::Ident(s) if s == "use" => return None,
            TokenKind::Ident(s) if DOC_ITEM_KEYWORDS.contains(&s.as_str()) => {
                kw = Some(s.clone());
                j += 1;
            }
            // Qualifiers (`unsafe`, `async`, `extern "C"`) and the name.
            TokenKind::Ident(s) if s == "unsafe" || s == "async" || s == "extern" => j += 1,
            TokenKind::Lit(_) => j += 1, // the "C" in `extern "C"`
            TokenKind::Ident(name) => {
                // `pub mod foo;` carries its docs as `//!` inside foo.rs;
                // only inline `pub mod foo { ... }` needs an outer doc.
                if kw.as_deref() == Some("mod")
                    && matches!(tokens.get(j + 1), Some(t) if t.kind.is_punct(';'))
                {
                    return None;
                }
                return kw.map(|k| (k, name.clone()));
            }
            _ => return None,
        }
    }
    None
}

/// True if a doc comment sits directly before `tokens[i]`, allowing any
/// number of `#[...]` attributes in between.
fn has_doc_before(tokens: &[Token], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        match &tokens[j].kind {
            TokenKind::DocComment => return true,
            TokenKind::Punct(']') => {
                // Walk back over a balanced `#[...]` attribute.
                let mut depth = 1usize;
                while j > 0 && depth > 0 {
                    j -= 1;
                    match &tokens[j].kind {
                        TokenKind::Punct(']') => depth += 1,
                        TokenKind::Punct('[') => depth -= 1,
                        _ => {}
                    }
                }
                if j > 0 && tokens[j - 1].kind.is_punct('#') {
                    j -= 1;
                } else {
                    return false;
                }
            }
            _ => return false,
        }
    }
    false
}

/// For each token, whether it sits inside a `#[cfg(test)]` / `#[test]`
/// item body.
pub(crate) fn test_flags(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if !tokens[i].kind.is_punct('#') {
            i += 1;
            continue;
        }
        // Attribute: `#[...]` or `#![...]`.
        let mut j = i + 1;
        if matches!(tokens.get(j), Some(t) if t.kind.is_punct('!')) {
            j += 1;
        }
        if !matches!(tokens.get(j), Some(t) if t.kind.is_punct('[')) {
            i += 1;
            continue;
        }
        let open = j;
        let mut depth = 0usize;
        let mut is_test_attr = false;
        let mut first_ident: Option<&str> = None;
        while let Some(t) = tokens.get(j) {
            match &t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) => {
                    if first_ident.is_none() {
                        first_ident = Some(s);
                        if s == "test" {
                            is_test_attr = true;
                        }
                    } else if first_ident == Some("cfg") && s == "test" {
                        is_test_attr = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_end = j;
        let _ = open;
        if is_test_attr {
            // Find the item body this attribute decorates: the first `{`
            // outside parens/brackets, unless a `;` ends the item first.
            let mut k = attr_end + 1;
            let mut nest = 0i64;
            let mut body = None;
            while let Some(t) = tokens.get(k) {
                match &t.kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') => nest += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => nest -= 1,
                    TokenKind::Punct('{') if nest == 0 => {
                        body = Some(k);
                        break;
                    }
                    TokenKind::Punct(';') if nest == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if let Some(start) = body {
                let mut braces = 0i64;
                let mut end = start;
                while let Some(t) = tokens.get(end) {
                    match &t.kind {
                        TokenKind::Punct('{') => braces += 1,
                        TokenKind::Punct('}') => {
                            braces -= 1;
                            if braces == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    end += 1;
                }
                let last = end.min(flags.len() - 1);
                for f in flags.iter_mut().take(last + 1).skip(i) {
                    *f = true;
                }
                i = attr_end + 1;
                continue;
            }
        }
        i = attr_end + 1;
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint(path: &str, src: &str) -> Vec<Diagnostic> {
        lint_source(&PathBuf::from(path), src)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn l001_catches_unwrap_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); todo!(); }";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L001", "L001", "L001", "L001"]);
    }

    #[test]
    fn l001_ignores_unwrap_or_and_test_code() {
        let src =
            "fn f() { x.unwrap_or(0); }\n#[cfg(test)]\nmod t { fn g() { x.unwrap(); panic!(); } }";
        assert!(lint("crates/sim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l001_skips_binaries() {
        let src = "fn main() { x.unwrap(); }";
        assert!(lint("crates/cli/src/main.rs", src).is_empty());
    }

    #[test]
    fn l001_allowlist_needs_reason() {
        let with = "fn f() {\n // lint: allow(L001, invariant upheld by caller)\n x.unwrap(); }";
        assert!(lint("crates/sim/src/lib.rs", with).is_empty());
        let without = "fn f() {\n // lint: allow(L001)\n x.unwrap(); }";
        assert_eq!(rules(&lint("crates/sim/src/lib.rs", without)), vec!["L001"]);
    }

    #[test]
    fn l002_flags_external_crates_only() {
        let src =
            "use std::fmt;\nuse mocktails_trace::Trace;\nuse serde::Serialize;\nuse crate::x;";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L002"]);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("serde"));
    }

    #[test]
    fn l002_accepts_uniform_paths_to_local_modules() {
        let src = "mod config;\npub use config::Options;\nuse other::Thing;";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L002"]);
        assert!(d[0].message.contains("other"));
    }

    #[test]
    fn l003_requires_docs_in_core() {
        let src = "/// Documented.\npub fn a() {}\npub fn b() {}\npub(crate) fn c() {}\npub use crate::y;";
        let d = lint("crates/core/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L003"]);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains('b'));
    }

    #[test]
    fn l003_out_of_line_mods_are_documented_in_their_file() {
        let src = "pub mod undocumented_elsewhere;\npub mod inline { }";
        let d = lint("crates/core/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L003"]);
        assert!(d[0].message.contains("inline"));
    }

    #[test]
    fn l003_sees_docs_through_attributes() {
        let src = "/// Docs.\n#[derive(Debug, Clone)]\npub struct S;";
        assert!(lint("crates/core/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l003_not_applied_outside_foundational_crates() {
        let src = "pub fn undocumented() {}";
        assert!(lint("crates/sim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l004_flags_float_literal_equality_in_model_code() {
        let src = "fn f(x: f64) -> bool { x == 0.0 }";
        assert_eq!(
            rules(&lint("crates/core/src/model/leaf.rs", src)),
            vec!["L004"]
        );
        assert!(lint("crates/sim/src/error.rs", src).is_empty());
    }

    #[test]
    fn l004_ignores_integer_equality() {
        let src = "fn f(x: u64) -> bool { x == 0 }";
        assert!(lint("crates/core/src/model/leaf.rs", src).is_empty());
    }

    #[test]
    fn l005_flags_wall_clock_in_synthesis_crates() {
        let src = "use std::time::Instant;\nfn f() { let t = Instant::now(); }";
        let d = lint("crates/core/src/synth/mod.rs", src);
        assert_eq!(rules(&d), vec!["L005", "L005"]);
        assert!(lint("crates/bench/src/lib.rs", src).is_empty());
    }

    #[test]
    fn l006_flags_io_error_construction_outside_fault_module() {
        let src = "fn f() -> std::io::Error { io::Error::new(io::ErrorKind::Other, \"x\") }";
        let d = lint("crates/trace/src/codec.rs", src);
        assert_eq!(rules(&d), vec!["L006"]);
        assert!(d[0].message.contains("fault.rs"));
        let other = "fn f() { let e = std::io::Error::other(\"boom\"); }";
        assert_eq!(rules(&lint("crates/core/src/lib.rs", other)), vec!["L006"]);
    }

    #[test]
    fn l006_exempts_fault_module_tests_and_binaries() {
        let src = "fn f() { io::Error::other(\"injected\"); }";
        assert!(lint("crates/trace/src/fault.rs", src).is_empty());
        assert!(lint("crates/cli/src/main.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn g() { io::Error::other(\"x\"); } }";
        assert!(lint("crates/trace/src/codec.rs", in_test).is_empty());
    }

    #[test]
    fn l006_ignores_propagation_and_type_mentions() {
        // Naming the type (signatures, matches) is fine; only construction
        // through new/other/from is flagged.
        let src = "fn f(e: io::Error) -> Result<(), io::Error> { Err(e) }";
        assert!(lint("crates/trace/src/codec.rs", src).is_empty());
    }

    #[test]
    fn l007_flags_std_thread_outside_the_pool_crate() {
        let src = "use std::thread;\nfn f() { std::thread::scope(|_| {}); }";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L007", "L007"]);
        assert!(d[0].message.contains("Parallelism"));
    }

    #[test]
    fn l007_flags_std_net_outside_the_serve_crate() {
        let src =
            "use std::net::TcpStream;\nfn f() { let _ = std::net::TcpListener::bind(\"x\"); }";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(rules(&d), vec!["L007", "L007"]);
        assert!(d[0].message.contains("std::net"));
    }

    #[test]
    fn l007_exempts_pool_serve_tests_and_binaries() {
        let src = "fn f() { std::thread::yield_now(); }";
        assert!(lint("crates/pool/src/lib.rs", src).is_empty());
        assert!(lint("crates/cli/src/main.rs", src).is_empty());
        let in_test = "#[cfg(test)]\nmod t { fn g() { std::thread::yield_now(); } }";
        assert!(lint("crates/sim/src/lib.rs", in_test).is_empty());
        let net = "fn f() { let _ = std::net::TcpListener::bind(\"127.0.0.1:0\"); }";
        assert!(lint("crates/serve/src/server.rs", net).is_empty());
        assert!(lint("crates/pool/src/lib.rs", net).is_empty());
    }

    #[test]
    fn l007_ignores_bare_thread_idents() {
        // A local named `thread` or a pool-provided re-export is fine;
        // only the `std::thread` path is the raw escape hatch.
        let src = "fn f(thread: usize) -> usize { thread + 1 }";
        assert!(lint("crates/sim/src/lib.rs", src).is_empty());
    }

    #[test]
    fn scope_sees_through_dot_dot_segments() {
        let src = "fn f() { std::thread::yield_now(); }";
        assert!(lint("crates/lint/../pool/src/lib.rs", src).is_empty());
        assert_eq!(
            rules(&lint("crates/lint/../sim/src/lib.rs", src)),
            vec!["L007"]
        );
    }

    #[test]
    fn diagnostics_sort_stably() {
        let src = "fn f() { b.unwrap(); }\nfn g() { a.unwrap(); }";
        let d = lint("crates/sim/src/lib.rs", src);
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
    }
}
