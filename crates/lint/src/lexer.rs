//! A minimal hand-rolled Rust lexer.
//!
//! The lint rules only need a *token skeleton* of each source file:
//! identifiers, punctuation, a handful of multi-character operators, and
//! literal markers — with comments, strings and char literals stripped so
//! that `panic!` inside a string or a `// use serde` comment can never
//! produce a false positive. The lexer also understands just enough Rust
//! to keep line numbers exact across raw strings, nested block comments
//! and lifetimes, and it harvests `// lint: allow(...)` directives from
//! ordinary line comments as it goes.

use std::collections::BTreeMap;

/// One lexed token with the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based line number of the token's first character.
    pub line: usize,
    /// What kind of token this is.
    pub kind: TokenKind,
}

/// The token kinds the lint rules distinguish.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unwrap`, `SystemTime`, ...).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `{`, ...).
    Punct(char),
    /// A multi-character operator (`==`, `!=`, `::`, `->`, `..`, ...).
    Op(&'static str),
    /// A floating-point literal (`0.0`, `1e-9`, `2f64`, ...), carrying its
    /// source text so signatures can be rendered faithfully.
    FloatLit(String),
    /// Any other literal (integer, string, char, byte/raw/C string),
    /// carrying its source text. For string-likes the text includes the
    /// delimiters but is never matched by identifier-based rules, so a
    /// `panic!` *inside* a string still cannot fire L001.
    Lit(String),
    /// A lifetime (`'a`, `'static`) or loop label, carrying its name
    /// without the quote. Previously these were silently dropped, which
    /// made rendered signatures lossy (`&'a str` became `& str`).
    Lifetime(String),
    /// A doc comment (`///`, `//!`, `/** */`, `/*! */`).
    DocComment,
}

impl TokenKind {
    /// Returns the identifier text if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match self {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the given punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self, TokenKind::Punct(p) if *p == c)
    }

    /// True if this token is the given multi-character operator.
    pub fn is_op(&self, op: &str) -> bool {
        matches!(self, TokenKind::Op(o) if *o == op)
    }

    /// True if this token is any literal (float or otherwise).
    pub fn is_lit(&self) -> bool {
        matches!(self, TokenKind::Lit(_) | TokenKind::FloatLit(_))
    }
}

/// A parsed `// lint: allow(RULES, reason)` suppression directive.
///
/// `RULES` is one or more comma-separated rule selectors, each either a
/// single rule (`L001`) or an inclusive range (`L012-L015`); the list is
/// expanded at parse time so consumers only ever see concrete rule ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// The expanded rule identifiers being suppressed, e.g. `["L012",
    /// "L013"]`. Always non-empty and sorted.
    pub rules: Vec<String>,
    /// The mandatory human-readable justification.
    pub reason: String,
}

impl Directive {
    /// True if this directive suppresses the given rule.
    pub fn covers(&self, rule: &str) -> bool {
        self.rules.iter().any(|r| r == rule)
    }
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token skeleton, in source order.
    pub tokens: Vec<Token>,
    /// Allow directives keyed by the line the comment appears on.
    pub directives: BTreeMap<usize, Vec<Directive>>,
    /// Module-scoped `// lint: allow-file(RULES, reason)` directives,
    /// which suppress their rules anywhere in the file.
    pub file_directives: Vec<Directive>,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// A single rule selector: `L001` parses to itself, `L012-L015` expands
/// to the inclusive range. Returns `None` for anything else.
fn parse_rule_selector(sel: &str) -> Option<Vec<String>> {
    let parse_id = |s: &str| -> Option<u32> {
        let digits = s.strip_prefix('L')?;
        if digits.len() != 3 || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        digits.parse().ok()
    };
    if let Some((lo, hi)) = sel.split_once('-') {
        let (lo, hi) = (parse_id(lo.trim())?, parse_id(hi.trim())?);
        // A backwards or absurdly wide range is malformed, not "allow
        // everything": refuse it so the diagnostics stay visible.
        if lo > hi || hi - lo >= 100 {
            return None;
        }
        Some((lo..=hi).map(|n| format!("L{n:03}")).collect())
    } else {
        parse_id(sel).map(|n| vec![format!("L{n:03}")])
    }
}

/// Parses a `lint: allow(RULES, reason)` or `lint: allow-file(RULES,
/// reason)` directive out of a comment's text. `RULES` is a comma-separated
/// list of rule ids and ranges; everything after the last selector is the
/// reason. Returns `None` for ordinary comments, for directives without a
/// reason, and for malformed directives (those are simply not suppressions,
/// so the underlying diagnostic stays visible). The bool is true for the
/// file-scoped form.
fn parse_directive(comment: &str) -> Option<(Directive, bool)> {
    let rest = comment.split_once("lint:")?.1.trim_start();
    let (rest, file_scope) = match rest.strip_prefix("allow-file") {
        Some(r) => (r, true),
        None => (rest.strip_prefix("allow")?, false),
    };
    let rest = rest.trim_start().strip_prefix('(')?;
    let inner = rest.split_once(')')?.0;
    let mut rules: Vec<String> = Vec::new();
    let mut pieces = inner.split(',').peekable();
    while let Some(piece) = pieces.peek() {
        match parse_rule_selector(piece.trim()) {
            Some(expanded) => {
                rules.extend(expanded);
                pieces.next();
            }
            None => break,
        }
    }
    // Whatever follows the selectors is the reason; rejoin it in case the
    // justification itself contains commas.
    let reason = pieces.collect::<Vec<_>>().join(",").trim().to_string();
    if rules.is_empty() || reason.is_empty() {
        return None;
    }
    rules.sort();
    rules.dedup();
    Some((Directive { rules, reason }, file_scope))
}

/// Lexes one Rust source file into its token skeleton.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        if c == '\n' {
            self.line += 1;
        }
        self.i += 1;
        Some(c)
    }

    fn push(&mut self, line: usize, kind: TokenKind) {
        self.out.tokens.push(Token { line, kind });
    }

    /// The source text consumed since `start`.
    fn text(&self, start: usize) -> String {
        self.chars[start..self.i].iter().collect()
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => {
                    let start = self.i;
                    self.string_literal(start);
                }
                '\'' => {
                    let start = self.i;
                    self.char_or_lifetime(start);
                }
                c if c.is_ascii_digit() => self.number(),
                c if is_ident_start(c) => self.ident_or_prefixed_literal(),
                _ => self.punct_or_op(),
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.i;
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        let is_doc =
            (text.starts_with("///") && !text.starts_with("////")) || text.starts_with("//!");
        if is_doc {
            self.push(line, TokenKind::DocComment);
        } else if let Some((d, file_scope)) = parse_directive(&text) {
            if file_scope {
                self.out.file_directives.push(d);
            } else {
                self.out.directives.entry(line).or_default().push(d);
            }
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let is_doc = matches!(self.peek(2), Some('!'))
            || (matches!(self.peek(2), Some('*'))
                && !matches!(self.peek(3), Some('*') | Some('/')));
        self.bump();
        self.bump();
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        if is_doc {
            self.push(line, TokenKind::DocComment);
        }
    }

    /// Consumes a `"..."` literal (escape-aware), starting at the quote.
    /// `start` is where the literal's text begins (the prefix for `b"..."`).
    fn string_literal(&mut self, start: usize) {
        let line = self.line;
        self.bump();
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => break,
                _ => {}
            }
        }
        let text = self.text(start);
        self.push(line, TokenKind::Lit(text));
    }

    /// Consumes a raw string starting at the first `#` or `"` after the
    /// `r`/`br`/`cr` prefix (already consumed; `start` is its position).
    /// Returns false if this is not actually a raw string (e.g. a raw
    /// identifier `r#fn`).
    fn raw_string(&mut self, start: usize) -> bool {
        let mut hashes = 0usize;
        while self.peek(hashes) == Some('#') {
            hashes += 1;
        }
        if self.peek(hashes) != Some('"') {
            return false;
        }
        let line = self.line;
        for _ in 0..=hashes {
            self.bump();
        }
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for k in 0..hashes {
                    if self.peek(k) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
        let text = self.text(start);
        self.push(line, TokenKind::Lit(text));
        true
    }

    fn char_or_lifetime(&mut self, start: usize) {
        let line = self.line;
        self.bump();
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                while let Some(c) = self.bump() {
                    match c {
                        '\\' => {
                            self.bump();
                        }
                        '\'' => break,
                        _ => {}
                    }
                }
                let text = self.text(start);
                self.push(line, TokenKind::Lit(text));
            }
            Some(c) if is_ident_start(c) => {
                // 'a' is a char literal; 'a (no closing quote) a lifetime.
                let mut j = 0;
                while matches!(self.peek(j), Some(c) if is_ident_continue(c)) {
                    j += 1;
                }
                let is_char = self.peek(j) == Some('\'');
                let name_start = self.i;
                for _ in 0..j {
                    self.bump();
                }
                if is_char {
                    self.bump();
                    let text = self.text(start);
                    self.push(line, TokenKind::Lit(text));
                } else {
                    let name = self.text(name_start);
                    self.push(line, TokenKind::Lifetime(name));
                }
            }
            Some(_) => {
                // Plain single char like '(' or ' '.
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                let text = self.text(start);
                self.push(line, TokenKind::Lit(text));
            }
            None => {}
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.i;
        if self.peek(0) == Some('0') && matches!(self.peek(1), Some('x' | 'o' | 'b')) {
            self.bump();
            self.bump();
            while matches!(self.peek(0), Some(c) if c.is_alphanumeric() || c == '_') {
                self.bump();
            }
            let text = self.text(start);
            self.push(line, TokenKind::Lit(text));
            return;
        }
        let mut float = false;
        while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
            self.bump();
        }
        if self.peek(0) == Some('.') {
            match self.peek(1) {
                Some('.') => {}                    // range: `0..n`
                Some(c) if is_ident_start(c) => {} // method: `1.max(2)`
                _ => {
                    float = true;
                    self.bump();
                    while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                        self.bump();
                    }
                }
            }
        }
        if matches!(self.peek(0), Some('e' | 'E')) {
            let sign = matches!(self.peek(1), Some('+' | '-'));
            let digit_at = if sign { 2 } else { 1 };
            if matches!(self.peek(digit_at), Some(c) if c.is_ascii_digit()) {
                float = true;
                self.bump();
                if sign {
                    self.bump();
                }
                while matches!(self.peek(0), Some(c) if c.is_ascii_digit() || c == '_') {
                    self.bump();
                }
            }
        }
        let suffix_start = self.i;
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let suffix: String = self.chars[suffix_start..self.i].iter().collect();
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        let text = self.text(start);
        self.push(
            line,
            if float {
                TokenKind::FloatLit(text)
            } else {
                TokenKind::Lit(text)
            },
        );
    }

    fn ident_or_prefixed_literal(&mut self) {
        let line = self.line;
        let start = self.i;
        while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
            self.bump();
        }
        let text: String = self.chars[start..self.i].iter().collect();
        match text.as_str() {
            // `r"…"`/`r#"…"#` raw strings, `br`/`cr` raw byte/C strings.
            "r" | "br" | "cr" if matches!(self.peek(0), Some('"' | '#')) => {
                if !self.raw_string(start) {
                    // Raw identifier `r#ident`: consume the `#` and word.
                    self.bump();
                    let word_start = self.i;
                    while matches!(self.peek(0), Some(c) if is_ident_continue(c)) {
                        self.bump();
                    }
                    let word: String = self.chars[word_start..self.i].iter().collect();
                    self.push(line, TokenKind::Ident(word));
                }
            }
            // `b"…"` byte strings and `c"…"` C strings (Rust ≥ 1.77).
            "b" | "c" if self.peek(0) == Some('"') => self.string_literal(start),
            "b" if self.peek(0) == Some('\'') => self.char_or_lifetime(start),
            _ => self.push(line, TokenKind::Ident(text)),
        }
    }

    fn punct_or_op(&mut self) {
        let line = self.line;
        let two: Option<&'static str> = match (self.peek(0), self.peek(1)) {
            (Some('='), Some('=')) => Some("=="),
            (Some('!'), Some('=')) => Some("!="),
            (Some('<'), Some('=')) => Some("<="),
            (Some('>'), Some('=')) => Some(">="),
            (Some(':'), Some(':')) => Some("::"),
            (Some('-'), Some('>')) => Some("->"),
            (Some('='), Some('>')) => Some("=>"),
            (Some('.'), Some('.')) => Some(if self.peek(2) == Some('=') {
                "..="
            } else {
                ".."
            }),
            _ => None,
        };
        if let Some(op) = two {
            for _ in 0..op.len() {
                self.bump();
            }
            self.push(line, TokenKind::Op(op));
        } else if let Some(c) = self.bump() {
            self.push(line, TokenKind::Punct(c));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.kind.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn strings_and_comments_are_stripped() {
        let src = r##"
            // panic! in a comment
            let s = "panic!(\"no\")";
            let r = r#"unwrap()"#;
            /* block panic! /* nested */ still comment */
            call();
        "##;
        assert_eq!(idents(src), vec!["let", "s", "let", "r", "call"]);
    }

    #[test]
    fn doc_comments_become_tokens() {
        let toks = lex("/// docs\npub fn f() {}").tokens;
        assert_eq!(toks[0].kind, TokenKind::DocComment);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].kind, TokenKind::Ident("pub".into()));
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'b' }";
        let lits = lex(src)
            .tokens
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Lit(_)))
            .count();
        assert_eq!(lits, 1, "only 'b' is a literal");
    }

    #[test]
    fn float_literals_are_flagged() {
        let kinds: Vec<TokenKind> = lex("0.5 1e-9 2f64 3 0x10 0..4 1.max(2)")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert_eq!(kinds[0], TokenKind::FloatLit("0.5".into()));
        assert_eq!(kinds[1], TokenKind::FloatLit("1e-9".into()));
        assert_eq!(kinds[2], TokenKind::FloatLit("2f64".into()));
        assert_eq!(kinds[3], TokenKind::Lit("3".into()));
        assert_eq!(kinds[4], TokenKind::Lit("0x10".into()));
        assert_eq!(kinds[5], TokenKind::Lit("0".into()));
        assert!(kinds[6].is_op(".."));
    }

    #[test]
    fn literals_retain_their_source_text() {
        let toks = lex("let n = 42u64; let s = \"hi\"; let c = 'x';").tokens;
        let lits: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lit(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lits, vec!["42u64", "\"hi\"", "'x'"]);
    }

    #[test]
    fn c_string_literals_are_consumed_whole() {
        // `c"…"` and `cr#"…"#` (Rust 1.77) must not leak their contents as
        // identifiers — a `panic!` inside either cannot dodge the rules.
        let src = "let a = c\"panic!(1)\"; let b = cr#\"unwrap()\"#; done();";
        assert_eq!(idents(src), vec!["let", "a", "let", "b", "done"]);
    }

    #[test]
    fn lifetimes_become_tokens() {
        let toks = lex("fn f<'a>(x: &'a str) {}").tokens;
        let lifetimes: Vec<&str> = toks
            .iter()
            .filter_map(|t| match &t.kind {
                TokenKind::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
    }

    #[test]
    fn raw_byte_strings_are_consumed_whole() {
        let src = "let a = br#\"todo!() \" inner\"#; after();";
        assert_eq!(idents(src), vec!["let", "a", "after"]);
    }

    #[test]
    fn operators_are_fused() {
        let kinds: Vec<TokenKind> = lex("a == b != c :: d")
            .tokens
            .into_iter()
            .map(|t| t.kind)
            .collect();
        assert!(kinds[1].is_op("=="));
        assert!(kinds[3].is_op("!="));
        assert!(kinds[5].is_op("::"));
    }

    #[test]
    fn macro_bang_stays_a_punct() {
        let toks = lex("panic!(\"x\")").tokens;
        assert_eq!(toks[0].kind, TokenKind::Ident("panic".into()));
        assert!(toks[1].kind.is_punct('!'));
    }

    #[test]
    fn directives_are_harvested() {
        let lexed = lex("x(); // lint: allow(L001, the reason)\ny();");
        let d = &lexed.directives[&1][0];
        assert_eq!(d.rules, vec!["L001"]);
        assert_eq!(d.reason, "the reason");
        assert!(d.covers("L001") && !d.covers("L002"));
    }

    #[test]
    fn directive_without_reason_is_ignored() {
        let lexed = lex("// lint: allow(L001)\n// lint: allow(L001, )\n");
        assert!(lexed.directives.is_empty());
    }

    #[test]
    fn directive_rule_lists_and_ranges_expand() {
        let lexed = lex("x(); // lint: allow(L001, L012-L014, shared justification)");
        let d = &lexed.directives[&1][0];
        assert_eq!(d.rules, vec!["L001", "L012", "L013", "L014"]);
        assert_eq!(d.reason, "shared justification");
    }

    #[test]
    fn directive_reason_may_contain_commas() {
        let lexed = lex("x(); // lint: allow(L013, by design, see DESIGN.md)");
        let d = &lexed.directives[&1][0];
        assert_eq!(d.rules, vec!["L013"]);
        assert_eq!(d.reason, "by design, see DESIGN.md");
    }

    #[test]
    fn malformed_ranges_are_not_suppressions() {
        // Backwards, unbounded-looking, or non-rule selectors must not
        // silently suppress anything.
        let lexed = lex(concat!(
            "// lint: allow(L015-L012, backwards)\n",
            "// lint: allow(L01-L99, short ids)\n",
            "// lint: allow(LXXX, not digits)\n",
        ));
        assert!(lexed.directives.is_empty());
    }

    #[test]
    fn file_scoped_directives_are_separated() {
        let lexed = lex("// lint: allow-file(L013-L014, whole-module waiver)\nx();");
        assert!(lexed.directives.is_empty());
        assert_eq!(lexed.file_directives.len(), 1);
        assert_eq!(lexed.file_directives[0].rules, vec!["L013", "L014"]);
    }

    #[test]
    fn line_numbers_survive_multiline_tokens() {
        let src = "let a = r#\"line\nline\nline\"#;\nend();";
        let toks = lex(src).tokens;
        let end = toks
            .iter()
            .find(|t| t.kind.ident() == Some("end"))
            .map(|t| t.line);
        assert_eq!(end, Some(4));
    }
}
